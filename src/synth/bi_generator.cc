#include "synth/bi_generator.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "common/check.h"
#include "common/strings.h"
#include "synth/names.h"
#include "synth/schema_builder.h"
#include "text/tokenize.h"

namespace autobi {

namespace {

// Working description of one planned table before materialization.
struct PlannedDim {
  const EntityTemplate* entity = nullptr;
  std::string table_name;
  std::string pk_name;
  bool string_key = false;
  long key_base = 1;
  size_t rows = 100;
  int parent = -1;  // Index of parent dim (snowflake chaining), or -1.
  int split_of = -1;  // If this is the "details" half of a 1:1 pair.
  // TPC-style per-table column prefix ("c" in "c_custkey"); empty = none.
  std::string col_prefix;
};

struct PlannedFact {
  const FactTemplate* fact = nullptr;
  std::string table_name;
  std::string col_prefix;
  size_t rows = 500;
  std::vector<int> dims;             // Dim indices this fact references.
  std::vector<int> role_play_dims;   // Dims referenced twice.
  int references_fact = -1;          // "Other" anomaly: fact -> fact edge.
};

// Types an attribute column from its template name.
ColumnSpec AttributeColumn(const std::string& name, Rng& rng) {
  ColumnSpec col;
  col.name = name;  // Renamed by the caller to the case style.
  std::string lower = ToLower(name);
  auto has = [&](const char* s) {
    return lower.find(s) != std::string::npos;
  };
  if (has("date")) {
    col.kind = ColumnKind::kDate;
    col.min_value = 0;
    col.max_value = 2000;
  } else if (has("price") || has("salary") || has("budget") || has("rate") ||
             has("amount") || has("cost") || has("weight") || has("premium")) {
    col.kind = ColumnKind::kDouble;
    col.min_value = 1.0;
    col.max_value = 5000.0;
  } else if (has("year") || has("qty") || has("count") || has("population") ||
             has("pages") || has("credits") || has("capacity") ||
             has("rooms") || has("sq_ft") || has("runtime") || has("stars") ||
             has("founded") || has("rank") || has("distance") ||
             has("zip") || has("level")) {
    col.kind = ColumnKind::kInt;
    col.min_value = 1;
    col.max_value = 5000;
  } else {
    col.kind = ColumnKind::kText;
  }
  col.null_fraction = rng.NextBool(0.2) ? rng.NextDouble(0.0, 0.08) : 0.0;
  return col;
}

// Schema-type mixture per table count, roughly matching the case-type
// statistics of Table 7 (stars dominate small cases, constellations large).
SchemaType PickSchemaType(int n, Rng& rng) {
  double p_star = std::max(0.02, 0.55 - 0.06 * (n - 4));
  double p_snow = 0.16 + std::min(0.12, 0.015 * (n - 4));
  double p_other = std::min(0.24, 0.01 + 0.017 * (n - 4));
  double p_con = std::max(0.05, 1.0 - p_star - p_snow - p_other);
  size_t pick = rng.NextWeighted({p_star, p_snow, p_con, p_other});
  switch (pick) {
    case 0:
      return SchemaType::kStar;
    case 1:
      return SchemaType::kSnowflake;
    case 2:
      return SchemaType::kConstellation;
    default:
      return SchemaType::kOther;
  }
}

std::string Rename(const std::string& raw, NameStyle style) {
  std::vector<std::string> tokens = TokenizeIdentifier(raw);
  return StyleTokens(tokens, style);
}

// Styles `raw`, prepending the table's column prefix if it has one
// (TPC-style "c_custkey" conventions).
std::string PrefixedName(const std::string& prefix, const std::string& raw,
                         NameStyle style) {
  std::vector<std::string> tokens = TokenizeIdentifier(raw);
  if (!prefix.empty()) tokens.insert(tokens.begin(), prefix);
  return StyleTokens(tokens, style);
}

}  // namespace

BiCase GenerateBiCase(const BiGenOptions& options, Rng& rng) {
  int n = std::max(2, options.num_tables);
  SchemaType type = PickSchemaType(n, rng);
  NameStyle style = static_cast<NameStyle>(rng.NextBelow(4));
  // Some models follow a TPC-like convention where every column carries a
  // short table prefix ("c_custkey").
  bool column_prefixes = rng.NextBool(options.column_prefix_prob);

  // --- Plan the logical structure.
  int num_facts = 1;
  if (type == SchemaType::kConstellation || type == SchemaType::kOther) {
    num_facts = 2 + static_cast<int>(rng.NextBelow(1 + size_t(n) / 10));
    num_facts = std::min(num_facts, std::max(2, n / 3));
  }
  if (n <= 3) num_facts = 1;
  int num_isolated =
      (type == SchemaType::kOther) ? 1 + int(rng.NextBelow(2)) : 0;
  num_isolated = std::min(num_isolated, n - num_facts - 1);
  if (num_isolated < 0) num_isolated = 0;
  int num_dims = n - num_facts - num_isolated;
  if (num_dims < 1) {
    num_dims = 1;
    num_facts = std::max(1, n - num_dims - num_isolated);
  }

  // Sample distinct fact templates and dim entities.
  std::vector<size_t> fact_idx(FactPool().size());
  std::vector<size_t> dim_idx(EntityPool().size());
  for (size_t i = 0; i < fact_idx.size(); ++i) fact_idx[i] = i;
  for (size_t i = 0; i < dim_idx.size(); ++i) dim_idx[i] = i;
  rng.Shuffle(fact_idx);
  rng.Shuffle(dim_idx);

  std::vector<PlannedDim> dims;
  std::map<std::string, int> dim_by_entity;
  int splits_budget = 0;
  for (int i = 0; i < num_dims; ++i) {
    PlannedDim d;
    d.entity = &EntityPool()[dim_idx[size_t(i) % dim_idx.size()]];
    d.rows = d.entity->small
                 ? 4 + rng.NextBelow(16)
                 : options.min_dim_rows +
                       rng.NextBelow(options.max_dim_rows -
                                     options.min_dim_rows);
    d.string_key = rng.NextBool(options.string_key_prob);
    d.key_base =
        rng.NextBool(options.key_offset_prob) ? 1 + long(rng.NextBelow(5000))
                                              : 1;
    // Size ties: duplicate another dim's cardinality (and usually its key
    // base) so value-overlap features cannot separate the two targets.
    if (i > 0 && !d.entity->small && rng.NextBool(options.size_tie_prob)) {
      const PlannedDim& other = dims[rng.NextBelow(dims.size())];
      if (!other.entity->small) {
        d.rows = other.rows;
        if (!d.string_key && !other.string_key && rng.NextBool(0.7)) {
          d.key_base = other.key_base;
        }
      }
    }
    dims.push_back(d);
    dim_by_entity[d.entity->name] = i;
  }

  // Snowflake chaining: prefer the entity's natural parent if present. In
  // pure snowflakes every dim keeps in-degree 1 (an arborescence,
  // Definition 2), so a parent may be claimed by at most one child there;
  // constellations/other may share parents (in-degree 2 dims are exactly
  // the joins recall mode must recover, Figure 4).
  bool pure_tree =
      type == SchemaType::kStar || type == SchemaType::kSnowflake;
  if (type != SchemaType::kStar) {
    std::set<int> claimed_parents;
    for (size_t i = 0; i < dims.size(); ++i) {
      if (!rng.NextBool(options.snowflake_chain_prob)) continue;
      int p = -1;
      const char* parent = dims[i].entity->parent;
      auto it = dim_by_entity.find(parent);
      if (it != dim_by_entity.end() && it->second != int(i)) {
        p = it->second;
      } else if (type == SchemaType::kSnowflake && dims.size() > 1 &&
                 rng.NextBool(0.3)) {
        int cand = int(rng.NextBelow(dims.size()));
        if (cand != int(i) && dims[size_t(cand)].parent != int(i)) p = cand;
      }
      if (p < 0) continue;
      if (pure_tree && claimed_parents.count(p)) continue;
      dims[i].parent = p;
      claimed_parents.insert(p);
    }
    // Break any accidental parent cycles (follow each chain; a revisit of
    // the start means the last link closed a loop).
    for (size_t i = 0; i < dims.size(); ++i) {
      int hops = 0;
      int v = dims[i].parent;
      while (v >= 0 && hops <= int(dims.size())) {
        if (v == int(i)) {
          dims[i].parent = -1;
          break;
        }
        v = dims[size_t(v)].parent;
        ++hops;
      }
    }
  } else {
    for (PlannedDim& d : dims) d.parent = -1;
  }

  // 1:1 splits: convert some dims into (dim, dim_details) pairs. Each split
  // consumes one table slot, so it replaces the last planned dim.
  std::vector<PlannedDim> split_dims;
  for (size_t i = 0; i < dims.size() && int(split_dims.size()) < num_dims / 3;
       ++i) {
    if (dims[i].entity->small) continue;
    if (!rng.NextBool(options.one_to_one_prob)) continue;
    PlannedDim det = dims[i];
    det.split_of = static_cast<int>(i);
    det.parent = -1;
    split_dims.push_back(det);
    ++splits_budget;
  }
  while (splits_budget > 0 && !dims.empty()) {
    // Keep the total table count at n: each split displaces one root dim
    // (never a split source or a chained parent, if avoidable).
    bool removed = false;
    for (size_t i = dims.size(); i-- > 0;) {
      bool is_split_source = false;
      for (const PlannedDim& s : split_dims) {
        if (s.split_of == int(i)) is_split_source = true;
      }
      bool is_parent = false;
      for (const PlannedDim& d : dims) {
        if (d.parent == int(i)) is_parent = true;
      }
      if (!is_split_source && !is_parent) {
        // Reindex: drop dim i; fix parent/split references above i.
        dims.erase(dims.begin() + long(i));
        for (PlannedDim& d : dims) {
          if (d.parent > int(i)) --d.parent;
        }
        for (PlannedDim& s : split_dims) {
          if (s.split_of > int(i)) --s.split_of;
        }
        removed = true;
        break;
      }
    }
    if (!removed) break;
    --splits_budget;
  }

  // --- Facts and dim assignment.
  std::vector<PlannedFact> facts;
  for (int f = 0; f < num_facts; ++f) {
    PlannedFact pf;
    pf.fact = &FactPool()[fact_idx[size_t(f) % fact_idx.size()]];
    pf.rows = options.min_fact_rows +
              rng.NextBelow(options.max_fact_rows - options.min_fact_rows);
    facts.push_back(pf);
  }
  // Facts attach the dims that are not themselves referenced by a finer dim
  // (chained coarse dims like "segment" hang off their child, per the
  // snowflake structure of Figure 1(b)).
  std::set<int> is_parent;
  for (const PlannedDim& d : dims) {
    if (d.parent >= 0) is_parent.insert(d.parent);
  }
  std::vector<int> root_dims;
  for (size_t i = 0; i < dims.size(); ++i) {
    if (!is_parent.count(int(i))) root_dims.push_back(int(i));
  }
  if (root_dims.empty() && !dims.empty()) root_dims.push_back(0);
  for (size_t i = 0; i < root_dims.size(); ++i) {
    facts[i % facts.size()].dims.push_back(root_dims[i]);
  }
  // Chained dims attach through parents automatically. Shared dims: other
  // facts also reference some assigned dims (these extra edges are exactly
  // what recall mode must recover).
  if (facts.size() > 1) {
    for (size_t f = 1; f < facts.size(); ++f) {
      for (int d : facts[0].dims) {
        if (rng.NextBool(options.shared_dim_prob)) {
          if (std::find(facts[f].dims.begin(), facts[f].dims.end(), d) ==
              facts[f].dims.end()) {
            facts[f].dims.push_back(d);
          }
        }
      }
    }
  }
  // Every fact must reference at least one dim.
  for (PlannedFact& pf : facts) {
    if (pf.dims.empty() && !root_dims.empty()) {
      pf.dims.push_back(root_dims[rng.NextBelow(root_dims.size())]);
    }
  }
  // Role-playing dims (a second FK into the same dim): only outside pure
  // star/snowflake cases, where the extra in-edge would break the
  // arborescence the schema type promises.
  if (!pure_tree) {
    for (PlannedFact& pf : facts) {
      for (int d : pf.dims) {
        if (rng.NextBool(options.role_playing_prob) &&
            std::string(dims[size_t(d)].entity->name) == "calendar") {
          pf.role_play_dims.push_back(d);
        }
      }
    }
  }
  // "Other" anomaly: one fact references another fact.
  if (type == SchemaType::kOther && facts.size() >= 2 && rng.NextBool(0.6)) {
    facts[1].references_fact = 0;
  }

  // --- Names.
  std::set<std::string> used_names;
  auto unique_table_name = [&](std::string base) {
    std::string name = base;
    int suffix = 2;
    while (used_names.count(name)) name = base + std::to_string(suffix++);
    used_names.insert(name);
    return name;
  };
  // Which dims are chained parents, and of which child? (Used for the
  // Example-1 naming trap below.)
  std::vector<int> child_of(dims.size(), -1);
  for (size_t i = 0; i < dims.size(); ++i) {
    if (dims[i].parent >= 0 && child_of[size_t(dims[i].parent)] < 0) {
      child_of[size_t(dims[i].parent)] = int(i);
    }
  }
  for (size_t i = 0; i < dims.size(); ++i) {
    std::vector<std::string> tokens;
    if (rng.NextBool(options.dim_prefix_prob)) tokens.push_back("dim");
    tokens.push_back(dims[i].entity->name);
    dims[i].table_name = unique_table_name(StyleTokens(tokens, style));
    if (column_prefixes) {
      dims[i].col_prefix = std::string(dims[i].entity->name)
                               .substr(0, 1 + rng.NextBelow(2));
    }
    static const char* kSuffix[] = {"id", "key", "code"};
    // Example-1 trap: a parent dim's PK may carry its child's entity name
    // ("customer_segment_id"), highly name-similar to the fact's
    // "customer_id" FK while being a semantically different id.
    std::vector<std::string> pk_tokens;
    if (child_of[i] >= 0 && rng.NextBool(options.related_pk_name_prob)) {
      pk_tokens = {dims[size_t(child_of[i])].entity->name,
                   dims[i].entity->name, kSuffix[rng.NextBelow(3)]};
    } else if (rng.NextBool(options.generic_pk_name_prob)) {
      static const char* kGeneric[] = {"id", "key", "code"};
      pk_tokens = {kGeneric[rng.NextBelow(3)]};
    } else {
      std::string ent = dims[i].entity->name;
      if (rng.NextBool(0.3)) ent = Abbreviate(ent, rng);
      pk_tokens = {ent, kSuffix[rng.NextBelow(3)]};
    }
    if (!dims[i].col_prefix.empty()) {
      pk_tokens.insert(pk_tokens.begin(), dims[i].col_prefix);
    }
    dims[i].pk_name = StyleTokens(pk_tokens, style);
  }
  std::vector<PlannedDim>& all_split = split_dims;
  for (PlannedDim& s : all_split) {
    static const char* kDetailSuffix[] = {"details", "info", "extra",
                                          "attributes"};
    s.table_name = unique_table_name(StyleTokens(
        {dims[size_t(s.split_of)].entity->name,
         kDetailSuffix[rng.NextBelow(4)]},
        style));
    s.pk_name = dims[size_t(s.split_of)].pk_name;
    s.string_key = dims[size_t(s.split_of)].string_key;
    s.key_base = dims[size_t(s.split_of)].key_base;
    s.rows = dims[size_t(s.split_of)].rows;
  }
  for (PlannedFact& pf : facts) {
    std::vector<std::string> tokens;
    if (rng.NextBool(0.4)) tokens.push_back("fact");
    tokens.push_back(pf.fact->name);
    pf.table_name = unique_table_name(StyleTokens(tokens, style));
    if (column_prefixes) {
      pf.col_prefix =
          std::string(pf.fact->name).substr(0, 1 + rng.NextBelow(2));
    }
  }

  // --- Materialize with the schema builder.
  SchemaBuilder builder;
  auto add_dim_table = [&](const PlannedDim& d, bool is_detail_half) {
    TableSpec spec;
    spec.name = d.table_name;
    spec.rows = d.rows;
    ColumnSpec pk;
    pk.name = d.pk_name;
    if (d.string_key) {
      pk.kind = ColumnKind::kStringKey;
      // Single-letter prefixes collide across entities on purpose
      // ("C00042" for both customer and country).
      pk.prefix = std::string(1, char(std::toupper(d.entity->name[0])));
      pk.pad_width = 5;
      pk.key_base = d.key_base;
    } else {
      pk.kind = ColumnKind::kSurrogateKey;
      pk.key_base = d.key_base;
    }
    spec.columns.push_back(pk);
    // Attributes: detail halves take the tail of the attribute list so the
    // two halves complement each other.
    const auto& attrs = d.entity->attributes;
    size_t start = is_detail_half ? attrs.size() / 2 : 0;
    size_t end = is_detail_half ? attrs.size() : (attrs.size() + 1) / 2 + 1;
    end = std::min(end, attrs.size());
    for (size_t a = start; a < end; ++a) {
      ColumnSpec col = AttributeColumn(attrs[a], rng);
      col.name = PrefixedName(d.col_prefix, attrs[a], style);
      spec.columns.push_back(col);
    }
    // Decoy: occasionally a second unique sequence column (a classic false
    // PK target), slightly shifted so it rarely coincides with the PK.
    if (rng.NextBool(options.decoy_column_prob * 0.4)) {
      ColumnSpec seq;
      seq.name = PrefixedName(d.col_prefix, "row_num", style);
      seq.kind = ColumnKind::kSurrogateKey;
      seq.key_base = 1 + long(rng.NextBelow(6));
      spec.columns.push_back(seq);
    }
    // Alternate near-key ("code"): overlaps the PK's range with a small
    // shift — a plausible but wrong join target inside the same table.
    if (!d.string_key && rng.NextBool(options.alternate_key_prob)) {
      ColumnSpec alt;
      std::string ent = d.entity->name;
      alt.name = rng.NextBool(0.5)
                     ? PrefixedName(d.col_prefix, "code", style)
                     : PrefixedName(d.col_prefix, ent + " code", style);
      if (alt.name == d.pk_name) alt.name = Rename("alt_code", style);
      alt.kind = ColumnKind::kSurrogateKey;
      alt.key_base = d.key_base + 1 + long(rng.NextBelow(8));
      spec.columns.push_back(alt);
    }
    builder.AddTable(std::move(spec));
  };

  for (const PlannedDim& d : dims) add_dim_table(d, false);
  for (const PlannedDim& s : all_split) add_dim_table(s, true);

  // Dim -> parent-dim FKs (snowflake chains).
  for (size_t i = 0; i < dims.size(); ++i) {
    int p = dims[i].parent;
    if (p < 0) continue;
    std::string ent = dims[size_t(p)].entity->name;
    if (rng.NextBool(options.cryptic_fk_prob)) {
      ent = ent.substr(0, 1 + rng.NextBelow(2));
    } else if (rng.NextBool(options.abbrev_fk_prob)) {
      ent = Abbreviate(ent, rng);
    }
    std::string fk_name = PrefixedName(dims[i].col_prefix, ent + " id",
                                       style);
    double dangling = rng.NextBool(options.dangling_fk_prob)
                          ? rng.NextDouble(0.01, 0.08)
                          : 0.0;
    builder.AddFkColumn(dims[i].table_name, fk_name,
                        dims[size_t(p)].table_name, dims[size_t(p)].pk_name,
                        /*skew=*/0.6, dangling);
  }
  // 1:1 ground truth between split halves.
  for (const PlannedDim& s : all_split) {
    builder.AddOneToOne(dims[size_t(s.split_of)].table_name,
                        dims[size_t(s.split_of)].pk_name, s.table_name,
                        s.pk_name);
  }

  // Fact tables.
  for (const PlannedFact& pf : facts) {
    TableSpec spec;
    spec.name = pf.table_name;
    spec.rows = pf.rows;
    // Measures.
    for (const char* m : pf.fact->measures) {
      ColumnSpec col;
      col.name = PrefixedName(pf.col_prefix, m, style);
      col.kind = ColumnKind::kDouble;
      col.min_value = 0.0;
      col.max_value = 10000.0;
      spec.columns.push_back(col);
    }
    // Decoys.
    if (rng.NextBool(options.decoy_column_prob)) {
      ColumnSpec status;
      status.name = PrefixedName(pf.col_prefix, "status", style);
      status.kind = ColumnKind::kInt;
      status.min_value = 0;
      status.max_value = 5;
      spec.columns.push_back(status);
    }
    // Key-named low-cardinality codes ("type_id", "group_id"): they look
    // like FKs and are value-contained in most base-1 surrogate dims, but
    // join nothing — the spurious-join trap of real BI data.
    if (rng.NextBool(options.decoy_column_prob)) {
      static const char* kKeyDecoys[] = {"type_id",  "status_id", "group_id",
                                         "class_id", "seq_no",    "ref_no"};
      size_t n_decoys = 1 + rng.NextBelow(2);
      for (size_t k = 0; k < n_decoys; ++k) {
        ColumnSpec code;
        code.name =
            PrefixedName(pf.col_prefix, kKeyDecoys[rng.NextBelow(6)], style);
        bool dup = false;
        for (const ColumnSpec& existing : spec.columns) {
          if (existing.name == code.name) dup = true;
        }
        if (dup) continue;
        code.kind = ColumnKind::kInt;
        code.min_value = 1;
        code.max_value = double(4 + rng.NextBelow(60));
        spec.columns.push_back(code);
      }
    }
    if (rng.NextBool(options.decoy_column_prob * 0.6)) {
      ColumnSpec notes;
      notes.name = PrefixedName(pf.col_prefix, "notes", style);
      notes.kind = ColumnKind::kText;
      notes.null_fraction = 0.3;
      spec.columns.push_back(notes);
    }
    builder.AddTable(std::move(spec));
  }
  // Fact FK columns (added after the table exists).
  for (const PlannedFact& pf : facts) {
    std::set<std::string> fk_names;
    auto fk_name_for = [&](const PlannedDim& d, const std::string& role) {
      std::string ent = d.entity->name;
      std::vector<std::string> tokens;
      if (rng.NextBool(options.cryptic_fk_prob)) {
        // Cryptic FK: no entity signal ("ref_id", "c_id", ...).
        static const char* kCryptic[] = {"ref", "parent", "link", "src"};
        if (rng.NextBool(0.5)) {
          tokens.push_back(kCryptic[rng.NextBelow(4)]);
        } else {
          tokens.push_back(ent.substr(0, 1 + rng.NextBelow(2)));
        }
      } else {
        if (rng.NextBool(options.abbrev_fk_prob)) ent = Abbreviate(ent, rng);
        if (!role.empty()) tokens.push_back(role);
        tokens.push_back(ent);
      }
      tokens.push_back("id");
      if (!pf.col_prefix.empty()) tokens.insert(tokens.begin(), pf.col_prefix);
      std::string name = StyleTokens(tokens, style);
      int suffix = 2;
      while (fk_names.count(name)) name = name + std::to_string(suffix++);
      fk_names.insert(name);
      return name;
    };
    for (int di : pf.dims) {
      const PlannedDim& d = dims[size_t(di)];
      double dangling = rng.NextBool(options.dangling_fk_prob)
                            ? rng.NextDouble(0.01, 0.08)
                            : 0.0;
      double nulls = rng.NextBool(0.15) ? rng.NextDouble(0.0, 0.05) : 0.0;
      builder.AddFkColumn(pf.table_name, fk_name_for(d, ""), d.table_name,
                          d.pk_name, /*skew=*/0.8, dangling, nulls);
    }
    for (int di : pf.role_play_dims) {
      const PlannedDim& d = dims[size_t(di)];
      static const char* kRoles[] = {"ship", "order", "due", "start"};
      builder.AddFkColumn(pf.table_name,
                          fk_name_for(d, kRoles[rng.NextBelow(4)]),
                          d.table_name, d.pk_name, /*skew=*/0.8, 0.0);
    }
    if (pf.references_fact >= 0) {
      // Fact -> fact degenerate reference ("other" anomaly): points at a
      // unique sequence we add to the referenced fact.
      PlannedFact& target = facts[size_t(pf.references_fact)];
      (void)target;
    }
  }

  // Isolated tables ("other" cases): standalone lookup tables with no joins.
  for (int i = 0; i < num_isolated; ++i) {
    const EntityTemplate& ent =
        EntityPool()[dim_idx[size_t(num_dims + i) % dim_idx.size()]];
    TableSpec spec;
    spec.name = unique_table_name(StyleTokens({ent.name, "list"}, style));
    spec.rows = 10 + rng.NextBelow(80);
    ColumnSpec pk;
    pk.name = Rename("id", style);
    pk.kind = ColumnKind::kSurrogateKey;
    pk.key_base = 1;
    spec.columns.push_back(pk);
    for (size_t a = 0; a < std::min<size_t>(3, ent.attributes.size()); ++a) {
      ColumnSpec col = AttributeColumn(ent.attributes[a], rng);
      col.name = Rename(ent.attributes[a], style);
      spec.columns.push_back(col);
    }
    builder.AddTable(std::move(spec));
  }

  BiCase out = builder.Generate(
      StrFormat("bi_case_%08lx_%s", static_cast<unsigned long>(rng.Next()),
                SchemaTypeName(type)),
      rng);
  out.schema_type = type;
  // Incomplete ground truth: drop a few recorded joins (data unchanged),
  // but never a 1:1 join's record (that would break the footnote-7
  // equivalence classes the evaluation relies on).
  if (options.missing_gt_prob > 0 && out.ground_truth.joins.size() > 2) {
    std::vector<Join> kept;
    for (const Join& j : out.ground_truth.joins) {
      if (j.kind == JoinKind::kNToOne &&
          rng.NextBool(options.missing_gt_prob)) {
        continue;
      }
      kept.push_back(j);
    }
    if (!kept.empty()) out.ground_truth.joins = std::move(kept);
  }
  return out;
}

}  // namespace autobi
