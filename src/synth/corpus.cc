#include "synth/corpus.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"
#include "common/stats_util.h"

namespace autobi {

int BucketOfTableCount(int num_tables) {
  if (num_tables < 4) return -1;
  if (num_tables <= 10) return num_tables - 4;
  if (num_tables <= 15) return 7;
  if (num_tables <= 20) return 8;
  return 9;
}

const char* BucketLabel(int bucket) {
  static const char* kLabels[kNumBuckets] = {
      "4", "5", "6", "7", "8", "9", "10", "[11,15]", "[16,20]", "21+"};
  // invariant: bucket indices come from the bucketing function above.
  AUTOBI_CHECK(bucket >= 0 && bucket < kNumBuckets);
  return kLabels[bucket];
}

std::vector<BiCase> BuildTrainingCorpus(const CorpusOptions& options) {
  Rng rng(options.seed * 0x9E3779B97F4A7C15ULL + 1);
  std::vector<BiCase> corpus;
  corpus.reserve(options.training_cases);
  while (corpus.size() < options.training_cases) {
    BiGenOptions gen = options.gen;
    // Training sizes 3..12, skewed small like the harvested population.
    gen.num_tables = 3 + static_cast<int>(rng.NextZipf(10, 0.7));
    // The broad harvested population has noticeably incomplete ground truth
    // (Appendix A); the label noise spreads classifier scores the way real
    // training data does.
    gen.missing_gt_prob = 0.06;
    Rng case_rng = rng.Fork();
    corpus.push_back(GenerateBiCase(gen, case_rng));
  }
  return corpus;
}

std::vector<BiCase> BuildWildCollection(const CorpusOptions& options,
                                        size_t num_cases) {
  Rng rng(options.seed * 0x9E3779B97F4A7C15ULL + 2);
  std::vector<BiCase> corpus;
  corpus.reserve(num_cases);
  while (corpus.size() < num_cases) {
    BiGenOptions gen = options.gen;
    gen.num_tables = 2 + static_cast<int>(rng.NextZipf(12, 1.2));
    Rng case_rng = rng.Fork();
    corpus.push_back(GenerateBiCase(gen, case_rng));
  }
  return corpus;
}

RealBenchmark BuildRealBenchmark(const CorpusOptions& options) {
  Rng rng(options.seed * 0x9E3779B97F4A7C15ULL + 3);
  RealBenchmark bench;
  std::vector<size_t> filled(kNumBuckets, 0);
  size_t total_needed = options.cases_per_bucket * kNumBuckets;
  size_t attempts = 0;
  while (bench.cases.size() < total_needed &&
         attempts < total_needed * 40) {
    ++attempts;
    // Aim at the least-filled bucket.
    int target_bucket = 0;
    for (int b = 1; b < kNumBuckets; ++b) {
      if (filled[size_t(b)] < filled[size_t(target_bucket)]) {
        target_bucket = b;
      }
    }
    if (filled[size_t(target_bucket)] >= options.cases_per_bucket) break;
    int target_tables;
    if (target_bucket <= 6) {
      target_tables = 4 + target_bucket;
    } else if (target_bucket == 7) {
      target_tables = 11 + int(rng.NextBelow(5));
    } else if (target_bucket == 8) {
      target_tables = 16 + int(rng.NextBelow(5));
    } else {
      // Heavy tail up to ~40 tables (the paper's largest case has 88; we cap
      // the default for single-core runtime, scalable via options).
      target_tables = 21 + int(rng.NextBelow(20));
    }
    BiGenOptions gen = options.gen;
    gen.num_tables = target_tables;
    // The curated benchmark sample has nearly complete ground truth (the
    // paper's evaluation set was manually stratified and deduplicated).
    gen.missing_gt_prob = 0.01;
    Rng case_rng = rng.Fork();
    BiCase bi_case = GenerateBiCase(gen, case_rng);
    // Bucket by the case's *actual* table count (generation may wiggle by a
    // table when 1:1 splits land).
    int bucket = BucketOfTableCount(static_cast<int>(bi_case.tables.size()));
    if (bucket < 0 || filled[size_t(bucket)] >= options.cases_per_bucket) {
      continue;
    }
    ++filled[size_t(bucket)];
    bench.bucket_of.push_back(bucket);
    bench.cases.push_back(std::move(bi_case));
  }
  return bench;
}

CorpusStats ComputeCorpusStats(const std::vector<BiCase>& cases) {
  std::vector<double> rows, cols, tables, edges;
  for (const BiCase& c : cases) {
    tables.push_back(double(c.tables.size()));
    edges.push_back(double(c.ground_truth.joins.size()));
    for (const Table& t : c.tables) {
      rows.push_back(double(t.num_rows()));
      cols.push_back(double(t.num_columns()));
    }
  }
  CorpusStats s;
  s.rows_avg = Mean(rows);
  s.rows_p50 = Percentile(rows, 50);
  s.rows_p90 = Percentile(rows, 90);
  s.rows_p95 = Percentile(rows, 95);
  s.cols_avg = Mean(cols);
  s.cols_p50 = Percentile(cols, 50);
  s.cols_p90 = Percentile(cols, 90);
  s.cols_p95 = Percentile(cols, 95);
  s.tables_avg = Mean(tables);
  s.tables_p50 = Percentile(tables, 50);
  s.tables_p90 = Percentile(tables, 90);
  s.tables_p95 = Percentile(tables, 95);
  s.edges_avg = Mean(edges);
  s.edges_p50 = Percentile(edges, 50);
  s.edges_p90 = Percentile(edges, 90);
  s.edges_p95 = Percentile(edges, 95);
  return s;
}

}  // namespace autobi
