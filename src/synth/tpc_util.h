#ifndef AUTOBI_SYNTH_TPC_UTIL_H_
#define AUTOBI_SYNTH_TPC_UTIL_H_

#include <string>
#include <vector>

#include "synth/schema_builder.h"

namespace autobi {

// Small helpers shared by the TPC/classic-database schema transcriptions:
// terse ColumnSpec factories so table definitions read like DDL.

ColumnSpec Pk(const std::string& name, long base = 1);
ColumnSpec StrKey(const std::string& name, const std::string& prefix,
                  int pad = 6);
ColumnSpec IntCol(const std::string& name, double lo = 0, double hi = 1000,
                  double nulls = 0.0);
ColumnSpec NumCol(const std::string& name, double lo = 0, double hi = 10000,
                  double nulls = 0.0);
ColumnSpec TextCol(const std::string& name, double nulls = 0.0);
ColumnSpec DateCol(const std::string& name, double nulls = 0.0);
ColumnSpec CatCol(const std::string& name, std::vector<std::string> pool,
                  double nulls = 0.0);
ColumnSpec ModKey(const std::string& name, const std::string& ref_table,
                  const std::string& ref_column);
ColumnSpec DivKey(const std::string& name, const std::string& ref_table,
                  const std::string& ref_column, size_t divisor);

// Scales a base row count, keeping at least `floor` rows.
size_t ScaleRows(double scale, size_t base, size_t floor = 5);

}  // namespace autobi

#endif  // AUTOBI_SYNTH_TPC_UTIL_H_
