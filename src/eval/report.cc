#include "eval/report.h"

#include <algorithm>
#include <cstdio>

#include "common/strings.h"

namespace autobi {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TablePrinter::AddSeparator() { rows_.emplace_back(); }

void TablePrinter::Print() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_sep = [&]() {
    std::printf("+");
    for (size_t w : widths) {
      for (size_t i = 0; i < w + 2; ++i) std::printf("-");
      std::printf("+");
    }
    std::printf("\n");
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    std::printf("|");
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
    }
    std::printf("\n");
  };
  print_sep();
  print_row(header_);
  print_sep();
  for (const auto& row : rows_) {
    if (row.empty()) {
      print_sep();
    } else {
      print_row(row);
    }
  }
  print_sep();
}

std::string Fmt3(double v) { return StrFormat("%.3f", v); }

std::string FmtSeconds(double v) {
  // Sub-millisecond values (common for the C++ k-MCA-CC solver) switch to
  // microsecond/millisecond units so distributions stay readable.
  if (v < 0.0005) return StrFormat("%.0fus", v * 1e6);
  if (v < 0.5) return StrFormat("%.2fms", v * 1e3);
  return StrFormat("%.3fs", v);
}

}  // namespace autobi
