#ifndef AUTOBI_EVAL_HARNESS_H_
#define AUTOBI_EVAL_HARNESS_H_

#include <string>
#include <vector>

#include "baselines/baseline.h"
#include "eval/metrics.h"

namespace autobi {

// Result of running one method on one case.
struct CaseResult {
  EdgeMetrics metrics;
  AutoBiTiming timing;
};

// Result of running one method over a benchmark.
struct MethodResults {
  std::string method;
  std::vector<CaseResult> cases;

  AggregateMetrics Quality() const;
  // Total end-to-end seconds per case.
  std::vector<double> TotalSeconds() const;
};

struct HarnessOptions {
  // Worker threads for per-case evaluation (ResolveThreads semantics: 0 =
  // AUTOBI_THREADS / hardware, 1 = serial). Cases are independent and write
  // to per-case result slots, so metrics are identical at any thread count.
  // Note: per-case parallelism subsumes the predictor's internal parallelism
  // (nested parallel regions run serially).
  int threads = 0;
};

// Runs `method` on every case, evaluating against each case's ground truth.
MethodResults RunMethod(const JoinPredictor& method,
                        const std::vector<BiCase>& cases,
                        const HarnessOptions& options = {});

// Quality restricted to a subset of case indices (bucketized reporting,
// Tables 7/8/11/12).
AggregateMetrics QualityOnSubset(const MethodResults& results,
                                 const std::vector<size_t>& indices);

}  // namespace autobi

#endif  // AUTOBI_EVAL_HARNESS_H_
