#ifndef AUTOBI_EVAL_HARNESS_H_
#define AUTOBI_EVAL_HARNESS_H_

#include <string>
#include <vector>

#include "baselines/baseline.h"
#include "common/run_context.h"
#include "eval/metrics.h"

namespace autobi {

// Result of running one method on one case.
struct CaseResult {
  EdgeMetrics metrics;
  AutoBiTiming timing;
  // True when a RunContext stop tripped before this case was evaluated; the
  // metrics slot is then default (empty prediction scored against ground
  // truth is NOT computed — the case simply did not run).
  bool skipped = false;
};

// Result of running one method over a benchmark.
struct MethodResults {
  std::string method;
  std::vector<CaseResult> cases;
  // Number of cases skipped by a RunContext deadline/cancel trip (0 on
  // healthy runs). Quality() aggregates evaluated cases only.
  size_t skipped_cases = 0;

  AggregateMetrics Quality() const;
  // Total end-to-end seconds per case (evaluated cases only).
  std::vector<double> TotalSeconds() const;
};

struct HarnessOptions {
  // Worker threads for per-case evaluation (ResolveThreads semantics: 0 =
  // AUTOBI_THREADS / hardware, 1 = serial). Cases are independent and write
  // to per-case result slots, so metrics are identical at any thread count.
  // Note: per-case parallelism subsumes the predictor's internal parallelism
  // (nested parallel regions run serially).
  int threads = 0;
  // Optional cooperative run control: each case polls StopRequested at its
  // boundary; once tripped, remaining cases are marked skipped instead of
  // evaluated. Null (the default) is a no-op with byte-identical results.
  const RunContext* ctx = nullptr;
};

// Runs `method` on every case, evaluating against each case's ground truth.
MethodResults RunMethod(const JoinPredictor& method,
                        const std::vector<BiCase>& cases,
                        const HarnessOptions& options = {});

// Quality restricted to a subset of case indices (bucketized reporting,
// Tables 7/8/11/12). Skipped cases in the subset are ignored.
AggregateMetrics QualityOnSubset(const MethodResults& results,
                                 const std::vector<size_t>& indices);

}  // namespace autobi

#endif  // AUTOBI_EVAL_HARNESS_H_
