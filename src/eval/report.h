#ifndef AUTOBI_EVAL_REPORT_H_
#define AUTOBI_EVAL_REPORT_H_

#include <string>
#include <vector>

namespace autobi {

// Fixed-width console table printer used by the benchmark binaries to
// render paper-style tables.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  // Adds a separator line before the next row.
  void AddSeparator();

  // Renders to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // Empty row == separator.
};

// "0.973" style formatting for metric cells.
std::string Fmt3(double v);
// "0.02s" style.
std::string FmtSeconds(double v);

}  // namespace autobi

#endif  // AUTOBI_EVAL_REPORT_H_
