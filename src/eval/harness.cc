#include "eval/harness.h"

namespace autobi {

AggregateMetrics MethodResults::Quality() const {
  std::vector<EdgeMetrics> per_case;
  per_case.reserve(cases.size());
  for (const CaseResult& r : cases) per_case.push_back(r.metrics);
  return Aggregate(per_case);
}

std::vector<double> MethodResults::TotalSeconds() const {
  std::vector<double> out;
  out.reserve(cases.size());
  for (const CaseResult& r : cases) out.push_back(r.timing.Total());
  return out;
}

MethodResults RunMethod(const JoinPredictor& method,
                        const std::vector<BiCase>& cases) {
  MethodResults results;
  results.method = method.name();
  results.cases.reserve(cases.size());
  for (const BiCase& bi_case : cases) {
    CaseResult r;
    BiModel predicted = method.Predict(bi_case.tables, &r.timing);
    r.metrics = EvaluateCase(bi_case, predicted);
    results.cases.push_back(r);
  }
  return results;
}

AggregateMetrics QualityOnSubset(const MethodResults& results,
                                 const std::vector<size_t>& indices) {
  std::vector<EdgeMetrics> per_case;
  per_case.reserve(indices.size());
  for (size_t i : indices) per_case.push_back(results.cases[i].metrics);
  return Aggregate(per_case);
}

}  // namespace autobi
