#include "eval/harness.h"

#include "common/parallel.h"

namespace autobi {

AggregateMetrics MethodResults::Quality() const {
  std::vector<EdgeMetrics> per_case;
  per_case.reserve(cases.size());
  for (const CaseResult& r : cases) per_case.push_back(r.metrics);
  return Aggregate(per_case);
}

std::vector<double> MethodResults::TotalSeconds() const {
  std::vector<double> out;
  out.reserve(cases.size());
  for (const CaseResult& r : cases) out.push_back(r.timing.Total());
  return out;
}

MethodResults RunMethod(const JoinPredictor& method,
                        const std::vector<BiCase>& cases,
                        const HarnessOptions& options) {
  MethodResults results;
  results.method = method.name();
  results.cases.resize(cases.size());
  ParallelFor(
      cases.size(),
      [&](size_t i) {
        CaseResult& r = results.cases[i];
        BiModel predicted = method.Predict(cases[i].tables, &r.timing);
        r.metrics = EvaluateCase(cases[i], predicted);
      },
      options.threads);
  return results;
}

AggregateMetrics QualityOnSubset(const MethodResults& results,
                                 const std::vector<size_t>& indices) {
  std::vector<EdgeMetrics> per_case;
  per_case.reserve(indices.size());
  for (size_t i : indices) per_case.push_back(results.cases[i].metrics);
  return Aggregate(per_case);
}

}  // namespace autobi
