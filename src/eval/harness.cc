#include "eval/harness.h"

#include "common/parallel.h"

namespace autobi {

AggregateMetrics MethodResults::Quality() const {
  std::vector<EdgeMetrics> per_case;
  per_case.reserve(cases.size());
  for (const CaseResult& r : cases) {
    if (!r.skipped) per_case.push_back(r.metrics);
  }
  return Aggregate(per_case);
}

std::vector<double> MethodResults::TotalSeconds() const {
  std::vector<double> out;
  out.reserve(cases.size());
  for (const CaseResult& r : cases) {
    if (!r.skipped) out.push_back(r.timing.Total());
  }
  return out;
}

MethodResults RunMethod(const JoinPredictor& method,
                        const std::vector<BiCase>& cases,
                        const HarnessOptions& options) {
  MethodResults results;
  results.method = method.name();
  results.cases.resize(cases.size());
  const RunContext* ctx = options.ctx;
  ParallelFor(
      cases.size(),
      [&](size_t i) {
        CaseResult& r = results.cases[i];
        // Case-boundary stop poll: a tripped deadline/cancel skips the
        // remaining cases rather than abandoning the whole run.
        if (ctx != nullptr && ctx->StopRequested()) {
          r.skipped = true;
          return;
        }
        BiModel predicted = method.Predict(cases[i].tables, &r.timing);
        r.metrics = EvaluateCase(cases[i], predicted);
      },
      options.threads);
  for (const CaseResult& r : results.cases) {
    if (r.skipped) ++results.skipped_cases;
  }
  return results;
}

AggregateMetrics QualityOnSubset(const MethodResults& results,
                                 const std::vector<size_t>& indices) {
  std::vector<EdgeMetrics> per_case;
  per_case.reserve(indices.size());
  for (size_t i : indices) {
    if (!results.cases[i].skipped) {
      per_case.push_back(results.cases[i].metrics);
    }
  }
  return Aggregate(per_case);
}

}  // namespace autobi
