#include "eval/metrics.h"

#include <map>

#include "common/stats_util.h"

namespace autobi {

namespace {

// Union-find over the ColumnRefs connected by ground-truth 1:1 joins,
// implementing footnote 7's semantic equivalence.
class OneToOneClasses {
 public:
  explicit OneToOneClasses(const BiModel& ground_truth) {
    for (const Join& j : ground_truth.joins) {
      if (j.kind == JoinKind::kOneToOne) {
        Union(Intern(j.from), Intern(j.to));
      }
    }
  }

  // Class id of a ref; refs not touched by any 1:1 join get a singleton id.
  int ClassOf(const ColumnRef& ref) {
    return Find(Intern(ref));
  }

 private:
  int Intern(const ColumnRef& ref) {
    auto it = ids_.find(ref);
    if (it != ids_.end()) return it->second;
    int id = static_cast<int>(parent_.size());
    ids_.emplace(ref, id);
    parent_.push_back(id);
    return id;
  }
  int Find(int x) {
    while (parent_[size_t(x)] != x) {
      parent_[size_t(x)] = parent_[size_t(parent_[size_t(x)])];
      x = parent_[size_t(x)];
    }
    return x;
  }
  void Union(int a, int b) { parent_[size_t(Find(a))] = Find(b); }

  std::map<ColumnRef, int> ids_;
  std::vector<int> parent_;
};

// Does `pred` match `truth` up to 1:1 class substitution?
bool Matches(OneToOneClasses& classes, const Join& pred, const Join& truth) {
  int pf = classes.ClassOf(pred.from);
  int pt = classes.ClassOf(pred.to);
  int tf = classes.ClassOf(truth.from);
  int tt = classes.ClassOf(truth.to);
  if (truth.kind == JoinKind::kOneToOne) {
    // Both truth endpoints share a class; any predicted join inside that
    // class (either kind, either orientation) identifies the relationship.
    return pf == tf && pt == tf;
  }
  if (pred.kind == JoinKind::kOneToOne) {
    // A predicted 1:1 matching an N:1 truth: endpoints may be either way.
    return (pf == tf && pt == tt) || (pf == tt && pt == tf);
  }
  // N:1 vs N:1: direction matters.
  return pf == tf && pt == tt;
}

}  // namespace

EdgeMetrics EvaluateCase(const BiCase& bi_case, const BiModel& predicted) {
  OneToOneClasses classes(bi_case.ground_truth);
  EdgeMetrics m;
  m.predicted = predicted.joins.size();
  m.ground_truth = bi_case.ground_truth.joins.size();

  std::vector<char> truth_used(bi_case.ground_truth.joins.size(), 0);
  for (const Join& pred : predicted.joins) {
    for (size_t t = 0; t < bi_case.ground_truth.joins.size(); ++t) {
      if (truth_used[t]) continue;
      if (Matches(classes, pred, bi_case.ground_truth.joins[t])) {
        truth_used[t] = 1;
        ++m.correct;
        break;
      }
    }
  }

  if (m.predicted == 0) {
    m.precision = (m.ground_truth == 0) ? 1.0 : 0.0;
  } else {
    m.precision = double(m.correct) / double(m.predicted);
  }
  if (m.ground_truth == 0) {
    m.recall = (m.predicted == 0) ? 1.0 : 0.0;
  } else {
    m.recall = double(m.correct) / double(m.ground_truth);
  }
  m.f1 = FScore(m.precision, m.recall);
  m.case_correct = (m.precision == 1.0);
  return m;
}

AggregateMetrics Aggregate(const std::vector<EdgeMetrics>& per_case) {
  AggregateMetrics agg;
  agg.num_cases = per_case.size();
  if (per_case.empty()) return agg;
  for (const EdgeMetrics& m : per_case) {
    agg.precision += m.precision;
    agg.recall += m.recall;
    agg.f1 += m.f1;
    agg.case_precision += m.case_correct ? 1.0 : 0.0;
  }
  double n = double(per_case.size());
  agg.precision /= n;
  agg.recall /= n;
  agg.f1 /= n;
  agg.case_precision /= n;
  return agg;
}

}  // namespace autobi
