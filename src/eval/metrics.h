#ifndef AUTOBI_EVAL_METRICS_H_
#define AUTOBI_EVAL_METRICS_H_

#include <vector>

#include "core/bi_model.h"

namespace autobi {

// Per-case evaluation result (Section 5.1 metrics).
struct EdgeMetrics {
  size_t predicted = 0;
  size_t ground_truth = 0;
  size_t correct = 0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  // Case-level precision (Equation 20): 1 iff no incorrect edge predicted.
  bool case_correct = false;
};

// Compares a predicted model against the case's ground truth. Matching
// honors the paper's semantic-equivalence rule (footnote 7): endpoints may
// be substituted across ground-truth 1:1 joins, so a predicted F -> B where
// the truth is F -> A with A 1:1 B counts as correct. Each ground-truth join
// can be matched by at most one prediction (and vice versa).
EdgeMetrics EvaluateCase(const BiCase& bi_case, const BiModel& predicted);

// Benchmark-level aggregates: per-case averages, as in Table 5.
struct AggregateMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double case_precision = 0.0;
  size_t num_cases = 0;
};
AggregateMetrics Aggregate(const std::vector<EdgeMetrics>& per_case);

}  // namespace autobi

#endif  // AUTOBI_EVAL_METRICS_H_
