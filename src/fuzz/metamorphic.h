#ifndef AUTOBI_FUZZ_METAMORPHIC_H_
#define AUTOBI_FUZZ_METAMORPHIC_H_

#include "common/rng.h"
#include "fuzz/differential.h"
#include "graph/join_graph.h"

namespace autobi {

// Metamorphic checks for instances too large for the 2^m brute-force
// oracles. Each property is a provable invariant of the *optimal* objective,
// so any solve that exhausts the branch-and-bound budget (and may therefore
// be suboptimal) skips the case instead of reporting a false mismatch.
//
// Properties:
//   1. Structural validity + self-consistency of the k-MCA-CC result.
//   2. Vertex-relabeling invariance: permuting vertex ids leaves the optimal
//      objective value unchanged.
//   3. Uniform weight scaling: raising every probability to the power c > 0
//      scales every weight by c (w = -log P); with penalty' = c * penalty
//      the optimal objective scales by exactly c.
//   4. Penalty monotonicity: the optimal component count k is non-increasing
//      in the penalty weight (for any optimal solutions J1, J2 at p1 < p2,
//      adding their optimality inequalities gives (k2-k1)(p2-p1) <= 0).
//   5. enforce_fk_once=false is identical to plain k-MCA (same edge ids).
//   6. EMS feasibility on the backbone (FK-once, acyclicity, tau, 1:1 rule).
struct MetamorphicOutcome {
  CheckResult check;
  // True when the branch-and-bound budget was exhausted and the equality
  // properties were skipped (the structural checks still ran).
  bool skipped = false;
};

struct MetamorphicOptions {
  // Branch-and-bound budget per solve; exhausting it skips the case.
  long max_one_mca_calls = 200000;
};

MetamorphicOutcome CheckJoinGraphMetamorphic(const JoinGraph& graph,
                                             double penalty_weight, Rng& rng,
                                             const MetamorphicOptions&
                                                 options = {});

}  // namespace autobi

#endif  // AUTOBI_FUZZ_METAMORPHIC_H_
