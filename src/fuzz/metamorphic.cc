#include "fuzz/metamorphic.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/strings.h"
#include "graph/kmca.h"
#include "graph/kmca_cc.h"

namespace autobi {

namespace {

// Rebuilds `g` with every edge passed through `map_vertex` and
// `map_probability`, preserving edge order (so conflict-group structure and
// 1:1 pairing carry over).
JoinGraph TransformGraph(const JoinGraph& g, const std::vector<int>& perm,
                         double prob_exponent) {
  JoinGraph out(g.num_vertices());
  for (const JoinEdge& e : g.edges()) {
    out.AddEdge(perm[size_t(e.src)], perm[size_t(e.dst)], e.src_columns,
                e.dst_columns, std::pow(e.probability, prob_exponent),
                e.one_to_one, e.pair_id);
  }
  return out;
}

double RelTolerance(double a, double b) {
  return 1e-6 * std::max({1.0, std::fabs(a), std::fabs(b)});
}

}  // namespace

MetamorphicOutcome CheckJoinGraphMetamorphic(const JoinGraph& g,
                                             double penalty_weight, Rng& rng,
                                             const MetamorphicOptions& opt) {
  MetamorphicOutcome out;
  KmcaCcOptions cc_opt;
  cc_opt.penalty_weight = penalty_weight;
  cc_opt.max_one_mca_calls = opt.max_one_mca_calls;

  auto solve = [&](const JoinGraph& graph, const KmcaCcOptions& o,
                   bool* exhausted) {
    KmcaCcStats stats;
    KmcaResult r = SolveKmcaCc(graph, o, &stats);
    *exhausted = stats.budget_exhausted;
    return r;
  };

  bool exhausted = false;
  KmcaResult base = solve(g, cc_opt, &exhausted);

  // Property 1: structural validity holds even for budget-exhausted solves.
  out.check = ValidateKmcaResult(g, base, penalty_weight,
                                 /*enforce_fk_once=*/true, "kmca_cc");
  if (!out.check.ok) return out;
  if (exhausted) {
    out.skipped = true;
    return out;
  }

  // Property 2: vertex-relabeling invariance of the optimal objective.
  std::vector<int> perm(size_t(g.num_vertices()));
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(perm);
  JoinGraph relabeled = TransformGraph(g, perm, /*prob_exponent=*/1.0);
  KmcaResult perm_result = solve(relabeled, cc_opt, &exhausted);
  if (exhausted) {
    out.skipped = true;
    return out;
  }
  if (std::fabs(perm_result.cost - base.cost) >
      RelTolerance(perm_result.cost, base.cost)) {
    out.check = CheckFail(
        "relabel_cost_mismatch",
        StrFormat("optimal cost %.17g, after vertex relabeling %.17g",
                  base.cost, perm_result.cost));
    return out;
  }

  // Property 3: uniform weight scaling (P -> P^c, penalty -> c * penalty
  // scales every term of Equation 14 by c).
  double c = rng.NextDouble(0.5, 2.0);
  std::vector<int> identity(size_t(g.num_vertices()));
  std::iota(identity.begin(), identity.end(), 0);
  JoinGraph scaled = TransformGraph(g, identity, c);
  KmcaCcOptions scaled_opt = cc_opt;
  scaled_opt.penalty_weight = c * penalty_weight;
  KmcaResult scaled_result = solve(scaled, scaled_opt, &exhausted);
  if (exhausted) {
    out.skipped = true;
    return out;
  }
  if (std::fabs(scaled_result.cost - c * base.cost) >
      RelTolerance(scaled_result.cost, c * base.cost)) {
    out.check = CheckFail(
        "scaling_cost_mismatch",
        StrFormat("cost %.17g scaled by c=%.6g gives %.17g, solver returned "
                  "%.17g",
                  base.cost, c, c * base.cost, scaled_result.cost));
    return out;
  }

  // Property 4: optimal k is non-increasing in the penalty weight.
  KmcaCcOptions hi_opt = cc_opt;
  hi_opt.penalty_weight = 1.5 * penalty_weight;
  KmcaResult hi = solve(g, hi_opt, &exhausted);
  if (exhausted) {
    out.skipped = true;
    return out;
  }
  if (hi.k > base.k) {
    out.check = CheckFail(
        "penalty_monotonicity_violated",
        StrFormat("k=%d at penalty %.6g but k=%d at penalty %.6g", base.k,
                  penalty_weight, hi.k, hi_opt.penalty_weight));
    return out;
  }
  KmcaCcOptions lo_opt = cc_opt;
  lo_opt.penalty_weight = 0.6 * penalty_weight;
  KmcaResult lo = solve(g, lo_opt, &exhausted);
  if (exhausted) {
    out.skipped = true;
    return out;
  }
  if (lo.k < base.k) {
    out.check = CheckFail(
        "penalty_monotonicity_violated",
        StrFormat("k=%d at penalty %.6g but k=%d at penalty %.6g", base.k,
                  penalty_weight, lo.k, lo_opt.penalty_weight));
    return out;
  }

  // Property 5: the FK-once ablation degenerates to plain k-MCA exactly.
  KmcaCcOptions no_cc = cc_opt;
  no_cc.enforce_fk_once = false;
  KmcaResult ablated = SolveKmcaCc(g, no_cc);
  KmcaResult plain = SolveKmca(g, penalty_weight);
  if (ablated.edge_ids != plain.edge_ids) {
    out.check = CheckFail("fk_once_ablation_mismatch",
                          "SolveKmcaCc(enforce_fk_once=false) differs from "
                          "SolveKmca");
    return out;
  }

  // Property 6: EMS feasibility on the optimal backbone.
  out.check = CheckEmsOnBackbone(g, base.edge_ids);
  return out;
}

}  // namespace autobi
