#ifndef AUTOBI_FUZZ_MINIMIZE_H_
#define AUTOBI_FUZZ_MINIMIZE_H_

#include <functional>

#include "fuzz/differential.h"
#include "graph/join_graph.h"

namespace autobi {

// A failing-instance predicate: returns a non-ok CheckResult while the
// instance still reproduces the bug.
using JoinGraphCheck =
    std::function<CheckResult(const JoinGraph&, double penalty_weight)>;

struct MinimizedInstance {
  JoinGraph graph;
  double penalty_weight = 0.0;
  // The failure the minimized instance still reproduces.
  CheckResult failure;
  // Number of accepted shrink steps (edges dropped + vertices compacted).
  int shrink_steps = 0;
};

// Rebuilds `g` without edge `edge_id` (edge ids above it shift down by one).
JoinGraph RemoveEdge(const JoinGraph& g, int edge_id);

// Renumbers vertices so that only vertices incident to at least one edge
// remain (plus vertex 0 if the graph would otherwise be empty). Edge ids and
// order are preserved.
JoinGraph CompactVertices(const JoinGraph& g);

// Greedy delta-debugging: repeatedly drops single edges while `check` still
// fails, then compacts unused vertices. The returned instance fails `check`
// (with whatever kind the shrunken instance exhibits — shrinking may surface
// a different facet of the same bug, which is fine for a repro).
MinimizedInstance MinimizeFailure(const JoinGraph& g, double penalty_weight,
                                  const JoinGraphCheck& check);

}  // namespace autobi

#endif  // AUTOBI_FUZZ_MINIMIZE_H_
