#include "fuzz/differential.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "graph/brute_force.h"
#include "graph/ems.h"
#include "graph/kmca.h"
#include "graph/kmca_cc.h"
#include "graph/validate.h"

namespace autobi {

namespace {

double CostTolerance(double a, double b) {
  return 1e-7 * std::max({1.0, std::fabs(a), std::fabs(b)});
}

std::vector<std::pair<int, int>> EdgePairs(const JoinGraph& g,
                                           const std::vector<int>& ids) {
  std::vector<std::pair<int, int>> pairs;
  pairs.reserve(ids.size());
  for (int id : ids) pairs.emplace_back(g.edge(id).src, g.edge(id).dst);
  return pairs;
}

std::string IdsToString(const std::vector<int>& ids) {
  std::string s = "{";
  for (int id : ids) s += StrFormat("%d ", id);
  s += "}";
  return s;
}

}  // namespace

CheckResult ValidateKmcaResult(const JoinGraph& g, const KmcaResult& r,
                               double penalty, bool enforce_fk_once,
                               const char* solver) {
  if (!r.feasible) {
    return CheckFail(StrFormat("%s_infeasible", solver),
                     "solver reported infeasible (always feasible: the "
                     "empty edge set is a valid k-arborescence)");
  }
  int k = 0;
  if (!IsKArborescence(g.num_vertices(), EdgePairs(g, r.edge_ids), &k)) {
    return CheckFail(StrFormat("%s_not_k_arborescence", solver),
                     StrFormat("edge set %s violates Definition 3",
                               IdsToString(r.edge_ids).c_str()));
  }
  if (k != r.k) {
    return CheckFail(
        StrFormat("%s_k_mismatch", solver),
        StrFormat("reported k=%d, weak components=%d", r.k, k));
  }
  if (enforce_fk_once && !SatisfiesFkOnce(g, r.edge_ids)) {
    return CheckFail(StrFormat("%s_fk_once_violated", solver),
                     StrFormat("edge set %s violates Equation 16",
                               IdsToString(r.edge_ids).c_str()));
  }
  double cost = KArborescenceCost(g, r.edge_ids, penalty);
  if (std::fabs(cost - r.cost) > CostTolerance(cost, r.cost)) {
    return CheckFail(
        StrFormat("%s_cost_inconsistent", solver),
        StrFormat("reported cost %.17g, recomputed %.17g", r.cost, cost));
  }
  return CheckResult{};
}

CheckResult CheckEmsOnBackbone(const JoinGraph& g,
                               const std::vector<int>& backbone) {
  EmsOptions ems_opt;
  std::vector<int> extra = SolveEmsGreedy(g, backbone, ems_opt);
  std::vector<int> combined = backbone;
  combined.insert(combined.end(), extra.begin(), extra.end());
  if (!SatisfiesFkOnce(g, combined)) {
    return CheckFail("ems_fk_once_violated",
                     StrFormat("backbone+EMS %s violates Equation 18",
                               IdsToString(combined).c_str()));
  }
  if (HasDirectedCycle(g.num_vertices(), EdgePairs(g, combined))) {
    return CheckFail("ems_cycle",
                     StrFormat("backbone+EMS %s violates Equation 19",
                               IdsToString(combined).c_str()));
  }
  std::set<int> pair_ids;
  for (int id : combined) {
    int pid = g.edge(id).pair_id;
    if (pid >= 0 && !pair_ids.insert(pid).second) {
      return CheckFail("ems_both_orientations",
                       StrFormat("backbone+EMS selects both orientations of "
                                 "1:1 pair %d",
                                 pid));
    }
  }
  for (int id : extra) {
    if (g.edge(id).probability < ems_opt.tau) {
      return CheckFail("ems_below_tau",
                       StrFormat("EMS added edge %d with P=%.6g < tau=%.6g",
                                 id, g.edge(id).probability, ems_opt.tau));
    }
  }
  return CheckResult{};
}

CheckResult CheckJoinGraphDifferential(const JoinGraph& g,
                                       double penalty_weight) {
  KmcaCcOptions cc_opt;
  cc_opt.penalty_weight = penalty_weight;

  // --- k-MCA-CC vs exhaustive oracle.
  KmcaResult fast_cc = SolveKmcaCc(g, cc_opt);
  if (CheckResult v = ValidateKmcaResult(g, fast_cc, penalty_weight,
                                         /*enforce_fk_once=*/true, "kmca_cc");
      !v.ok) {
    return v;
  }
  KmcaResult brute_cc = BruteForceKmcaCc(g, penalty_weight);
  if (std::fabs(fast_cc.cost - brute_cc.cost) >
      CostTolerance(fast_cc.cost, brute_cc.cost)) {
    return CheckFail(
        "kmca_cc_cost_mismatch",
        StrFormat("SolveKmcaCc=%.17g %s vs BruteForceKmcaCc=%.17g %s",
                  fast_cc.cost, IdsToString(fast_cc.edge_ids).c_str(),
                  brute_cc.cost, IdsToString(brute_cc.edge_ids).c_str()));
  }

  // --- New wave-parallel k-MCA-CC vs the frozen serial reference. Cost
  // only: both are exact, but equal-cost optima may resolve to different
  // edge sets (the legacy search has no lexicographic incumbent rule).
  KmcaResult legacy_cc = SolveKmcaCcLegacy(g, cc_opt);
  if (std::fabs(fast_cc.cost - legacy_cc.cost) >
      CostTolerance(fast_cc.cost, legacy_cc.cost)) {
    return CheckFail(
        "kmca_cc_legacy_mismatch",
        StrFormat("SolveKmcaCc=%.17g %s vs SolveKmcaCcLegacy=%.17g %s",
                  fast_cc.cost, IdsToString(fast_cc.edge_ids).c_str(),
                  legacy_cc.cost, IdsToString(legacy_cc.edge_ids).c_str()));
  }

  // --- k-MCA vs exhaustive oracle.
  KmcaResult fast_k = SolveKmca(g, penalty_weight);
  if (CheckResult v = ValidateKmcaResult(g, fast_k, penalty_weight,
                                         /*enforce_fk_once=*/false, "kmca");
      !v.ok) {
    return v;
  }
  KmcaResult brute_k = BruteForceKmca(g, penalty_weight);
  if (std::fabs(fast_k.cost - brute_k.cost) >
      CostTolerance(fast_k.cost, brute_k.cost)) {
    return CheckFail(
        "kmca_cost_mismatch",
        StrFormat("SolveKmca=%.17g %s vs BruteForceKmca=%.17g %s",
                  fast_k.cost, IdsToString(fast_k.edge_ids).c_str(),
                  brute_k.cost, IdsToString(brute_k.edge_ids).c_str()));
  }

  // --- Relaxation bound: dropping the constraint can only help.
  if (fast_k.cost > fast_cc.cost + CostTolerance(fast_k.cost, fast_cc.cost)) {
    return CheckFail("relaxation_bound_violated",
                     StrFormat("k-MCA cost %.17g > k-MCA-CC cost %.17g",
                               fast_k.cost, fast_cc.cost));
  }

  // --- enforce_fk_once=false degenerates to plain k-MCA, exactly.
  KmcaCcOptions no_cc = cc_opt;
  no_cc.enforce_fk_once = false;
  KmcaResult ablated = SolveKmcaCc(g, no_cc);
  if (ablated.edge_ids != fast_k.edge_ids) {
    return CheckFail("fk_once_ablation_mismatch",
                     StrFormat("SolveKmcaCc(no fk-once)=%s vs SolveKmca=%s",
                               IdsToString(ablated.edge_ids).c_str(),
                               IdsToString(fast_k.edge_ids).c_str()));
  }

  // --- Determinism: a second solve must be byte-identical.
  KmcaResult again = SolveKmcaCc(g, cc_opt);
  if (again.edge_ids != fast_cc.edge_ids) {
    return CheckFail("kmca_cc_nondeterministic",
                     StrFormat("first solve %s, second solve %s",
                               IdsToString(fast_cc.edge_ids).c_str(),
                               IdsToString(again.edge_ids).c_str()));
  }

  // --- EMS recall edges on top of the backbone.
  return CheckEmsOnBackbone(g, fast_cc.edge_ids);
}

CheckResult CheckArcDifferential(const ArcInstance& instance) {
  auto fast = SolveMinCostArborescence(instance.num_vertices, instance.arcs,
                                       instance.root);
  auto slow = BruteForceMinArborescence(instance.num_vertices, instance.arcs,
                                        instance.root);
  if (fast.has_value() != slow.has_value()) {
    return CheckFail(
        "edmonds_feasibility_mismatch",
        StrFormat("Edmonds %s, brute force %s on %s",
                  fast.has_value() ? "feasible" : "infeasible",
                  slow.has_value() ? "feasible" : "infeasible",
                  FormatArcInstance(instance).c_str()));
  }
  if (!fast.has_value()) return CheckResult{};

  std::vector<std::pair<int, int>> pairs;
  for (int i : *fast) {
    pairs.emplace_back(instance.arcs[size_t(i)].src,
                       instance.arcs[size_t(i)].dst);
  }
  if (!IsSpanningArborescence(instance.num_vertices, pairs, instance.root)) {
    return CheckFail("edmonds_not_spanning",
                     StrFormat("selection is not a spanning arborescence on "
                               "%s",
                               FormatArcInstance(instance).c_str()));
  }
  double fast_w = ArcSetWeight(instance.arcs, *fast);
  double slow_w = ArcSetWeight(instance.arcs, *slow);
  if (std::fabs(fast_w - slow_w) > CostTolerance(fast_w, slow_w)) {
    return CheckFail("edmonds_weight_mismatch",
                     StrFormat("Edmonds=%.17g vs brute force=%.17g on %s",
                               fast_w, slow_w,
                               FormatArcInstance(instance).c_str()));
  }
  auto again = SolveMinCostArborescence(instance.num_vertices, instance.arcs,
                                        instance.root);
  if (!again.has_value() || *again != *fast) {
    return CheckFail("edmonds_nondeterministic",
                     StrFormat("repeated solves differ on %s",
                               FormatArcInstance(instance).c_str()));
  }

  // --- Iterative workspace vs the frozen recursive reference: the
  // contraction orders are mirrored exactly, so the selected arc indices
  // (not just the weight) must match arc-for-arc.
  auto legacy = SolveMinCostArborescenceLegacy(instance.num_vertices,
                                               instance.arcs, instance.root);
  if (!legacy.has_value() || *legacy != *fast) {
    return CheckFail("edmonds_legacy_mismatch",
                     StrFormat("iterative workspace and recursive reference "
                               "select different arcs on %s",
                               FormatArcInstance(instance).c_str()));
  }
  return CheckResult{};
}

}  // namespace autobi
