#include "fuzz/generator.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "graph/kmca.h"

namespace autobi {

namespace {

// Quantized probabilities for exact weight ties: any two edges drawing the
// same value get bit-identical weights (-log of the same double).
constexpr double kTieProbs[] = {0.25, 0.5, 0.75, 0.9};

double DrawProbability(const JoinGraphGenOptions& opt, Rng& rng) {
  if (rng.NextBool(opt.tie_prob)) {
    return kTieProbs[rng.NextBelow(std::size(kTieProbs))];
  }
  return rng.NextDouble(opt.min_probability, opt.max_probability);
}

int DrawEdgeCount(int min_edges, int max_edges, double skew, Rng& rng) {
  int span = max_edges - min_edges + 1;
  double u = rng.NextDouble();
  int m = min_edges + int(std::pow(u, skew) * span);
  return std::min(m, max_edges);
}

}  // namespace

JoinGraphInstance GenJoinGraph(const JoinGraphGenOptions& opt, Rng& rng) {
  JoinGraphInstance instance;
  int n = int(rng.NextInt(opt.min_vertices, opt.max_vertices));
  JoinGraph& g = instance.graph;
  g.set_num_vertices(n);

  // Partition vertices into blocks; edges mostly stay inside their block.
  int num_blocks = 1 + int(rng.NextBelow(uint64_t(opt.max_blocks)));
  std::vector<int> block(static_cast<size_t>(n));
  std::vector<std::vector<int>> members(static_cast<size_t>(num_blocks));
  for (int v = 0; v < n; ++v) {
    block[size_t(v)] = int(rng.NextBelow(uint64_t(num_blocks)));
    members[size_t(block[size_t(v)])].push_back(v);
  }

  auto pick_dst = [&](int src) {
    // Same-block destination unless the cross-block knob fires (or the
    // block has no other member).
    const std::vector<int>& home = members[size_t(block[size_t(src)])];
    if (home.size() >= 2 && !rng.NextBool(opt.cross_block_prob)) {
      for (int tries = 0; tries < 8; ++tries) {
        int v = home[rng.NextBelow(home.size())];
        if (v != src) return v;
      }
    }
    for (;;) {
      int v = int(rng.NextBelow(uint64_t(n)));
      if (v != src) return v;
    }
  };

  int target = DrawEdgeCount(opt.min_edges, opt.max_edges, opt.edge_skew, rng);
  int attempts = 0;
  while (int(g.num_edges()) < target && attempts < 10 * target + 32) {
    ++attempts;
    int remaining = target - int(g.num_edges());
    if (remaining >= 2 && n >= 2 && rng.NextBool(opt.one_to_one_prob)) {
      int a = int(rng.NextBelow(uint64_t(n)));
      int b = pick_dst(a);
      g.AddOneToOneEdge(a, b, {int(rng.NextBelow(4))},
                        {int(rng.NextBelow(4))}, DrawProbability(opt, rng));
      continue;
    }
    if (g.num_edges() > 0 && rng.NextBool(opt.parallel_edge_prob)) {
      // Duplicate an existing (src, dst) pair; reusing the source columns
      // too makes it simultaneously a conflict-group member.
      const JoinEdge& e = g.edge(int(rng.NextBelow(g.num_edges())));
      std::vector<int> cols =
          rng.NextBool(0.5) ? e.src_columns
                            : std::vector<int>{int(rng.NextBelow(4))};
      g.AddEdge(e.src, e.dst, std::move(cols), {int(rng.NextBelow(2))},
                DrawProbability(opt, rng));
      continue;
    }
    if (g.num_edges() > 0 && rng.NextBool(opt.conflict_density)) {
      // Grow an FK-once conflict group: same source vertex and columns,
      // (usually) different destination.
      const JoinEdge& e = g.edge(int(rng.NextBelow(g.num_edges())));
      int dst = pick_dst(e.src);
      g.AddEdge(e.src, dst, e.src_columns, {int(rng.NextBelow(2))},
                DrawProbability(opt, rng));
      continue;
    }
    int src = int(rng.NextBelow(uint64_t(n)));
    int dst = pick_dst(src);
    g.AddEdge(src, dst, {int(rng.NextBelow(4))}, {int(rng.NextBelow(2))},
              DrawProbability(opt, rng));
  }

  instance.penalty_weight = rng.NextBool(0.3)
                                ? DefaultPenaltyWeight()
                                : rng.NextDouble(opt.min_penalty,
                                                 opt.max_penalty);
  return instance;
}

ArcInstance GenArcInstance(const ArcGenOptions& opt, Rng& rng) {
  ArcInstance instance;
  int n = int(rng.NextInt(opt.min_vertices, opt.max_vertices));
  instance.num_vertices = n;
  instance.root = int(rng.NextBelow(uint64_t(n)));
  int m = int(rng.NextInt(opt.min_arcs, opt.max_arcs));
  for (int i = 0; i < m; ++i) {
    if (!instance.arcs.empty() && rng.NextBool(opt.duplicate_arc_prob)) {
      Arc dup = instance.arcs[rng.NextBelow(instance.arcs.size())];
      if (rng.NextBool(0.5)) {
        // Same endpoints, new weight: a parallel arc.
        dup.weight = rng.NextDouble(opt.min_weight, opt.max_weight);
      }
      instance.arcs.push_back(dup);
      continue;
    }
    Arc a;
    a.src = int(rng.NextBelow(uint64_t(n)));
    a.dst = rng.NextBool(opt.self_loop_prob)
                ? a.src
                : int(rng.NextBelow(uint64_t(n)));
    if (rng.NextBool(opt.tie_prob)) {
      constexpr double kTieWeights[] = {-2.0, -1.0, 0.0, 0.5, 1.0, 2.0};
      a.weight = kTieWeights[rng.NextBelow(std::size(kTieWeights))];
    } else {
      a.weight = rng.NextDouble(opt.min_weight, opt.max_weight);
    }
    instance.arcs.push_back(a);
  }
  return instance;
}

std::string FormatArcInstance(const ArcInstance& instance) {
  std::string out = StrFormat("n=%d root=%d arcs=[", instance.num_vertices,
                              instance.root);
  for (const Arc& a : instance.arcs) {
    out += StrFormat("(%d->%d w=%.17g) ", a.src, a.dst, a.weight);
  }
  out += "]";
  return out;
}

}  // namespace autobi
