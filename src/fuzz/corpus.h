#ifndef AUTOBI_FUZZ_CORPUS_H_
#define AUTOBI_FUZZ_CORPUS_H_

#include <string>
#include <vector>

#include "graph/join_graph.h"

namespace autobi {

// Plain-text persistence for fuzz instances (tests/corpus/*.txt). Format:
//
//   # free-form comment lines (provenance: seed, knobs, failure kind)
//   vertices <n>
//   penalty <p>
//   edge <src> <dst> <probability> <one_to_one 0|1> <pair_id>
//        <#src_cols> <cols...> <#dst_cols> <cols...>   (one line per edge)
//
// Edges are listed in id order; reloading reproduces ids, conflict groups
// and weights exactly (probabilities round-trip via %.17g).
struct CorpusCase {
  std::vector<std::string> comments;  // Without the leading "# ".
  JoinGraph graph;
  double penalty_weight = 0.0;
};

std::string FormatCorpusCase(const JoinGraph& graph, double penalty_weight,
                             const std::vector<std::string>& comments);

// Parses `text`; on failure returns false and sets `error`.
bool ParseCorpusCase(const std::string& text, CorpusCase* out,
                     std::string* error);

bool LoadCorpusFile(const std::string& path, CorpusCase* out,
                    std::string* error);

// Writes (overwrites) `path`; creates the parent directory if needed.
bool SaveCorpusFile(const std::string& path, const JoinGraph& graph,
                    double penalty_weight,
                    const std::vector<std::string>& comments);

// Sorted list of "*.txt" files under `dir`; empty if the directory does not
// exist.
std::vector<std::string> ListCorpusFiles(const std::string& dir);

}  // namespace autobi

#endif  // AUTOBI_FUZZ_CORPUS_H_
