#ifndef AUTOBI_FUZZ_FUZZER_H_
#define AUTOBI_FUZZ_FUZZER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace autobi {

// Orchestrates the differential-fuzzing campaign:
//   1. replays every corpus case under tests/corpus/ first (regression gate),
//   2. runs `cases` seeded differential cases (<= max_edges, brute-force
//      cross-check of k-MCA-CC / k-MCA / Edmonds),
//   3. interleaves metamorphic cases on larger instances where brute force
//      is infeasible,
//   4. on any mismatch, greedily minimizes the instance and writes a repro
//      file into the corpus directory.
struct FuzzOptions {
  uint64_t seed = 1;
  long cases = 1000;
  int max_edges = 18;
  // Wall-clock budget in seconds; 0 disables. When exhausted the run stops
  // early and reports time_budget_hit.
  double time_budget_sec = 0.0;
  // Corpus directory for replay and repro output; empty disables both.
  std::string corpus_dir;
  bool write_repros = true;
  // Every Nth case additionally runs an Edmonds arc differential /
  // a large-instance metamorphic case. 0 disables.
  int arc_every = 2;
  int metamorphic_every = 4;
};

struct FuzzReport {
  long corpus_replayed = 0;
  long differential_cases = 0;
  long arc_cases = 0;
  long metamorphic_cases = 0;
  long metamorphic_skipped = 0;  // Branch-and-bound budget exhausted.
  long mismatches = 0;
  bool time_budget_hit = false;
  double elapsed_sec = 0.0;
  // One line per failure: "<kind>: <message> [repro: <path>]".
  std::vector<std::string> failures;
  std::vector<std::string> repro_paths;
};

FuzzReport RunFuzz(const FuzzOptions& options);

// Writes `count` generator-drawn adversarial instances (aggressive conflict,
// tie, and parallel-edge knobs; <= 10 edges each) into `dir`, with their
// seeds recorded in the file headers. Used to (re)build the checked-in seed
// corpus. Returns the file paths.
std::vector<std::string> WriteSeedCorpus(const std::string& dir,
                                         uint64_t seed, int count);

// Renders a human-readable summary.
std::string FormatFuzzReport(const FuzzReport& report);

}  // namespace autobi

#endif  // AUTOBI_FUZZ_FUZZER_H_
