// autobi_fuzz: differential fuzzing + metamorphic property harness for the
// k-MCA / k-MCA-CC / Edmonds solver stack (src/graph/).
//
//   autobi_fuzz --cases 5000 --max_edges 18 --seed 1
//
// Replays tests/corpus/ first, then runs seeded random differential cases
// (fast solvers vs brute-force oracles), Edmonds arc differentials, and
// metamorphic properties on larger instances. Any mismatch is greedily
// minimized and written into the corpus directory as a repro. Exit code 0
// iff zero mismatches.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/strings.h"
#include "fuzz/fuzzer.h"

namespace {

void Usage() {
  std::puts(
      "usage: autobi_fuzz [options]\n"
      "  --seed N              master seed (default 1)\n"
      "  --cases N             differential cases to run (default 1000)\n"
      "  --max_edges N         edge cap for brute-force-checked instances\n"
      "                        (default 18, max 20)\n"
      "  --time_budget SEC     wall-clock budget; 0 = unlimited (default)\n"
      "  --corpus DIR          corpus dir for replay + repro output\n"
      "                        (default tests/corpus; '' disables)\n"
      "  --no_write            do not write minimized repro files\n"
      "  --arc_every N         Edmonds differential every Nth case (default 2)\n"
      "  --metamorphic_every N metamorphic case every Nth case (default 4)\n"
      "  --seed_corpus N       write N seeded adversarial instances into the\n"
      "                        corpus dir and exit\n"
      "  --quiet               only print the summary line\n");
}

}  // namespace

int main(int argc, char** argv) {
  autobi::FuzzOptions opt;
  opt.corpus_dir = "tests/corpus";
  int seed_corpus = -1;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    }
    auto need_value = [&]() -> const char* {
      if (!value.empty() || eq != std::string::npos) return value.c_str();
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(need_value(), nullptr, 10);
    } else if (arg == "--cases") {
      opt.cases = std::atol(need_value());
    } else if (arg == "--max_edges") {
      opt.max_edges = std::atoi(need_value());
      if (opt.max_edges < 0 || opt.max_edges > 20) {
        std::fprintf(stderr, "--max_edges must be in [0, 20]\n");
        return 2;
      }
    } else if (arg == "--time_budget") {
      opt.time_budget_sec = std::atof(need_value());
    } else if (arg == "--corpus") {
      opt.corpus_dir = need_value();
    } else if (arg == "--no_write") {
      opt.write_repros = false;
    } else if (arg == "--arc_every") {
      opt.arc_every = std::atoi(need_value());
    } else if (arg == "--metamorphic_every") {
      opt.metamorphic_every = std::atoi(need_value());
    } else if (arg == "--seed_corpus") {
      seed_corpus = std::atoi(need_value());
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage();
      return 2;
    }
  }

  if (seed_corpus >= 0) {
    if (opt.corpus_dir.empty()) {
      std::fprintf(stderr, "--seed_corpus requires --corpus\n");
      return 2;
    }
    auto paths =
        autobi::WriteSeedCorpus(opt.corpus_dir, opt.seed, seed_corpus);
    for (const std::string& p : paths) std::printf("wrote %s\n", p.c_str());
    return int(paths.size()) == seed_corpus ? 0 : 1;
  }

  autobi::FuzzReport report = autobi::RunFuzz(opt);
  std::string summary = autobi::FormatFuzzReport(report);
  if (quiet) {
    // First line only.
    size_t nl = summary.find('\n');
    summary = summary.substr(0, nl + 1);
  }
  std::fputs(summary.c_str(), stdout);
  return report.mismatches == 0 ? 0 : 1;
}
