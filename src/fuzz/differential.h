#ifndef AUTOBI_FUZZ_DIFFERENTIAL_H_
#define AUTOBI_FUZZ_DIFFERENTIAL_H_

#include <string>
#include <vector>

#include "fuzz/generator.h"
#include "graph/join_graph.h"
#include "graph/kmca.h"

namespace autobi {

// Outcome of one fuzz check. `kind` is a stable machine-readable tag (used
// in repro filenames and failure triage); `message` carries the details.
struct CheckResult {
  bool ok = true;
  std::string kind;
  std::string message;
};

inline CheckResult CheckFail(std::string kind, std::string message) {
  return CheckResult{false, std::move(kind), std::move(message)};
}

// Structural validity of a solver result on `graph`: the edge set is a
// k-arborescence (+ FK-once when `enforce_fk_once`), and the reported k and
// cost agree with recomputation. `solver` prefixes the failure kind.
CheckResult ValidateKmcaResult(const JoinGraph& graph, const KmcaResult& r,
                               double penalty_weight, bool enforce_fk_once,
                               const char* solver);

// EMS recall edges grown on `backbone` must respect FK-once (Equation 18),
// acyclicity (Equation 19), the tau threshold, and use at most one
// orientation per 1:1 pair.
CheckResult CheckEmsOnBackbone(const JoinGraph& graph,
                               const std::vector<int>& backbone);

// Cross-checks the full solver stack on one instance against the exhaustive
// oracles, asserting
//   - SolveKmcaCc vs BruteForceKmcaCc: equal objective value (Equation 14),
//   - SolveKmca vs BruteForceKmca: equal objective value (Equation 8),
//   - every returned edge set passes IsKArborescence (+ SatisfiesFkOnce for
//     the constrained solve) and its reported cost/k are self-consistent,
//   - SolveKmca(cost) <= SolveKmcaCc(cost): the relaxation bound,
//   - enforce_fk_once=false degenerates to plain k-MCA (identical edge ids),
//   - repeated solves return byte-identical edge sets (determinism),
//   - EMS on the k-MCA-CC backbone respects FK-once, acyclicity, tau, and
//     the one-orientation-per-1:1-pair rule.
// Requires graph.num_edges() <= 20 (the oracles are O(2^m)).
CheckResult CheckJoinGraphDifferential(const JoinGraph& graph,
                                       double penalty_weight);

// Cross-checks SolveMinCostArborescence (Chu-Liu/Edmonds) against
// BruteForceMinArborescence: equal feasibility, equal total weight, and a
// valid spanning arborescence whenever feasible.
CheckResult CheckArcDifferential(const ArcInstance& instance);

}  // namespace autobi

#endif  // AUTOBI_FUZZ_DIFFERENTIAL_H_
