#include "fuzz/minimize.h"

#include <vector>

namespace autobi {

JoinGraph RemoveEdge(const JoinGraph& g, int edge_id) {
  JoinGraph out(g.num_vertices());
  for (const JoinEdge& e : g.edges()) {
    if (e.id == edge_id) continue;
    out.AddEdge(e.src, e.dst, e.src_columns, e.dst_columns, e.probability,
                e.one_to_one, e.pair_id);
  }
  return out;
}

JoinGraph CompactVertices(const JoinGraph& g) {
  std::vector<char> used(size_t(g.num_vertices()), 0);
  for (const JoinEdge& e : g.edges()) {
    used[size_t(e.src)] = 1;
    used[size_t(e.dst)] = 1;
  }
  std::vector<int> remap(size_t(g.num_vertices()), -1);
  int next = 0;
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (used[size_t(v)]) remap[size_t(v)] = next++;
  }
  if (next == 0) next = 1;  // Keep at least one vertex.
  JoinGraph out(next);
  for (const JoinEdge& e : g.edges()) {
    out.AddEdge(remap[size_t(e.src)], remap[size_t(e.dst)], e.src_columns,
                e.dst_columns, e.probability, e.one_to_one, e.pair_id);
  }
  return out;
}

MinimizedInstance MinimizeFailure(const JoinGraph& g, double penalty_weight,
                                  const JoinGraphCheck& check) {
  MinimizedInstance best;
  best.graph = g;
  best.penalty_weight = penalty_weight;
  best.failure = check(g, penalty_weight);
  if (best.failure.ok) {
    // The predicate does not reproduce on re-check — possible for
    // metamorphic failures, whose random transforms differ between
    // detection and minimization. Return the instance unshrunk; the caller
    // still holds the originally observed failure.
    return best;
  }

  // Drop edges one at a time while the failure persists. Restart the scan
  // after every accepted removal so later edges get re-tried against the
  // smaller instance.
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    for (int id = 0; id < int(best.graph.num_edges()); ++id) {
      JoinGraph candidate = RemoveEdge(best.graph, id);
      CheckResult r = check(candidate, penalty_weight);
      if (!r.ok) {
        best.graph = candidate;
        best.failure = r;
        ++best.shrink_steps;
        shrunk = true;
        break;
      }
    }
  }

  // Dropping isolated vertices cannot mask an edge-set bug, but verify the
  // failure survives anyway (vertex count changes k and the penalty term).
  JoinGraph compact = CompactVertices(best.graph);
  if (compact.num_vertices() < best.graph.num_vertices()) {
    CheckResult r = check(compact, penalty_weight);
    if (!r.ok) {
      best.graph = compact;
      best.failure = r;
      ++best.shrink_steps;
    }
  }
  return best;
}

}  // namespace autobi
