#include "fuzz/faultpoints.h"

#include <cstdlib>

namespace autobi {

namespace {

// splitmix64: the same cheap, stable mixer the solver memoization uses.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashName(const char* s) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a.
  for (; *s; ++s) {
    h ^= static_cast<unsigned char>(*s);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Uniform [0, 1) from one draw of the (seed, point, counter) stream.
double DrawUnit(uint64_t seed, uint64_t point_hash, uint64_t counter) {
  uint64_t bits = Mix64(seed ^ Mix64(point_hash ^ Mix64(counter)));
  return double(bits >> 11) * (1.0 / 9007199254740992.0);  // 2^53.
}

}  // namespace

FaultPoints& FaultPoints::Global() {
  static FaultPoints* instance = [] {
    auto* fp = new FaultPoints();
    fp->ConfigureFromEnv();
    return fp;
  }();
  return *instance;
}

bool FaultPoints::Configure(const std::string& spec) {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
  seed_ = 1;
  fires_.store(0, std::memory_order_relaxed);
  enabled_.store(false, std::memory_order_relaxed);
  if (spec.empty()) return true;

  std::string body = spec;
  size_t at = body.rfind('@');
  if (at != std::string::npos) {
    char* end = nullptr;
    unsigned long long parsed = std::strtoull(body.c_str() + at + 1, &end, 10);
    if (end == body.c_str() + at + 1 || *end != '\0') return false;
    seed_ = static_cast<uint64_t>(parsed);
    body = body.substr(0, at);
  }
  size_t pos = 0;
  while (pos < body.size()) {
    size_t comma = body.find(',', pos);
    std::string entry = body.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? body.size() : comma + 1;
    if (entry.empty()) continue;
    size_t eq = entry.find('=');
    if (eq == 0 || eq == std::string::npos) {
      points_.clear();
      return false;
    }
    char* end = nullptr;
    double prob = std::strtod(entry.c_str() + eq + 1, &end);
    if (end == entry.c_str() + eq + 1 || *end != '\0' || prob < 0.0 ||
        prob > 1.0) {
      points_.clear();
      return false;
    }
    points_[entry.substr(0, eq)].probability = prob;
  }
  enabled_.store(!points_.empty(), std::memory_order_relaxed);
  return true;
}

void FaultPoints::ConfigureFromEnv() {
  const char* spec = std::getenv("AUTOBI_FAULT");
  Configure(spec == nullptr ? std::string() : std::string(spec));
}

void FaultPoints::Disable() { Configure(std::string()); }

bool FaultPoints::Fire(const char* point) {
  if (!enabled_.load(std::memory_order_relaxed)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  if (it == points_.end() || it->second.probability <= 0.0) return false;
  PointState& state = it->second;
  double draw = DrawUnit(seed_, HashName(point), state.queries++);
  if (draw >= state.probability) return false;
  ++state.fires;
  fires_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

double FaultPoints::Fraction(const char* point) {
  std::lock_guard<std::mutex> lock(mu_);
  // A distinct stream per point, keyed off a flipped name hash so Fraction
  // draws never collide with Fire decisions.
  PointState& state = points_[std::string(point) + "#fraction"];
  return DrawUnit(seed_, ~HashName(point), state.queries++);
}

std::vector<std::pair<std::string, long>> FaultPoints::FireCounts() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, long>> out;
  for (const auto& [name, state] : points_) {
    if (state.fires > 0) out.emplace_back(name, state.fires);
  }
  return out;
}

}  // namespace autobi
