#include "fuzz/fault_fuzz.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/run_context.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/timer.h"
#include "core/auto_bi.h"
#include "core/bi_model.h"
#include "core/incremental.h"
#include "core/model_export.h"
#include "core/trainer.h"
#include "fuzz/faultpoints.h"
#include "serve/engine.h"
#include "serve/json.h"
#include "synth/bi_generator.h"
#include "synth/corpus.h"
#include "synth/lake.h"
#include "table/csv.h"
#include "table/sql_ddl.h"

namespace autobi {

namespace {

// Seed templates the mutators start from: small but feature-covering inputs
// (quoting, escapes, numerics, CRLF, BOM, composite keys, inline and
// table-level REFERENCES).
const char* const kCsvSeeds[] = {
    "id,name,score\n1,alice,3.5\n2,bob,4.0\n3,\"c,d\",5\n",
    "\xEF\xBB\xBFord_id,cust_id,qty\r\n10,1,2\r\n11,2,\r\n12,1,7\r\n",
    "a,b\n\"multi\nline\",\"quote\"\"esc\"\n,\n",
    "k\n1\n2\n3\n4\n5\n",
};

const char* const kDdlSeeds[] = {
    "CREATE TABLE dim (id INT PRIMARY KEY, name TEXT);\n"
    "CREATE TABLE fact (fid INT, did INT REFERENCES dim(id));\n",
    "CREATE TABLE a (x INT, y INT, PRIMARY KEY (x, y));\n"
    "CREATE TABLE b (x INT, y INT, z TEXT,\n"
    "  FOREIGN KEY (x, y) REFERENCES a (x, y));\n",
    "create table t1 (c1 varchar(10));\ncreate table t2 (c2 int);\n",
};

// Bytes the mutators like to splice in: CSV/DDL structure characters plus
// binary junk.
const char kSpiceBytes[] = {',', '"', '\n', '\r', '(',  ')',   ';',
                            '0', '\\', '\'', '\t', '\0', '\x80', '\xff'};

std::string MutateBytes(const std::string& seed_text, Rng& rng) {
  std::string text = seed_text;
  int edits = 1 + int(rng.NextBelow(8));
  for (int e = 0; e < edits && !text.empty(); ++e) {
    size_t pos = size_t(rng.NextBelow(text.size()));
    switch (rng.NextBelow(5)) {
      case 0:  // Overwrite with a spice byte.
        text[pos] = kSpiceBytes[rng.NextBelow(sizeof(kSpiceBytes))];
        break;
      case 1:  // Overwrite with a fully random byte.
        text[pos] = char(rng.NextBelow(256));
        break;
      case 2:  // Insert a spice byte.
        text.insert(text.begin() + long(pos),
                    kSpiceBytes[rng.NextBelow(sizeof(kSpiceBytes))]);
        break;
      case 3:  // Delete a byte.
        text.erase(text.begin() + long(pos));
        break;
      case 4:  // Truncate (short-input / mid-token cases).
        text.resize(pos);
        break;
    }
  }
  return text;
}

std::string RandomBytes(Rng& rng, size_t max_len) {
  std::string text(rng.NextBelow(max_len + 1), '\0');
  for (char& c : text) c = char(rng.NextBelow(256));
  return text;
}

// One small LocalModel trained once and shared by every pipeline case (the
// campaign probes the service layer, not classifier quality).
const LocalModel& SharedTinyModel() {
  static const LocalModel* model = [] {
    CorpusOptions copt;
    copt.seed = 77;
    copt.training_cases = 10;
    TrainerOptions topt;
    topt.forest.num_trees = 4;
    return new LocalModel(TrainLocalModel(BuildTrainingCorpus(copt), topt));
  }();
  return *model;
}

struct Scratch {
  FaultFuzzReport* report;
  long case_index = 0;
  const char* scenario = "";

  void Fail(const std::string& message) {
    ++report->failures;
    if (report->failure_messages.size() < 50) {
      report->failure_messages.push_back(StrFormat(
          "case %ld (%s): %s", case_index, scenario, message.c_str()));
    }
  }
};

// Checks the universal invariant on a StatusOr'd table parse: either a
// well-formed error or a structurally valid table.
void CheckParsedTable(const StatusOr<Table>& table, Scratch& s) {
  if (!table.ok()) {
    if (table.status().message().empty()) {
      s.Fail("error Status with empty message");
    }
    ++s.report->status_errors;
    return;
  }
  ++s.report->parses_ok;
  if (!table.value().Validate()) {
    s.Fail("parse returned OK but table fails Validate()");
  }
}

void RunCsvCase(Rng& rng, Scratch& s) {
  ++s.report->csv_cases;
  std::string text;
  if (rng.NextBool(0.25)) {
    text = RandomBytes(rng, 256);
  } else {
    const char* seed =
        kCsvSeeds[rng.NextBelow(sizeof(kCsvSeeds) / sizeof(kCsvSeeds[0]))];
    text = MutateBytes(seed, rng);
  }
  CsvOptions opt;
  opt.lenient = rng.NextBool();
  if (rng.NextBool(0.3)) opt.max_bytes = 1 + rng.NextBelow(64);
  CsvStats stats;
  CheckParsedTable(ReadCsv(text, "fuzz", opt, &stats), s);
}

void RunDdlCase(Rng& rng, Scratch& s) {
  ++s.report->ddl_cases;
  std::string text;
  if (rng.NextBool(0.25)) {
    text = RandomBytes(rng, 256);
  } else {
    const char* seed =
        kDdlSeeds[rng.NextBelow(sizeof(kDdlSeeds) / sizeof(kDdlSeeds[0]))];
    text = MutateBytes(seed, rng);
  }
  StatusOr<DdlSchema> schema = ParseSqlDdl(text);
  if (!schema.ok()) {
    if (schema.status().message().empty()) {
      s.Fail("error Status with empty message");
    }
    ++s.report->status_errors;
    return;
  }
  ++s.report->parses_ok;
  for (const Table& t : schema.value().tables) {
    if (!t.Validate()) s.Fail("DDL parse returned OK but table is invalid");
  }
}

void RunFileCase(Rng& rng, Scratch& s, const std::string& scratch_dir) {
  ++s.report->file_cases;
  const char* seed =
      kCsvSeeds[rng.NextBelow(sizeof(kCsvSeeds) / sizeof(kCsvSeeds[0]))];
  std::string text = MutateBytes(seed, rng);
  std::filesystem::path path =
      std::filesystem::path(scratch_dir) / "autobi_faultfuzz_case.csv";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(text.data(), long(text.size()));
  }
  // Arm the I/O fault points with case-specific probabilities and seed.
  std::string spec = StrFormat("io.open=%.2f,io.short_read=%.2f@%llu",
                               rng.NextDouble(0.0, 0.6),
                               rng.NextDouble(0.0, 0.8),
                               (unsigned long long)rng.Next());
  FaultPoints::Global().Configure(spec);
  CsvOptions opt;
  opt.lenient = rng.NextBool();
  CheckParsedTable(ReadCsvFile(path.string(), opt), s);
  s.report->injected_faults += FaultPoints::Global().fires();
  FaultPoints::Global().Disable();
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

void RunPipelineCase(Rng& rng, Scratch& s) {
  ++s.report->pipeline_cases;
  BiGenOptions gen;
  gen.num_tables = 2 + int(rng.NextBelow(5));
  gen.min_dim_rows = 4;
  gen.max_dim_rows = 40;
  gen.min_fact_rows = 10;
  gen.max_fact_rows = 80;
  Rng case_rng = rng.Fork();
  BiCase bi_case = GenerateBiCase(gen, case_rng);

  // Arm pipeline fault points for roughly half the cases.
  bool faults_armed = rng.NextBool();
  if (faults_armed) {
    std::string spec =
        StrFormat("candidates.exhausted=%.2f,parallel.task=%.3f@%llu",
                  rng.NextDouble(0.0, 0.7), rng.NextDouble(0.0, 0.05),
                  (unsigned long long)rng.Next());
    FaultPoints::Global().Configure(spec);
  }

  // Randomized run control: tight deterministic budgets, near-zero
  // deadlines, and up-front cancellation all take this path.
  RunContext ctx;
  if (rng.NextBool(0.4)) {
    ctx.budgets.max_rows_per_table = 1 + rng.NextBelow(64);
  }
  if (rng.NextBool(0.3)) {
    ctx.budgets.max_cells_per_table = 1 + rng.NextBelow(512);
  }
  if (rng.NextBool(0.4)) {
    ctx.budgets.max_candidate_pairs = rng.NextBelow(8);
  }
  if (rng.NextBool(0.3)) {
    ctx.budgets.max_one_mca_calls = long(1 + rng.NextBelow(50));
  }
  if (rng.NextBool(0.2)) ctx.set_deadline_after(0.0);
  if (rng.NextBool(0.1)) ctx.Cancel();

  AutoBiOptions opt;
  opt.threads = 1 + int(rng.NextBelow(2));
  switch (rng.NextBelow(3)) {
    case 0: opt.mode = AutoBiMode::kFull; break;
    case 1: opt.mode = AutoBiMode::kPrecisionOnly; break;
    case 2: opt.mode = AutoBiMode::kSchemaOnly; break;
  }
  AutoBi autobi(&SharedTinyModel(), opt);
  StatusOr<AutoBiResult> result =
      autobi.Predict(bi_case.tables, rng.NextBool(0.9) ? &ctx : nullptr);
  if (faults_armed) {
    s.report->injected_faults += FaultPoints::Global().fires();
    FaultPoints::Global().Disable();
  }

  if (!result.ok()) {
    // The only acceptable hard error from trusted synthetic tables is an
    // injected internal fault; budgets/deadlines must degrade, not error.
    if (result.status().code() != StatusCode::kInternal) {
      s.Fail(StrFormat("unexpected error from pipeline: %s",
                       result.status().ToString().c_str()));
    } else if (!faults_armed) {
      s.Fail(StrFormat("kInternal without armed faults: %s",
                       result.status().ToString().c_str()));
    }
    ++s.report->status_errors;
    return;
  }
  const AutoBiResult& r = result.value();
  Status valid = ValidateBiModel(bi_case.tables, r.model);
  if (!valid.ok()) {
    s.Fail(StrFormat("predicted model fails validation: %s",
                     valid.ToString().c_str()));
  }
  if (r.degradation.Any()) {
    ++s.report->degraded_models;
    // Degradation markers must carry a trigger.
    for (const StageHealth* h :
         {&r.degradation.ucc, &r.degradation.ind,
          &r.degradation.local_inference, &r.degradation.global_predict}) {
      if (h->degraded && h->trigger.empty()) {
        s.Fail("degraded stage with empty trigger");
      }
    }
  }
  // Exporters must accept any validated (possibly degraded) model.
  StatusOr<std::string> json = ExportJson(bi_case.tables, r.model);
  if (!json.ok()) {
    s.Fail(StrFormat("ExportJson rejected a validated model: %s",
                     json.status().ToString().c_str()));
  }
}

// --- Lake scenario -------------------------------------------------------

// A small synthetic lake (disconnected islands with adversarial shared
// names/ranges, synth/lake.h) through the full pipeline: blocking plus the
// partitioned per-component solve. Faults and budgets are randomized like
// the pipeline scenario; when nothing nondeterministic is armed the case
// additionally re-predicts with blocking disabled (the exhaustive oracle)
// and fails on ANY divergence — model JSON, join graph, or selected edge
// sets — which is the recall-1.0 / bit-identity contract of PR 9.
void RunLakeCase(Rng& rng, Scratch& s) {
  ++s.report->lake_cases;
  LakeGenOptions gen;
  gen.num_tables = 6 + int(rng.NextBelow(13));  // 6..18 tables.
  gen.min_island = 2;
  gen.max_island = 5;
  gen.min_dim_rows = 4;
  gen.max_dim_rows = 40;
  gen.min_fact_rows = 10;
  gen.max_fact_rows = 60;
  // Roll the adversarial axes hard: the fuzzer wants collisions, not scale.
  gen.shared_dim_name_prob = 0.6;
  gen.shared_key_range_prob = 0.25;
  Rng case_rng = rng.Fork();
  BiCase lake = GenerateLake(gen, case_rng);

  bool faults_armed = rng.NextBool(0.4);
  if (faults_armed) {
    std::string spec =
        StrFormat("candidates.exhausted=%.2f,parallel.task=%.3f@%llu",
                  rng.NextDouble(0.0, 0.7), rng.NextDouble(0.0, 0.05),
                  (unsigned long long)rng.Next());
    FaultPoints::Global().Configure(spec);
  }

  // Budgets / deadlines / cancellation exercise per-component degradation;
  // any such run skips the differential below (blocking changes how much
  // work each budget unit covers, so tripped runs legitimately diverge).
  RunContext ctx;
  bool use_ctx = rng.NextBool(0.4);
  if (use_ctx) {
    if (rng.NextBool(0.4)) {
      ctx.budgets.max_rows_per_table = 1 + rng.NextBelow(64);
    }
    if (rng.NextBool(0.4)) {
      ctx.budgets.max_candidate_pairs = rng.NextBelow(16);
    }
    if (rng.NextBool(0.3)) {
      ctx.budgets.max_one_mca_calls = long(1 + rng.NextBelow(50));
    }
    if (rng.NextBool(0.2)) ctx.set_deadline_after(0.0);
    if (rng.NextBool(0.1)) ctx.Cancel();
  }

  AutoBiOptions opt;
  opt.threads = 1 + int(rng.NextBelow(3));
  AutoBi autobi(&SharedTinyModel(), opt);
  StatusOr<AutoBiResult> result =
      autobi.Predict(lake.tables, use_ctx ? &ctx : nullptr);
  if (faults_armed) {
    s.report->injected_faults += FaultPoints::Global().fires();
    FaultPoints::Global().Disable();
  }

  if (!result.ok()) {
    if (result.status().code() != StatusCode::kInternal) {
      s.Fail(StrFormat("unexpected error from lake predict: %s",
                       result.status().ToString().c_str()));
    } else if (!faults_armed) {
      s.Fail(StrFormat("kInternal without armed faults: %s",
                       result.status().ToString().c_str()));
    }
    ++s.report->status_errors;
    return;
  }
  const AutoBiResult& r = result.value();
  Status valid = ValidateBiModel(lake.tables, r.model);
  if (!valid.ok()) {
    s.Fail(StrFormat("lake model fails validation: %s",
                     valid.ToString().c_str()));
  }
  if (r.degradation.Any()) ++s.report->degraded_models;
  StatusOr<std::string> json = ExportJson(lake.tables, r.model);
  if (!json.ok()) {
    s.Fail(StrFormat("ExportJson rejected a validated lake model: %s",
                     json.status().ToString().c_str()));
    return;
  }

  if (faults_armed || use_ctx) return;
  // Differential against the exhaustive oracle: same tables, same options,
  // blocking off. Everything observable must be bit-identical.
  AutoBiOptions off = opt;
  off.candidates.ind.blocking.enabled = false;
  AutoBi oracle(&SharedTinyModel(), off);
  StatusOr<AutoBiResult> oracle_result = oracle.Predict(lake.tables, nullptr);
  if (!oracle_result.ok()) {
    s.Fail(StrFormat("exhaustive oracle errored: %s",
                     oracle_result.status().ToString().c_str()));
    return;
  }
  const AutoBiResult& o = oracle_result.value();
  StatusOr<std::string> oracle_json = ExportJson(lake.tables, o.model);
  if (!oracle_json.ok()) {
    s.Fail("ExportJson rejected the oracle model");
    return;
  }
  if (json.value() != oracle_json.value()) {
    s.Fail("blocking-on model diverges from exhaustive oracle (recall loss)");
  }
  if (!r.graph.StructurallyEqual(o.graph)) {
    s.Fail("blocking-on join graph diverges from exhaustive oracle");
  }
  if (r.backbone_edges != o.backbone_edges ||
      r.recall_edges != o.recall_edges) {
    s.Fail("blocking-on edge selection diverges from exhaustive oracle");
  }
}

// --- Schema-evolution scenario ------------------------------------------

// Appends one cell matching the column's type (occasionally null).
void AppendTypedCell(Column& col, Rng& rng) {
  if (rng.NextBool(0.08)) {
    col.AppendNull();
    return;
  }
  switch (col.type()) {
    case ValueType::kInt:
      col.AppendInt(int64_t(rng.NextBelow(500)));
      break;
    case ValueType::kDouble:
      col.AppendDouble(rng.NextDouble(0.0, 50.0));
      break;
    case ValueType::kString:
      col.AppendString(StrFormat("fz_%llu",
                                 (unsigned long long)rng.NextBelow(500)));
      break;
    default:  // All-null column: keep it all-null.
      col.AppendNull();
      break;
  }
}

// Applies one random, always-well-formed mutation: tables stay rectangular
// and typed, so the pipeline contract (not the loader) is what is probed.
void MutateTables(std::vector<Table>* tables, Rng& rng) {
  switch (rng.NextBelow(7)) {
    case 0: {  // Append rows to one table.
      Table& t = (*tables)[rng.NextBelow(tables->size())];
      if (t.num_columns() == 0) break;
      long rows = 1 + long(rng.NextBelow(10));
      for (long r = 0; r < rows; ++r) {
        for (size_t c = 0; c < t.num_columns(); ++c) {
          AppendTypedCell(t.column(c), rng);
        }
      }
      break;
    }
    case 1: {  // Add a small fresh table.
      Table t(StrFormat("fz_added_%llx", (unsigned long long)rng.Next()));
      Column& id = t.AddColumn("fz_id", ValueType::kInt);
      Column& label = t.AddColumn("fz_label", ValueType::kString);
      long rows = 2 + long(rng.NextBelow(8));
      for (long r = 0; r < rows; ++r) {
        id.AppendInt(r);
        label.AppendString(StrFormat("v%ld", r));
      }
      tables->push_back(std::move(t));
      break;
    }
    case 2:  // Drop a table (always keep at least two).
      if (tables->size() > 2) {
        tables->erase(tables->begin() + long(rng.NextBelow(tables->size())));
      }
      break;
    case 3: {  // Rename a column.
      Table& t = (*tables)[rng.NextBelow(tables->size())];
      if (t.num_columns() == 0) break;
      Column& c = t.column(rng.NextBelow(t.num_columns()));
      c.set_name(c.name() + "_r");
      break;
    }
    case 4: {  // Rename a table (cells unchanged: the rename detector path).
      Table& t = (*tables)[rng.NextBelow(tables->size())];
      t.set_name(t.name() + "_r");
      break;
    }
    case 5: {  // Replace some cells in one column (same length and type).
      Table& t = (*tables)[rng.NextBelow(tables->size())];
      if (t.num_columns() == 0 || t.num_rows() == 0) break;
      Column& old = t.column(rng.NextBelow(t.num_columns()));
      Column fresh(old.name(), old.type());
      for (size_t i = 0; i < old.size(); ++i) {
        if (!old.IsNull(i) && rng.NextBool(0.3)) {
          AppendTypedCell(fresh, rng);
        } else if (old.IsNull(i)) {
          fresh.AppendNull();
        } else if (old.type() == ValueType::kInt) {
          fresh.AppendInt(old.Int(i));
        } else if (old.type() == ValueType::kDouble) {
          fresh.AppendDouble(old.Double(i));
        } else {
          fresh.AppendString(old.Str(i));
        }
      }
      old = std::move(fresh);
      break;
    }
    default:  // No-op step (the pure warm-start path).
      break;
  }
}

// Replays a random mutation sequence through PredictIncremental with a
// persistent IncrementalState, cross-checking every step against a cold
// Predict on the same tables. With no faults armed the two must agree
// bit-for-bit (JSON export + degradation flags); with faults armed the
// fault-point fire sequences diverge between the two runs, so only the
// universal invariant is checked.
void RunSchemaEvolutionCase(Rng& rng, Scratch& s) {
  ++s.report->schema_evolution_cases;
  BiGenOptions gen;
  gen.num_tables = 2 + int(rng.NextBelow(3));
  gen.min_dim_rows = 4;
  gen.max_dim_rows = 20;
  gen.min_fact_rows = 8;
  gen.max_fact_rows = 40;
  Rng case_rng = rng.Fork();
  BiCase bi_case = GenerateBiCase(gen, case_rng);
  std::vector<Table> tables = std::move(bi_case.tables);

  AutoBiOptions opt;
  opt.threads = 1 + int(rng.NextBelow(2));
  if (rng.NextBool(0.2)) opt.mode = AutoBiMode::kSchemaOnly;
  AutoBi autobi(&SharedTinyModel(), opt);
  IncrementalState state;

  StatusOr<AutoBiResult> seeded =
      autobi.PredictIncremental(tables, nullptr, &state);
  if (!seeded.ok()) {
    s.Fail(StrFormat("seed PredictIncremental failed: %s",
                     seeded.status().ToString().c_str()));
    return;
  }

  int steps = 1 + int(rng.NextBelow(8));
  for (int step = 0; step < steps; ++step) {
    MutateTables(&tables, rng);

    // Run control: usually none; sometimes deterministic budgets or an
    // up-front cancellation. Wall-clock deadlines are excluded — they are
    // time-dependent, so incremental and cold runs could legitimately
    // degrade at different points.
    RunContext ctx;
    const RunContext* ctx_ptr = nullptr;
    if (rng.NextBool(0.25)) {
      if (rng.NextBool(0.5)) ctx.budgets.max_candidate_pairs = rng.NextBelow(6);
      if (rng.NextBool(0.3)) {
        ctx.budgets.max_rows_per_table = 1 + rng.NextBelow(64);
      }
      if (rng.NextBool(0.2)) ctx.Cancel();
      ctx_ptr = &ctx;
    }
    bool faults_armed = rng.NextBool(0.25);
    if (faults_armed) {
      std::string spec =
          StrFormat("candidates.exhausted=%.2f,parallel.task=%.3f@%llu",
                    rng.NextDouble(0.0, 0.5), rng.NextDouble(0.0, 0.03),
                    (unsigned long long)rng.Next());
      FaultPoints::Global().Configure(spec);
    }
    StatusOr<AutoBiResult> incr =
        autobi.PredictIncremental(tables, ctx_ptr, &state);
    if (faults_armed) {
      s.report->injected_faults += FaultPoints::Global().fires();
      FaultPoints::Global().Disable();
    }
    if (!incr.ok()) {
      if (incr.status().code() != StatusCode::kInternal) {
        s.Fail(StrFormat("unexpected error from PredictIncremental: %s",
                         incr.status().ToString().c_str()));
      } else if (!faults_armed) {
        s.Fail(StrFormat("kInternal without armed faults: %s",
                         incr.status().ToString().c_str()));
      }
      ++s.report->status_errors;
      continue;  // State is untouched on error; keep evolving.
    }
    Status valid = ValidateBiModel(tables, incr->model);
    if (!valid.ok()) {
      s.Fail(StrFormat("incremental model fails validation at step %d: %s",
                       step, valid.ToString().c_str()));
    }
    if (incr->degradation.Any()) {
      ++s.report->degraded_models;
      for (const StageHealth* h :
           {&incr->degradation.ucc, &incr->degradation.ind,
            &incr->degradation.local_inference,
            &incr->degradation.global_predict}) {
        if (h->degraded && h->trigger.empty()) {
          s.Fail("degraded stage with empty trigger");
        }
      }
    }

    if (faults_armed) continue;
    // Differential cross-check: incremental vs cold on identical inputs.
    StatusOr<AutoBiResult> cold = autobi.Predict(tables, ctx_ptr);
    if (!cold.ok()) {
      s.Fail(StrFormat("cold Predict failed where incremental succeeded: %s",
                       cold.status().ToString().c_str()));
      continue;
    }
    if (incr->degradation.Any() != cold->degradation.Any()) {
      s.Fail(StrFormat("degradation mismatch at step %d "
                       "(incremental=%d cold=%d)",
                       step, int(incr->degradation.Any()),
                       int(cold->degradation.Any())));
    }
    StatusOr<std::string> incr_json = ExportJson(tables, incr->model);
    StatusOr<std::string> cold_json = ExportJson(tables, cold->model);
    if (!incr_json.ok() || !cold_json.ok()) {
      s.Fail("ExportJson rejected a validated model");
    } else if (*incr_json != *cold_json) {
      s.Fail(StrFormat("incremental/cold model divergence at step %d", step));
    }
  }
}

// Well-formed request lines the serve mutator starts from (one per verb
// family; the byte mutator turns them into the malformed population).
const char* const kServeSeeds[] = {
    R"({"verb":"ping","id":1})",
    R"({"verb":"create_session","id":2,"tenant":"fuzz"})",
    R"({"verb":"upload_table","id":3,"session":"s1","name":"t",)"
    R"("csv":"a,b\n1,x\n2,y\n"})",
    R"({"verb":"upload_table","id":4,"session":"s1","name":"u",)"
    R"("columns":[{"name":"k","values":[1,2,null]}]})",
    R"({"verb":"predict","id":5,"session":"s1","tier":"interactive",)"
    R"("max_rows_per_table":16})",
    R"({"verb":"get_model","id":6,"session":"s1","format":"dot"})",
    R"({"verb":"list_models","id":7,"tenant":"fuzz"})",
    R"({"verb":"stats","id":8})",
    R"({"verb":"nonsense","id":9,"payload":[1,[2,[3]]]})",
};

// One engine shared by every serve case: the campaign probes the wire
// surface, and a long-lived engine also exercises session-table growth and
// the session cap (kResourceExhausted is a well-formed outcome here). The
// engine lives for ONE campaign — RunFaultFuzz resets it on entry so a
// campaign is a pure function of its options (two same-seed runs in one
// process must produce identical reports; carried-over sessions/uploads
// would flip cap outcomes between them).
ServeEngine*& SharedEngineSlot() {
  static ServeEngine* engine = nullptr;
  return engine;
}

ServeEngine& SharedEngine() {
  ServeEngine*& slot = SharedEngineSlot();
  if (slot == nullptr) {
    ServeOptions options;
    options.threads = 1;
    options.max_sessions = 8;
    options.max_tables_per_session = 8;
    slot = new ServeEngine(&SharedTinyModel(), options);
  }
  return *slot;
}

void ResetSharedEngine() {
  ServeEngine*& slot = SharedEngineSlot();
  delete slot;
  slot = nullptr;
}

void RunServeCase(Rng& rng, Scratch& s) {
  ++s.report->serve_cases;
  std::string line;
  if (rng.NextBool(0.2)) {
    line = RandomBytes(rng, 256);
  } else {
    const char* seed = kServeSeeds[rng.NextBelow(sizeof(kServeSeeds) /
                                                 sizeof(kServeSeeds[0]))];
    line = rng.NextBool(0.3) ? seed : MutateBytes(seed, rng);
  }
  bool faults_armed = rng.NextBool(0.3);
  if (faults_armed) {
    std::string spec = StrFormat("serve.request=%.2f@%llu",
                                 rng.NextDouble(0.2, 1.0),
                                 (unsigned long long)rng.Next());
    FaultPoints::Global().Configure(spec);
  }
  std::string response = SharedEngine().HandleLine(line);
  if (faults_armed) {
    s.report->injected_faults += FaultPoints::Global().fires();
    FaultPoints::Global().Disable();
  }

  // The wire invariant: one single-line, well-formed JSON object with "ok";
  // failures carry a named code and a message.
  if (response.find('\n') != std::string::npos) {
    s.Fail("response contains a raw newline");
    return;
  }
  StatusOr<Json> parsed = ParseJson(response);
  if (!parsed.ok()) {
    s.Fail(StrFormat("response is not valid JSON: %s",
                     parsed.status().ToString().c_str()));
    return;
  }
  const Json* ok = parsed->Find("ok");
  if (ok == nullptr || !ok->is_bool()) {
    s.Fail("response lacks a boolean 'ok'");
    return;
  }
  if (ok->AsBool()) {
    ++s.report->parses_ok;
    return;
  }
  ++s.report->status_errors;
  const Json* error = parsed->Find("error");
  const Json* code = error != nullptr ? error->Find("code") : nullptr;
  const Json* message = error != nullptr ? error->Find("message") : nullptr;
  if (code == nullptr || !code->is_string() || code->AsString().empty() ||
      message == nullptr || !message->is_string()) {
    s.Fail("error response lacks error.code / error.message");
  }
}

// --- Crash-recovery differential (serve/journal.h, serve/catalog.h).
//
// Each case drives a journaled ModelCatalog through a random history of
// publish/pin operations with journal faults sometimes armed, simulates a
// crash by tearing or corrupting the journal file at a random point, then
// recovers into a fresh catalog and checks the committed-prefix invariant:
// the recovered state must be byte-identical (versions, labels, pins,
// hashes, NamedJoin sets) to replaying some prefix of the ACKED operations
// through an independent oracle — and exactly the full history when nothing
// damaged an acked record.

// The oracle mirrors catalog semantics in plain data: per-tenant dense
// versions and oldest-unpinned eviction. Candidate states are recorded at
// RECORD granularity, not op granularity — a publish and the eviction it
// triggers are two journal records under one commit, and a torn tail can
// legitimately split them.
struct OracleTenant {
  int64_t next_version = 1;
  std::vector<ModelSnapshot> snapshots;
};

std::string FingerprintOracle(
    const std::map<std::string, OracleTenant>& tenants) {
  std::string out;
  for (const auto& entry : tenants) {  // std::map: deterministic order.
    out += "tenant " + entry.first + "\n";
    for (const ModelSnapshot& snap : entry.second.snapshots) {
      out += StrFormat("  v%lld label=%s pinned=%d hash=%016llx\n",
                       static_cast<long long>(snap.version),
                       snap.label.c_str(), snap.pinned ? 1 : 0,
                       static_cast<unsigned long long>(snap.tables_hash));
      for (const NamedJoin& join : snap.joins) {
        out += "    " + join.ToString() + "\n";
      }
    }
  }
  return out;
}

std::string FingerprintCatalog(const ModelCatalog& catalog,
                               const std::vector<std::string>& tenant_names) {
  std::map<std::string, OracleTenant> tenants;
  for (const std::string& name : tenant_names) {
    std::vector<ModelSnapshot> snaps = catalog.List(name);
    if (snaps.empty()) continue;
    tenants[name].snapshots = std::move(snaps);
  }
  return FingerprintOracle(tenants);
}

std::vector<NamedJoin> RandomNamedJoins(Rng& rng) {
  static const char* const kTables[] = {"Orders", "Customers", "Products",
                                        "Dates"};
  static const char* const kCols[] = {"id", "cust_id", "prod_id", "date_id"};
  std::vector<NamedJoin> joins;
  size_t n = rng.NextBelow(4);
  for (size_t i = 0; i < n; ++i) {
    NamedJoin j;
    j.from.table = kTables[rng.NextBelow(4)];
    j.from.columns.push_back(kCols[rng.NextBelow(4)]);
    if (rng.NextBool(0.2)) j.from.columns.push_back(kCols[rng.NextBelow(4)]);
    j.to.table = kTables[rng.NextBelow(4)];
    for (size_t c = 0; c < j.from.columns.size(); ++c) {
      j.to.columns.push_back(kCols[rng.NextBelow(4)]);
    }
    j.kind = rng.NextBool(0.3) ? JoinKind::kOneToOne : JoinKind::kNToOne;
    joins.push_back(j.Normalized());
  }
  return joins;
}

void RunCrashCase(Rng& rng, Scratch& s, const std::string& scratch_dir) {
  ++s.report->crash_cases;
  namespace fs = std::filesystem;
  const std::string state_dir =
      (fs::path(scratch_dir) / "autobi_crash_state").string();
  std::error_code ec;
  fs::remove_all(state_dir, ec);

  const size_t max_unpinned = 1 + rng.NextBelow(3);
  const size_t compact_every = 1 + rng.NextBelow(6);
  const std::vector<std::string> tenant_names =
      rng.NextBool(0.3) ? std::vector<std::string>{"t0", "t1"}
                        : std::vector<std::string>{"t0"};

  // Phase 1: random op history against a live journaled catalog, journal
  // faults armed about half the time. Only ACKED (OK-returning) operations
  // enter the oracle history.
  auto live = std::make_unique<ModelCatalog>(max_unpinned);
  if (!live->OpenStateDir(state_dir, compact_every).ok()) {
    s.Fail("OpenStateDir failed on a fresh state dir");
    return;
  }
  bool faults_armed = rng.NextBool();
  if (faults_armed) {
    std::string spec = StrFormat(
        "journal.short_write=%.2f,journal.fsync=%.2f,journal.corrupt=%.2f,"
        "io.rename=%.2f@%llu",
        rng.NextDouble(0.0, 0.3), rng.NextDouble(0.0, 0.3),
        rng.NextDouble(0.0, 0.15), rng.NextDouble(0.0, 0.4),
        (unsigned long long)rng.Next());
    FaultPoints::Global().Configure(spec);
  }

  struct AckedOp {
    bool is_publish = true;
    std::string tenant;
    std::string label;     // publish
    uint64_t tables_hash;  // publish
    std::vector<NamedJoin> joins;  // publish
    int64_t version = 0;   // pin
    bool pinned = false;   // pin
  };
  std::vector<AckedOp> acked;
  const long total_ops = 3 + long(rng.NextBelow(20));
  for (long op = 0; op < total_ops; ++op) {
    const std::string& tenant =
        tenant_names[rng.NextBelow(tenant_names.size())];
    std::vector<ModelSnapshot> existing = live->List(tenant);
    if (!existing.empty() && rng.NextBool(0.3)) {
      AckedOp pin;
      pin.is_publish = false;
      pin.tenant = tenant;
      pin.version = existing[rng.NextBelow(existing.size())].version;
      pin.pinned = rng.NextBool(0.8);
      Status status = live->Pin(tenant, pin.version, pin.pinned);
      if (status.ok()) {
        acked.push_back(std::move(pin));
      } else if (status.code() != StatusCode::kInternal) {
        s.Fail(StrFormat("pin of an existing version failed with %s",
                         status.ToString().c_str()));
      }
      continue;
    }
    AckedOp pub;
    pub.tenant = tenant;
    pub.label = StrFormat("op%ld", op);
    pub.tables_hash = rng.Next();
    pub.joins = RandomNamedJoins(rng);
    StatusOr<int64_t> version =
        live->Publish(tenant, pub.label, pub.tables_hash, pub.joins);
    if (version.ok()) {
      acked.push_back(std::move(pub));
    } else if (version.status().code() != StatusCode::kInternal) {
      s.Fail(StrFormat("publish failed with %s",
                       version.status().ToString().c_str()));
    }
  }
  bool corrupt_fired = false;
  if (faults_armed) {
    s.report->injected_faults += FaultPoints::Global().fires();
    for (const auto& entry : FaultPoints::Global().FireCounts()) {
      if (entry.first == "journal.corrupt" && entry.second > 0) {
        corrupt_fired = true;
      }
    }
    FaultPoints::Global().Disable();
  }
  const uint64_t live_generation = live->durability().generation;
  live.reset();  // The "crash": the process dies; no flush, no close order.

  // Phase 2: oracle replay of the acked history, recording a candidate
  // fingerprint at every record boundary (publish and its eviction are
  // separate records).
  std::map<std::string, OracleTenant> oracle;
  std::vector<std::string> candidates;
  candidates.push_back(FingerprintOracle(oracle));
  for (const AckedOp& op : acked) {
    OracleTenant& t = oracle[op.tenant];
    if (op.is_publish) {
      ModelSnapshot snap;
      snap.version = t.next_version++;
      snap.label = op.label;
      snap.tables_hash = op.tables_hash;
      snap.joins = op.joins;
      size_t unpinned = 1;
      for (const ModelSnapshot& existing : t.snapshots) {
        if (!existing.pinned) ++unpinned;
      }
      const bool evicts = unpinned > max_unpinned;
      t.snapshots.push_back(std::move(snap));
      if (evicts) {
        candidates.push_back(FingerprintOracle(oracle));  // Torn mid-pair.
        for (auto it = t.snapshots.begin(); it != t.snapshots.end(); ++it) {
          if (!it->pinned) {
            t.snapshots.erase(it);
            break;
          }
        }
      }
    } else {
      for (ModelSnapshot& snap : t.snapshots) {
        if (snap.version == op.version) {
          snap.pinned = op.pinned;
          break;
        }
      }
    }
    candidates.push_back(FingerprintOracle(oracle));
  }

  // Phase 3: damage the journal the way a crash mid-write would — truncate
  // at a random byte or flip a random bit. The snapshot file is never
  // touched: WriteFileAtomic guarantees it is whole or absent.
  const std::string journal_path = StrFormat(
      "%s/journal.%llu", state_dir.c_str(),
      static_cast<unsigned long long>(live_generation));
  bool damaged = false;
  if (fs::exists(journal_path, ec) && rng.NextBool(0.7)) {
    const auto size = fs::file_size(journal_path, ec);
    if (!ec && size > 0) {
      if (rng.NextBool()) {
        fs::resize_file(journal_path, rng.NextBelow(size + 1), ec);
        damaged = !ec;
      } else {
        std::fstream f(journal_path,
                       std::ios::in | std::ios::out | std::ios::binary);
        const long pos = long(rng.NextBelow(size));
        f.seekg(pos);
        char byte = 0;
        f.get(byte);
        f.seekp(pos);
        f.put(char(byte ^ (1 << rng.NextBelow(8))));
        damaged = bool(f);
      }
    }
  }

  // Phase 4: recover and check the committed-prefix invariant.
  ModelCatalog recovered(max_unpinned);
  Status reopened = recovered.OpenStateDir(state_dir, compact_every);
  if (!reopened.ok()) {
    s.Fail(StrFormat("recovery errored instead of discarding the tail: %s",
                     reopened.ToString().c_str()));
    return;
  }
  const std::string got = FingerprintCatalog(recovered, tenant_names);
  bool is_prefix = false;
  for (const std::string& candidate : candidates) {
    if (got == candidate) {
      is_prefix = true;
      break;
    }
  }
  if (!is_prefix) {
    s.Fail(StrFormat(
        "recovered state is not a committed prefix of the %zu acked ops "
        "(damaged=%d corrupt_fired=%d)\nrecovered:\n%s",
        acked.size(), damaged ? 1 : 0, corrupt_fired ? 1 : 0, got.c_str()));
    return;
  }
  // With no tearing and no silent corruption, recovery must be exact and
  // report nothing discarded.
  if (!damaged && !corrupt_fired) {
    if (got != candidates.back()) {
      s.Fail("clean recovery lost acked operations");
      return;
    }
    if (recovered.durability().discarded_records != 0) {
      s.Fail("clean recovery reported discarded records");
      return;
    }
  }
  // The recovered catalog must keep serving: a new publish gets a version
  // strictly above every surviving one for its tenant.
  int64_t max_seen = 0;
  for (const ModelSnapshot& snap : recovered.List("t0")) {
    max_seen = std::max(max_seen, snap.version);
  }
  StatusOr<int64_t> next =
      recovered.Publish("t0", "post-crash", 7, RandomNamedJoins(rng));
  if (!next.ok()) {
    s.Fail(StrFormat("publish after recovery failed: %s",
                     next.status().ToString().c_str()));
  } else if (*next <= max_seen) {
    s.Fail(StrFormat("post-recovery version %lld not above surviving %lld",
                     static_cast<long long>(*next),
                     static_cast<long long>(max_seen)));
  }
  ++s.report->parses_ok;
  fs::remove_all(state_dir, ec);
}

}  // namespace

FaultFuzzReport RunFaultFuzz(const FaultFuzzOptions& options) {
  FaultFuzzReport report;
  Timer timer;
  Rng master(options.seed);
  // Make sure the env-configured global state never leaks into the
  // campaign's own deterministic specs, and start from a fresh serve engine
  // so per-campaign reports are reproducible within one process.
  FaultPoints::Global().Disable();
  ResetSharedEngine();
  for (long i = 0; i < options.cases; ++i) {
    if (options.time_budget_sec > 0 &&
        timer.Seconds() > options.time_budget_sec) {
      report.time_budget_hit = true;
      break;
    }
    Rng rng = master.Fork();
    Scratch s{&report, i};
    if (options.scenario == "schema") {
      s.scenario = "schema";
      RunSchemaEvolutionCase(rng, s);
      ++report.cases_run;
      continue;
    }
    if (options.scenario == "lake") {
      s.scenario = "lake";
      RunLakeCase(rng, s);
      ++report.cases_run;
      continue;
    }
    if (options.scenario == "crash") {
      s.scenario = "crash";
      RunCrashCase(rng, s,
                   options.scratch_dir.empty() ? "/tmp"
                                               : options.scratch_dir);
      ++report.cases_run;
      continue;
    }
    switch (rng.NextBelow(13)) {
      case 0:
      case 1:
      case 2:
        s.scenario = "csv";
        RunCsvCase(rng, s);
        break;
      case 3:
      case 4:
        s.scenario = "ddl";
        RunDdlCase(rng, s);
        break;
      case 5:
        s.scenario = "file";
        if (options.scratch_dir.empty()) {
          s.scenario = "csv";
          RunCsvCase(rng, s);
        } else {
          RunFileCase(rng, s, options.scratch_dir);
        }
        break;
      case 6:
      case 7:
        s.scenario = "serve";
        RunServeCase(rng, s);
        break;
      case 10:
      case 11:
        s.scenario = "schema";
        RunSchemaEvolutionCase(rng, s);
        break;
      case 12:
        s.scenario = "lake";
        RunLakeCase(rng, s);
        break;
      default:
        s.scenario = "pipeline";
        RunPipelineCase(rng, s);
        break;
    }
    ++report.cases_run;
  }
  FaultPoints::Global().Disable();
  report.elapsed_sec = timer.Seconds();
  return report;
}

std::string FormatFaultFuzzReport(const FaultFuzzReport& report) {
  std::string out = StrFormat(
      "faultfuzz: %s — %ld cases in %.1fs (%ld failures)\n",
      report.failures == 0 ? "PASS" : "FAIL", report.cases_run,
      report.elapsed_sec, report.failures);
  out += StrFormat(
      "  scenarios: csv=%ld ddl=%ld file=%ld pipeline=%ld serve=%ld "
      "schema=%ld lake=%ld crash=%ld%s\n",
      report.csv_cases, report.ddl_cases, report.file_cases,
      report.pipeline_cases, report.serve_cases,
      report.schema_evolution_cases, report.lake_cases, report.crash_cases,
      report.time_budget_hit ? " (time budget hit)" : "");
  out += StrFormat(
      "  outcomes: status_errors=%ld parses_ok=%ld degraded_models=%ld "
      "injected_faults=%ld\n",
      report.status_errors, report.parses_ok, report.degraded_models,
      report.injected_faults);
  for (const std::string& f : report.failure_messages) {
    out += "  FAILURE " + f + "\n";
  }
  return out;
}

}  // namespace autobi
