#ifndef AUTOBI_FUZZ_FAULT_FUZZ_H_
#define AUTOBI_FUZZ_FAULT_FUZZ_H_

#include <cstdint>
#include <string>
#include <vector>

namespace autobi {

// End-to-end fault-injection campaign (the robustness counterpart of the
// solver-correctness fuzzer in fuzzer.h). Each seeded case draws one
// scenario:
//   - byte-mutated / arbitrary-byte CSV text through ReadCsv (strict and
//     lenient, with and without a byte cap),
//   - byte-mutated / arbitrary-byte DDL scripts through ParseSqlDdl,
//   - mutated CSV bytes written to disk and loaded through ReadCsvFile with
//     io.open / io.short_read faults armed,
//   - a full Predict run on a synthetic case under a randomized RunContext
//     (budgets, near-zero deadlines, pre-cancellation) and a randomized
//     AUTOBI_FAULT-style spec arming candidates.exhausted / parallel.task,
//   - byte-mutated / arbitrary-byte NDJSON request lines through
//     ServeEngine::HandleLine (sometimes with the serve.request fault point
//     armed): any input bytes must yield exactly one well-formed JSON
//     response line with "ok" and, on failure, an error code + message,
//   - a schema-evolution sequence: 1-8 random mutations (row appends, added
//     and dropped tables, column/table renames, cell replacements, no-ops)
//     replayed through AutoBi::PredictIncremental with a persistent
//     IncrementalState, cross-checked against a cold Predict on the same
//     post-change tables after every step (bit-identical JSON export and
//     degradation flags when no faults are armed),
//   - a small synthetic lake (disconnected islands, synth/lake.h) through
//     Predict with the usual randomized faults/budgets, and — when nothing
//     time-dependent is armed — a differential run against the exhaustive
//     blocking oracle (blocking.enabled = false): model JSON, join graph
//     and selected edge sets must be bit-identical,
//   - a crash-recovery differential (--scenario crash only): a journaled
//     ModelCatalog driven through random publish/pin ops with
//     journal.short_write / journal.fsync / journal.corrupt / io.rename
//     armed, crashed by tearing or bit-flipping the journal at a random
//     byte, then recovered — the recovered catalog must be byte-identical
//     (versions, labels, pins, NamedJoin sets) to an oracle replay of some
//     committed prefix of the acked history, exact when nothing damaged an
//     acked record, and must keep accepting publishes.
//
// The invariant checked on every case: the service layer either returns a
// well-formed Status error or a result whose model passes ValidateBiModel
// (possibly degraded) — never a crash, hang, or leak (the CI smoke runs the
// campaign under ASan/UBSan).
struct FaultFuzzOptions {
  uint64_t seed = 1;
  long cases = 1000;
  // Wall-clock budget in seconds; 0 disables. When exhausted the run stops
  // early and reports time_budget_hit.
  double time_budget_sec = 0.0;
  // Scratch directory for the ReadCsvFile and crash scenarios; empty skips
  // the file scenario (crash falls back to /tmp).
  std::string scratch_dir = "/tmp";
  // Empty runs the mixed campaign above; "schema" runs only the
  // schema-evolution differential scenario, "lake" only the lake
  // blocking-differential scenario, and "crash" only the crash-recovery
  // differential (the dedicated ASan CI stages).
  std::string scenario;
};

struct FaultFuzzReport {
  long cases_run = 0;
  // Per-scenario counts.
  long csv_cases = 0;
  long ddl_cases = 0;
  long file_cases = 0;
  long pipeline_cases = 0;
  long serve_cases = 0;
  long schema_evolution_cases = 0;
  long lake_cases = 0;
  long crash_cases = 0;
  // Outcome counts (informational; none of these are failures).
  long status_errors = 0;    // Well-formed non-OK Statuses observed.
  long parses_ok = 0;        // Mutated inputs that still parsed.
  long degraded_models = 0;  // Pipeline runs with degradation markers set.
  long injected_faults = 0;  // FaultPoints fires across the campaign.
  // Invariant violations (exit code 1 when nonzero).
  long failures = 0;
  bool time_budget_hit = false;
  double elapsed_sec = 0.0;
  // One line per violation: "case <n> (<scenario>): <message>".
  std::vector<std::string> failure_messages;
};

FaultFuzzReport RunFaultFuzz(const FaultFuzzOptions& options);

// Renders a human-readable summary (first line is the verdict).
std::string FormatFaultFuzzReport(const FaultFuzzReport& report);

}  // namespace autobi

#endif  // AUTOBI_FUZZ_FAULT_FUZZ_H_
