#ifndef AUTOBI_FUZZ_GENERATOR_H_
#define AUTOBI_FUZZ_GENERATOR_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "graph/edmonds.h"
#include "graph/join_graph.h"

namespace autobi {

// Seeded random-instance generators for the solver-stack fuzzer. Every knob
// targets an adversarial shape the REAL/TPC benchmarks rarely produce: dense
// FK-once conflict groups, exact weight ties, parallel candidate edges,
// low-probability (worse-than-penalty) edges, 1:1 pairs, and vertex blocks
// with no connecting candidates (forced disconnected components).

struct JoinGraphGenOptions {
  int min_vertices = 2;
  int max_vertices = 8;
  int min_edges = 0;
  int max_edges = 18;
  // Probability that a new edge reuses an existing (src, src_columns) pair,
  // growing an FK-once conflict group (Equation 16).
  double conflict_density = 0.35;
  // Probability that an edge's probability is drawn from a small quantized
  // set, producing exact weight ties between unrelated edges.
  double tie_prob = 0.4;
  // Probability that a new edge duplicates an existing (src, dst) pair.
  double parallel_edge_prob = 0.15;
  // Probability of emitting a 1:1 pair (two opposite edges sharing pair_id).
  double one_to_one_prob = 0.10;
  // Vertices are partitioned into up to max_blocks blocks; an edge leaves
  // its block only with cross_block_prob, so some instances have provably
  // disconnected components.
  int max_blocks = 3;
  double cross_block_prob = 0.05;
  // Probability range; spans both sides of 0.5, so instances mix edges that
  // beat the virtual-edge penalty with edges that lose to it.
  double min_probability = 0.02;
  double max_probability = 0.98;
  // Penalty weight p of Equation 8/14, drawn per instance.
  double min_penalty = 0.05;
  double max_penalty = 1.5;
  // Edge counts are drawn as min + floor(u^edge_skew * (max - min + 1)):
  // skew > 1 favors small instances so the 2^m brute-force oracle stays
  // affordable while large instances still occur.
  double edge_skew = 2.0;
};

struct JoinGraphInstance {
  JoinGraph graph;
  double penalty_weight = 0.0;
};

JoinGraphInstance GenJoinGraph(const JoinGraphGenOptions& options, Rng& rng);

// Raw-arc instances for the Edmonds (1-MCA) differential: unlike JoinGraph
// edges, arcs may have negative weights, self-loops, arcs into the root, and
// exact duplicates.
struct ArcGenOptions {
  int min_vertices = 2;
  int max_vertices = 7;
  int min_arcs = 0;
  int max_arcs = 16;
  double tie_prob = 0.4;
  double self_loop_prob = 0.10;
  double duplicate_arc_prob = 0.15;
  double min_weight = -4.0;
  double max_weight = 8.0;
};

struct ArcInstance {
  int num_vertices = 0;
  int root = 0;
  std::vector<Arc> arcs;
};

ArcInstance GenArcInstance(const ArcGenOptions& options, Rng& rng);

// Human-readable dump of an arc instance for failure reports.
std::string FormatArcInstance(const ArcInstance& instance);

}  // namespace autobi

#endif  // AUTOBI_FUZZ_GENERATOR_H_
