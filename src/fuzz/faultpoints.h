#ifndef AUTOBI_FUZZ_FAULTPOINTS_H_
#define AUTOBI_FUZZ_FAULTPOINTS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace autobi {

// Named fault points for end-to-end fault injection (the autobi_faultfuzz
// campaign, scripts/check.sh AUTOBI_FAULT_SMOKE). Production code guards
// failure-prone operations with FaultPoints::Fire("name"); when the process
// runs with no fault spec configured, every guard is a single relaxed
// atomic load (measured in bench_micro_pipeline --json).
//
// Registered points (see ARCHITECTURE.md for the full registry):
//   io.open          file-open failures in ReadCsvFile / SaveCase / LoadCase
//   io.short_read    ReadCsvFile returns a truncated byte prefix
//   candidates.exhausted   injected kResourceExhausted: candidate list
//                          truncated as if max_candidate_pairs had tripped
//   parallel.task    a ParallelFor task throws (exercises the pool's
//                    exception-propagation path and the kInternal catch at
//                    the Predict service boundary)
//   serve.request    ServeEngine::HandleLine corrupts the incoming request
//                    line before parsing (truncation + stray quote),
//                    exercising the daemon's malformed-input path
//   io.rename        WriteFileAtomic fails the atomic-rename step (the
//                    temp file is cleaned up, the target left untouched)
//   journal.short_write  RecordLog::Append persists only a prefix of the
//                        framed record before failing (torn write)
//   journal.corrupt  RecordLog::Append silently flips one byte in the
//                    record — acked but damaged; recovery must drop it
//   journal.fsync    RecordLog::Commit fails its fsync barrier (the
//                    appended records are rolled back, the op rejected)
//
// Spec syntax (AUTOBI_FAULT env var or Configure()):
//   "point=prob[,point=prob...][@seed]"
//   e.g. AUTOBI_FAULT="io.open=0.05,parallel.task=0.01@42"
// Decisions are deterministic given the seed and the process-wide fire
// sequence: the Nth query of point P fires iff hash(seed, P, N) < prob.
class FaultPoints {
 public:
  // Process-wide registry. ConfigureFromEnv() is applied on first access.
  static FaultPoints& Global();

  // Parses and installs a spec; an empty spec disables all injection.
  // Returns false (and disables) on a malformed spec.
  bool Configure(const std::string& spec);
  void ConfigureFromEnv();  // Reads AUTOBI_FAULT.
  void Disable();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // True if the named point should inject a fault now. Thread-safe; the
  // fast path (no spec installed) never takes the lock.
  bool Fire(const char* point);

  // Deterministic fraction in [0, 1) drawn from the point's stream, for
  // faults with a magnitude (e.g. where to truncate a short read). Draws
  // only when called, so it does not perturb Fire() sequences of other
  // points.
  double Fraction(const char* point);

  // Total number of injected faults since the last Configure/Disable.
  long fires() const { return fires_.load(std::memory_order_relaxed); }
  // Per-point fire counts (sorted by point name).
  std::vector<std::pair<std::string, long>> FireCounts() const;

 private:
  FaultPoints() = default;

  struct PointState {
    double probability = 0.0;
    uint64_t queries = 0;  // Per-point decision counter.
    long fires = 0;
  };

  std::atomic<bool> enabled_{false};
  std::atomic<long> fires_{0};
  mutable std::mutex mu_;
  uint64_t seed_ = 1;
  std::map<std::string, PointState> points_;
};

}  // namespace autobi

#endif  // AUTOBI_FUZZ_FAULTPOINTS_H_
