// autobi_faultfuzz: end-to-end fault-injection campaign for the hardened
// service layer (Status/StatusOr, RunContext, FaultPoints).
//
//   autobi_faultfuzz --cases 1000 --seed 1
//
// Each case feeds byte-mutated CSV/DDL into the loaders or runs the full
// Predict pipeline on a synthetic case under randomized budgets, deadlines,
// cancellation and injected faults. The invariant: every case yields either
// a well-formed Status error or a validator-passing (possibly degraded)
// model — never a crash, hang, or leak. CI runs this under ASan/UBSan
// (scripts/check.sh, AUTOBI_FAULT_SMOKE=1). Exit code 0 iff zero failures.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "fuzz/fault_fuzz.h"

namespace {

void Usage() {
  std::puts(
      "usage: autobi_faultfuzz [options]\n"
      "  --seed N           master seed (default 1)\n"
      "  --cases N          cases to run (default 1000)\n"
      "  --time_budget SEC  wall-clock budget; 0 = unlimited (default)\n"
      "  --scratch DIR      scratch dir for file-I/O cases\n"
      "                     (default /tmp; '' disables them)\n"
      "  --scenario NAME    '' = mixed campaign (default); 'schema' = only\n"
      "                     the schema-evolution differential scenario;\n"
      "                     'lake' = only the lake blocking differential;\n"
      "                     'crash' = only the catalog crash-recovery\n"
      "                     differential (torn-write journal replay)\n");
}

}  // namespace

int main(int argc, char** argv) {
  autobi::FaultFuzzOptions opt;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    }
    auto need_value = [&]() -> const char* {
      if (!value.empty() || eq != std::string::npos) return value.c_str();
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(need_value(), nullptr, 10);
    } else if (arg == "--cases") {
      opt.cases = std::atol(need_value());
    } else if (arg == "--time_budget") {
      opt.time_budget_sec = std::atof(need_value());
    } else if (arg == "--scratch") {
      opt.scratch_dir = need_value();
    } else if (arg == "--scenario") {
      opt.scenario = need_value();
      if (!opt.scenario.empty() && opt.scenario != "schema" &&
          opt.scenario != "lake" && opt.scenario != "crash") {
        std::fprintf(stderr, "unknown scenario: %s\n", opt.scenario.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage();
      return 2;
    }
  }

  autobi::FaultFuzzReport report = autobi::RunFaultFuzz(opt);
  std::fputs(autobi::FormatFaultFuzzReport(report).c_str(), stdout);
  return report.failures == 0 ? 0 : 1;
}
