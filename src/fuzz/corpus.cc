#include "fuzz/corpus.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace autobi {

namespace {

bool ParseInt(const std::string& tok, int* out) {
  double d = 0.0;
  if (!ParseDouble(tok, &d)) return false;
  *out = int(d);
  return double(*out) == d;
}

}  // namespace

std::string FormatCorpusCase(const JoinGraph& graph, double penalty_weight,
                             const std::vector<std::string>& comments) {
  std::string out;
  for (const std::string& c : comments) out += "# " + c + "\n";
  out += StrFormat("vertices %d\n", graph.num_vertices());
  out += StrFormat("penalty %.17g\n", penalty_weight);
  for (const JoinEdge& e : graph.edges()) {
    out += StrFormat("edge %d %d %.17g %d %d %d", e.src, e.dst,
                     e.probability, e.one_to_one ? 1 : 0, e.pair_id,
                     int(e.src_columns.size()));
    for (int c : e.src_columns) out += StrFormat(" %d", c);
    out += StrFormat(" %d", int(e.dst_columns.size()));
    for (int c : e.dst_columns) out += StrFormat(" %d", c);
    out += "\n";
  }
  return out;
}

bool ParseCorpusCase(const std::string& text, CorpusCase* out,
                     std::string* error) {
  *out = CorpusCase{};
  bool have_vertices = false;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::string c = line.substr(1);
      if (!c.empty() && c[0] == ' ') c = c.substr(1);
      out->comments.push_back(c);
      continue;
    }
    std::vector<std::string> tok = Split(line, " \t\r");
    if (tok.empty()) continue;
    auto fail = [&](const char* why) {
      if (error != nullptr) {
        *error = StrFormat("line %d: %s: %s", line_no, why, line.c_str());
      }
      return false;
    };
    if (tok[0] == "vertices") {
      int n = 0;
      if (tok.size() != 2 || !ParseInt(tok[1], &n) || n < 0) {
        return fail("bad vertices");
      }
      out->graph.set_num_vertices(n);
      have_vertices = true;
    } else if (tok[0] == "penalty") {
      if (tok.size() != 2 ||
          !ParseDouble(tok[1], &out->penalty_weight)) {
        return fail("bad penalty");
      }
    } else if (tok[0] == "edge") {
      if (!have_vertices) return fail("edge before vertices");
      int src = 0, dst = 0, one = 0, pair_id = 0, n_src = 0, n_dst = 0;
      double prob = 0.0;
      size_t i = 1;
      if (tok.size() < 7 || !ParseInt(tok[i], &src) ||
          !ParseInt(tok[i + 1], &dst) || !ParseDouble(tok[i + 2], &prob) ||
          !ParseInt(tok[i + 3], &one) || !ParseInt(tok[i + 4], &pair_id) ||
          !ParseInt(tok[i + 5], &n_src)) {
        return fail("bad edge header");
      }
      i += 6;
      if (tok.size() < i + size_t(n_src) + 1) return fail("bad src columns");
      std::vector<int> src_cols(static_cast<size_t>(n_src));
      for (int c = 0; c < n_src; ++c) {
        if (!ParseInt(tok[i++], &src_cols[size_t(c)])) {
          return fail("bad src column");
        }
      }
      if (!ParseInt(tok[i++], &n_dst) ||
          tok.size() != i + size_t(n_dst)) {
        return fail("bad dst columns");
      }
      std::vector<int> dst_cols(static_cast<size_t>(n_dst));
      for (int c = 0; c < n_dst; ++c) {
        if (!ParseInt(tok[i++], &dst_cols[size_t(c)])) {
          return fail("bad dst column");
        }
      }
      if (src < 0 || src >= out->graph.num_vertices() || dst < 0 ||
          dst >= out->graph.num_vertices() || src == dst) {
        return fail("edge endpoints out of range");
      }
      out->graph.AddEdge(src, dst, std::move(src_cols), std::move(dst_cols),
                         prob, one != 0, pair_id);
    } else {
      return fail("unknown directive");
    }
  }
  if (!have_vertices) {
    if (error != nullptr) *error = "missing 'vertices' line";
    return false;
  }
  return true;
}

bool LoadCorpusFile(const std::string& path, CorpusCase* out,
                    std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCorpusCase(buf.str(), out, error);
}

bool SaveCorpusFile(const std::string& path, const JoinGraph& graph,
                    double penalty_weight,
                    const std::vector<std::string>& comments) {
  std::error_code ec;
  std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << FormatCorpusCase(graph, penalty_weight, comments);
  return bool(out);
}

std::vector<std::string> ListCorpusFiles(const std::string& dir) {
  std::vector<std::string> files;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return files;
  for (const auto& entry : it) {
    if (entry.is_regular_file() && entry.path().extension() == ".txt") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace autobi
