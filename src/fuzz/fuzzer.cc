#include "fuzz/fuzzer.h"

#include <algorithm>
#include <chrono>

#include "common/strings.h"
#include "fuzz/corpus.h"
#include "fuzz/differential.h"
#include "fuzz/generator.h"
#include "fuzz/metamorphic.h"
#include "fuzz/minimize.h"

namespace autobi {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Differential checks need the brute-force oracles, which are capped at 22
// edges; replayed corpus cases above the cap get the metamorphic treatment.
constexpr int kBruteForceEdgeCap = 20;

void RecordFailure(FuzzReport& report, const CheckResult& failure,
                   const std::string& origin, const std::string& repro) {
  ++report.mismatches;
  std::string line =
      StrFormat("%s: %s (%s)", failure.kind.c_str(),
                failure.message.c_str(), origin.c_str());
  if (!repro.empty()) {
    line += " [repro: " + repro + "]";
    report.repro_paths.push_back(repro);
  }
  report.failures.push_back(line);
}

// Minimizes a failing JoinGraph instance and writes it into the corpus
// directory. Returns the repro path ("" when writing is disabled/fails).
// If the failure does not reproduce under `check` (metamorphic checks draw
// fresh randomness, so the re-check can pass), writes the original instance
// unminimized and reports `original` as the failure.
std::string WriteRepro(const FuzzOptions& opt, const JoinGraph& graph,
                       double penalty, const JoinGraphCheck& check,
                       const CheckResult& original, const std::string& origin,
                       CheckResult* minimized_failure) {
  MinimizedInstance min = MinimizeFailure(graph, penalty, check);
  bool reproduced = !min.failure.ok;
  if (!reproduced) {
    min.graph = graph;
    min.penalty_weight = penalty;
    min.failure = original;
    min.shrink_steps = 0;
  }
  *minimized_failure = min.failure;
  if (opt.corpus_dir.empty() || !opt.write_repros) return "";
  std::string path = opt.corpus_dir + "/" +
                     StrFormat("minimized_%s_%s.txt",
                               min.failure.kind.c_str(), origin.c_str());
  std::vector<std::string> comments = {
      reproduced ? "autobi_fuzz minimized repro"
                 : "autobi_fuzz repro (unminimized: failure is "
                   "randomness-dependent and did not reproduce on re-check)",
      "origin: " + origin,
      "kind: " + min.failure.kind,
      "detail: " + min.failure.message,
      StrFormat("shrink_steps: %d", min.shrink_steps),
  };
  if (!SaveCorpusFile(path, min.graph, min.penalty_weight, comments)) {
    return "";
  }
  return path;
}

}  // namespace

FuzzReport RunFuzz(const FuzzOptions& opt) {
  FuzzReport report;
  auto start = std::chrono::steady_clock::now();
  auto out_of_time = [&] {
    if (opt.time_budget_sec > 0.0 &&
        SecondsSince(start) >= opt.time_budget_sec) {
      report.time_budget_hit = true;
      return true;
    }
    return false;
  };

  // --- Stage 1: corpus replay. Known repros run before new random cases so
  // a regression fails fast and deterministically.
  if (!opt.corpus_dir.empty()) {
    for (const std::string& path : ListCorpusFiles(opt.corpus_dir)) {
      CorpusCase c;
      std::string error;
      if (!LoadCorpusFile(path, &c, &error)) {
        RecordFailure(report, CheckFail("corpus_parse_error", error),
                      "replay:" + path, "");
        continue;
      }
      ++report.corpus_replayed;
      CheckResult r;
      if (int(c.graph.num_edges()) <= kBruteForceEdgeCap) {
        r = CheckJoinGraphDifferential(c.graph, c.penalty_weight);
      } else {
        Rng rng(opt.seed ^ 0x5EEDC0DEULL);
        r = CheckJoinGraphMetamorphic(c.graph, c.penalty_weight, rng).check;
      }
      if (!r.ok) RecordFailure(report, r, "replay:" + path, "");
      if (out_of_time()) break;
    }
  }

  // --- Stage 2: seeded random campaign.
  Rng master(opt.seed);
  JoinGraphGenOptions gen_opt;
  gen_opt.max_edges = opt.max_edges;

  JoinGraphGenOptions meta_opt;
  meta_opt.min_vertices = 8;
  meta_opt.max_vertices = 16;
  meta_opt.min_edges = opt.max_edges + 2;
  meta_opt.max_edges = 3 * opt.max_edges;
  meta_opt.edge_skew = 1.0;

  ArcGenOptions arc_opt;
  arc_opt.max_arcs = std::max(4, opt.max_edges - 2);

  for (long i = 0; i < opt.cases; ++i) {
    if (out_of_time()) break;
    // One independent stream per case: failures reproduce from (seed, case)
    // alone, regardless of how many cases ran before.
    Rng rng = master.Fork();

    JoinGraphInstance inst = GenJoinGraph(gen_opt, rng);
    ++report.differential_cases;
    CheckResult r =
        CheckJoinGraphDifferential(inst.graph, inst.penalty_weight);
    if (!r.ok) {
      std::string origin = StrFormat("seed%llu_case%ld",
                                     (unsigned long long)opt.seed, i);
      CheckResult minimized = r;
      std::string path = WriteRepro(
          opt, inst.graph, inst.penalty_weight,
          [](const JoinGraph& g, double p) {
            return CheckJoinGraphDifferential(g, p);
          },
          r, origin, &minimized);
      RecordFailure(report, minimized, "differential:" + origin, path);
    }

    if (opt.arc_every > 0 && i % opt.arc_every == 0) {
      ArcInstance arc = GenArcInstance(arc_opt, rng);
      ++report.arc_cases;
      CheckResult ar = CheckArcDifferential(arc);
      if (!ar.ok) {
        RecordFailure(report, ar,
                      StrFormat("edmonds:seed%llu_case%ld",
                                (unsigned long long)opt.seed, i),
                      "");
      }
    }

    if (opt.metamorphic_every > 0 && i % opt.metamorphic_every == 0) {
      JoinGraphInstance big = GenJoinGraph(meta_opt, rng);
      ++report.metamorphic_cases;
      MetamorphicOutcome m =
          CheckJoinGraphMetamorphic(big.graph, big.penalty_weight, rng);
      if (m.skipped) ++report.metamorphic_skipped;
      if (!m.check.ok) {
        std::string origin = StrFormat("meta_seed%llu_case%ld",
                                       (unsigned long long)opt.seed, i);
        CheckResult minimized = m.check;
        // Minimize against a fresh-rng metamorphic check so the predicate
        // is a pure function of the instance.
        std::string path = WriteRepro(
            opt, big.graph, big.penalty_weight,
            [seed = opt.seed](const JoinGraph& g, double p) {
              Rng check_rng(seed ^ 0x11EA5EULL);
              return CheckJoinGraphMetamorphic(g, p, check_rng).check;
            },
            m.check, origin, &minimized);
        RecordFailure(report, minimized, "metamorphic:" + origin, path);
      }
    }
  }

  report.elapsed_sec = SecondsSince(start);
  return report;
}

std::vector<std::string> WriteSeedCorpus(const std::string& dir,
                                         uint64_t seed, int count) {
  // Aggressive knobs: small, dense, tie-heavy instances — the adversarial
  // shapes the ISSUE calls out (conflict groups, exact ties, parallel and
  // 1:1 edges, disconnected blocks).
  JoinGraphGenOptions opt;
  opt.min_vertices = 3;
  opt.max_vertices = 6;
  opt.min_edges = 5;
  opt.max_edges = 10;
  opt.conflict_density = 0.55;
  opt.tie_prob = 0.6;
  opt.parallel_edge_prob = 0.3;
  opt.one_to_one_prob = 0.2;
  opt.edge_skew = 1.0;

  Rng master(seed);
  std::vector<std::string> paths;
  for (int i = 0; i < count; ++i) {
    Rng rng = master.Fork();
    JoinGraphInstance inst = GenJoinGraph(opt, rng);
    std::string path =
        dir + "/" + StrFormat("seeded_adversarial_%02d.txt", i);
    std::vector<std::string> comments = {
        "autobi_fuzz seed corpus: generator-drawn adversarial instance",
        StrFormat("produced by WriteSeedCorpus(seed=%llu, case=%d) with "
                  "conflict_density=0.55 tie_prob=0.6 "
                  "parallel_edge_prob=0.3 one_to_one_prob=0.2",
                  (unsigned long long)seed, i),
        "replayed by: tests/graph_test.cc CorpusReplay + autobi_fuzz",
    };
    if (SaveCorpusFile(path, inst.graph, inst.penalty_weight, comments)) {
      paths.push_back(path);
    }
  }
  return paths;
}

std::string FormatFuzzReport(const FuzzReport& r) {
  std::string out = StrFormat(
      "corpus_replayed=%ld differential=%ld edmonds=%ld metamorphic=%ld "
      "(skipped=%ld) mismatches=%ld elapsed=%.2fs%s\n",
      r.corpus_replayed, r.differential_cases, r.arc_cases,
      r.metamorphic_cases, r.metamorphic_skipped, r.mismatches,
      r.elapsed_sec, r.time_budget_hit ? " [time budget hit]" : "");
  for (const std::string& f : r.failures) out += "FAIL " + f + "\n";
  return out;
}

}  // namespace autobi
