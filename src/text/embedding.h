#ifndef AUTOBI_TEXT_EMBEDDING_H_
#define AUTOBI_TEXT_EMBEDDING_H_

#include <array>
#include <string>
#include <string_view>
#include <vector>

namespace autobi {

// Lightweight stand-in for the paper's SentenceBERT header embeddings
// (DESIGN.md §1): a signed feature-hashed bag of character n-grams (n = 2..4)
// over the tokenized identifier, L2-normalized. It captures the same signal
// the feature needs — soft name similarity that is robust to token
// reordering, abbreviation and morphological variation — without a
// pretrained model.
class NgramEmbedder {
 public:
  static constexpr int kDims = 256;

  // Embeds an identifier (or a space-joined phrase); deterministic.
  std::array<float, kDims> Embed(std::string_view text) const;

  // Cosine similarity of two embeddings, mapped from [-1,1] to [0,1].
  static double Cosine01(const std::array<float, kDims>& a,
                         const std::array<float, kDims>& b);

  // Convenience: embedding cosine of two raw identifiers.
  double Similarity(std::string_view a, std::string_view b) const;
};

}  // namespace autobi

#endif  // AUTOBI_TEXT_EMBEDDING_H_
