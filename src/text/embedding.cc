#include "text/embedding.h"

#include <cmath>

#include "text/tokenize.h"

namespace autobi {

namespace {

// FNV-1a 64-bit over a byte span.
uint64_t Fnv1a(std::string_view s, uint64_t seed) {
  uint64_t h = 1469598103934665603ULL ^ seed;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::array<float, NgramEmbedder::kDims> NgramEmbedder::Embed(
    std::string_view text) const {
  std::array<float, kDims> v{};
  std::vector<std::string> tokens = TokenizeIdentifier(text);
  for (const std::string& raw : tokens) {
    // Pad each token so boundary n-grams are distinguished.
    std::string tok = "^" + raw + "$";
    for (size_t n = 2; n <= 4; ++n) {
      if (tok.size() < n) continue;
      for (size_t i = 0; i + n <= tok.size(); ++i) {
        std::string_view g(tok.data() + i, n);
        uint64_t h = Fnv1a(g, /*seed=*/n);
        int idx = static_cast<int>(h % kDims);
        float sign = ((h >> 32) & 1) ? 1.0f : -1.0f;
        // Down-weight short n-grams, which are noisier.
        float w = static_cast<float>(n) / 4.0f;
        v[idx] += sign * w;
      }
    }
  }
  double norm = 0.0;
  for (float x : v) norm += double(x) * x;
  if (norm > 0.0) {
    float inv = static_cast<float>(1.0 / std::sqrt(norm));
    for (float& x : v) x *= inv;
  }
  return v;
}

double NgramEmbedder::Cosine01(const std::array<float, kDims>& a,
                               const std::array<float, kDims>& b) {
  double dot = 0.0;
  for (int i = 0; i < kDims; ++i) dot += double(a[i]) * b[i];
  // Inputs are unit vectors (or zero), so dot is the cosine up to float
  // rounding; clamp so callers get a true [0,1] value.
  double v = (dot + 1.0) / 2.0;
  return v < 0.0 ? 0.0 : (v > 1.0 ? 1.0 : v);
}

double NgramEmbedder::Similarity(std::string_view a, std::string_view b) const {
  return Cosine01(Embed(a), Embed(b));
}

}  // namespace autobi
