#ifndef AUTOBI_TEXT_SIMILARITY_H_
#define AUTOBI_TEXT_SIMILARITY_H_

#include <string>
#include <string_view>
#include <vector>

namespace autobi {

// String similarity metrics used as classifier features (Appendix B). All
// return values in [0, 1], with 1 meaning identical.

// Token-set Jaccard similarity |A∩B| / |A∪B| over identifier tokens.
double TokenJaccard(const std::vector<std::string>& a,
                    const std::vector<std::string>& b);

// Token-set containment |A∩B| / min(|A|, |B|). 1 when either token set is a
// subset of the other; both-empty inputs score 0.
double TokenContainment(const std::vector<std::string>& a,
                        const std::vector<std::string>& b);

// 1 - normalized Levenshtein distance over normalized identifiers.
double EditSimilarity(std::string_view a, std::string_view b);

// Jaro-Winkler similarity over normalized identifiers (standard prefix boost
// p = 0.1, max prefix 4).
double JaroWinkler(std::string_view a, std::string_view b);

// Raw Levenshtein edit distance (exposed for tests).
size_t LevenshteinDistance(std::string_view a, std::string_view b);

}  // namespace autobi

#endif  // AUTOBI_TEXT_SIMILARITY_H_
