#ifndef AUTOBI_TEXT_TOKENIZE_H_
#define AUTOBI_TEXT_TOKENIZE_H_

#include <string>
#include <string_view>
#include <vector>

namespace autobi {

// Standardizes a schema identifier into lowercase tokens, splitting on
// camel-casing and delimiters (dash, underscore, dot, space), per the paper's
// metadata-feature preprocessing ("CustomerID" -> {"customer","id"};
// "cust_seg-key" -> {"cust","seg","key"}). Digit runs become their own
// tokens.
std::vector<std::string> TokenizeIdentifier(std::string_view name);

// Lowercased identifier with all delimiters removed ("Customer_ID" ->
// "customerid"); used by character-level similarity metrics.
std::string NormalizeIdentifier(std::string_view name);

}  // namespace autobi

#endif  // AUTOBI_TEXT_TOKENIZE_H_
