#include "text/tokenize.h"

#include <cctype>

namespace autobi {

namespace {

bool IsDelim(char c) {
  return c == '_' || c == '-' || c == '.' || c == ' ' || c == '/' ||
         c == ':' || c == '#';
}

char LowerAscii(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

}  // namespace

std::vector<std::string> TokenizeIdentifier(std::string_view name) {
  std::vector<std::string> tokens;
  std::string cur;
  // Tracks case/category of the previous character to find boundaries:
  // lower->Upper starts a token; an acronym run ends before Upper+lower
  // ("XMLFile" -> xml, file); digit runs are their own tokens.
  bool prev_upper = false;
  bool prev_digit = false;
  auto flush = [&]() {
    if (!cur.empty()) {
      tokens.push_back(cur);
      cur.clear();
    }
  };
  for (size_t i = 0; i < name.size(); ++i) {
    char c = name[i];
    unsigned char uc = static_cast<unsigned char>(c);
    if (IsDelim(c)) {
      flush();
      prev_upper = prev_digit = false;
      continue;
    }
    if (std::isdigit(uc)) {
      if (!cur.empty() && !prev_digit) flush();
      cur += c;
      prev_digit = true;
      prev_upper = false;
      continue;
    }
    if (std::isupper(uc)) {
      bool next_lower = i + 1 < name.size() &&
                        std::islower(static_cast<unsigned char>(name[i + 1]));
      if (!cur.empty() && (!prev_upper || (prev_upper && next_lower))) {
        // Either a lower/digit->Upper boundary, or the last letter of an
        // acronym run followed by a lowercase word.
        flush();
      }
      cur += LowerAscii(c);
      prev_upper = true;
      prev_digit = false;
      continue;
    }
    // Lowercase letter (or other byte).
    if (prev_digit && !cur.empty()) flush();
    cur += LowerAscii(c);
    prev_upper = false;
    prev_digit = false;
  }
  flush();
  return tokens;
}

std::string NormalizeIdentifier(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    if (IsDelim(c)) continue;
    out += LowerAscii(c);
  }
  return out;
}

}  // namespace autobi
