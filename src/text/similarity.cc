#include "text/similarity.h"

#include <algorithm>
#include <unordered_set>

namespace autobi {

double TokenJaccard(const std::vector<std::string>& a,
                    const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 0.0;
  std::unordered_set<std::string> sa(a.begin(), a.end());
  std::unordered_set<std::string> sb(b.begin(), b.end());
  size_t inter = 0;
  for (const auto& t : sa) {
    if (sb.count(t)) ++inter;
  }
  size_t uni = sa.size() + sb.size() - inter;
  if (uni == 0) return 0.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double TokenContainment(const std::vector<std::string>& a,
                        const std::vector<std::string>& b) {
  if (a.empty() || b.empty()) return 0.0;
  std::unordered_set<std::string> sa(a.begin(), a.end());
  std::unordered_set<std::string> sb(b.begin(), b.end());
  size_t inter = 0;
  for (const auto& t : sa) {
    if (sb.count(t)) ++inter;
  }
  size_t denom = std::min(sa.size(), sb.size());
  return static_cast<double>(inter) / static_cast<double>(denom);
}

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  std::vector<size_t> row(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) row[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    size_t prev_diag = row[0];
    row[0] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      size_t cur = row[i];
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      row[i] = std::min({row[i] + 1, row[i - 1] + 1, prev_diag + cost});
      prev_diag = cur;
    }
  }
  return row[a.size()];
}

double EditSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t d = LevenshteinDistance(a, b);
  size_t m = std::max(a.size(), b.size());
  return 1.0 - static_cast<double>(d) / static_cast<double>(m);
}

double JaroWinkler(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  size_t la = a.size();
  size_t lb = b.size();
  size_t match_window =
      la > lb ? la / 2 : lb / 2;
  if (match_window > 0) match_window -= 1;
  std::vector<char> a_matched(la, 0), b_matched(lb, 0);
  size_t matches = 0;
  for (size_t i = 0; i < la; ++i) {
    size_t lo = i > match_window ? i - match_window : 0;
    size_t hi = std::min(lb, i + match_window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (b_matched[j] || a[i] != b[j]) continue;
      a_matched[i] = 1;
      b_matched[j] = 1;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;
  // Count transpositions among matched characters.
  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < la; ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  double m = static_cast<double>(matches);
  double jaro = (m / la + m / lb + (m - transpositions / 2.0) / m) / 3.0;
  // Winkler prefix boost.
  size_t prefix = 0;
  for (size_t i = 0; i < std::min({la, lb, size_t{4}}); ++i) {
    if (a[i] == b[i]) ++prefix;
    else break;
  }
  return jaro + 0.1 * static_cast<double>(prefix) * (1.0 - jaro);
}

}  // namespace autobi
