#ifndef AUTOBI_GRAPH_EMS_H_
#define AUTOBI_GRAPH_EMS_H_

#include <vector>

#include "graph/join_graph.h"

namespace autobi {

struct EmsOptions {
  // Precision threshold τ: only remaining edges with calibrated probability
  // >= τ are candidates (footnote 5; default 0.5 — the natural cutoff for
  // calibrated probabilities).
  double tau = 0.5;
};

// Recall mode (Section 4.3.3): greedily grows additional joins S on top of
// the precision-mode backbone J*, maximizing |S| subject to
//   - FK-once over S ∪ J* (Equation 18),
//   - no directed cycles in S ∪ J* (Equation 19),
//   - at most one orientation per 1:1 pair.
// Candidates are taken most-confident-first; EMS is NP-hard in general but a
// greedy solve is near-optimal here because J* leaves little slack
// (Section 4.3.3). Returns the ids of the added edges S (not including J*).
std::vector<int> SolveEmsGreedy(const JoinGraph& graph,
                                const std::vector<int>& backbone,
                                const EmsOptions& options = {});

// Exact EMS by exhaustive subset search over the remaining promising edges
// R (Equations 17-19). Exponential in |R| — callers must keep |R| <= ~20.
// Returns a maximum-cardinality feasible S, breaking ties by higher joint
// probability. Used by tests and the ablation bench that validates the
// paper's claim that the greedy solution is near-optimal in practice
// (Section 4.3.3).
std::vector<int> SolveEmsExact(const JoinGraph& graph,
                               const std::vector<int>& backbone,
                               const EmsOptions& options = {});

}  // namespace autobi

#endif  // AUTOBI_GRAPH_EMS_H_
