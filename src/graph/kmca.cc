#include "graph/kmca.h"

#include <algorithm>

#include "common/check.h"

namespace autobi {

double KArborescenceCost(const JoinGraph& graph,
                         const std::vector<int>& edge_ids,
                         double penalty_weight) {
  double sum = 0.0;
  for (int id : edge_ids) sum += graph.edge(id).weight;
  int k = graph.num_vertices() - static_cast<int>(edge_ids.size());
  return sum + (k - 1) * penalty_weight;
}

KmcaInstance BuildKmcaInstance(const JoinGraph& graph, double penalty_weight) {
  KmcaInstance inst;
  int n = graph.num_vertices();
  inst.num_vertices = n;
  inst.artificial_root = n;
  inst.arcs.reserve(graph.num_edges() + static_cast<size_t>(n));
  inst.arc_to_edge.reserve(inst.arcs.capacity());
  for (const JoinEdge& e : graph.edges()) {
    inst.arcs.push_back(Arc{e.src, e.dst, e.weight});
    inst.arc_to_edge.push_back(e.id);
  }
  for (int v = 0; v < n; ++v) {
    inst.arcs.push_back(Arc{inst.artificial_root, v, penalty_weight});
    inst.arc_to_edge.push_back(-1);
  }
  return inst;
}

void SolveKmcaOverInstance(const JoinGraph& graph, const KmcaInstance& inst,
                           const char* edge_mask, double penalty_weight,
                           EdmondsWorkspace& workspace, KmcaResult* out) {
  out->edge_ids.clear();
  out->cost = 0.0;
  out->k = 0;
  out->feasible = false;
  int n = inst.num_vertices;
  if (n == 0) {
    out->feasible = true;
    return;
  }

  bool ok = workspace.Solve(n + 1, inst.arcs, inst.artificial_root,
                            inst.arc_to_edge.data(), edge_mask);
  // With the artificial root every vertex is reachable, so this always
  // succeeds.
  AUTOBI_CHECK(ok);  // invariant: see comment above.

  for (int ai : workspace.selected()) {
    int edge_id = inst.arc_to_edge[size_t(ai)];
    if (edge_id >= 0) out->edge_ids.push_back(edge_id);
  }
  std::sort(out->edge_ids.begin(), out->edge_ids.end());
  out->k = n - static_cast<int>(out->edge_ids.size());
  out->cost = KArborescenceCost(graph, out->edge_ids, penalty_weight);
  out->feasible = true;
}

KmcaResult SolveKmca(const JoinGraph& graph, double penalty_weight,
                     const std::vector<char>& mask, long* one_mca_calls) {
  KmcaResult result;
  if (graph.num_vertices() == 0) {
    result.feasible = true;
    result.k = 0;
    return result;
  }
  KmcaInstance inst = BuildKmcaInstance(graph, penalty_weight);
  static thread_local EdmondsWorkspace workspace;
  SolveKmcaOverInstance(graph, inst, mask.empty() ? nullptr : mask.data(),
                        penalty_weight, workspace, &result);
  if (one_mca_calls != nullptr) ++(*one_mca_calls);
  return result;
}

}  // namespace autobi
