#include "graph/kmca.h"

#include <algorithm>

#include "common/check.h"
#include "graph/edmonds.h"

namespace autobi {

double KArborescenceCost(const JoinGraph& graph,
                         const std::vector<int>& edge_ids,
                         double penalty_weight) {
  double sum = 0.0;
  for (int id : edge_ids) sum += graph.edge(id).weight;
  int k = graph.num_vertices() - static_cast<int>(edge_ids.size());
  return sum + (k - 1) * penalty_weight;
}

KmcaResult SolveKmca(const JoinGraph& graph, double penalty_weight,
                     const std::vector<char>& mask, long* one_mca_calls) {
  KmcaResult result;
  int n = graph.num_vertices();
  if (n == 0) {
    result.feasible = true;
    result.k = 0;
    return result;
  }

  // Build the augmented instance G' = (V + {r}, E + {r->v}) of Algorithm 2.
  // Arc indices < graph.num_edges() are real edges; the rest are artificial.
  std::vector<Arc> arcs;
  arcs.reserve(graph.num_edges() + static_cast<size_t>(n));
  std::vector<int> arc_to_edge;
  arc_to_edge.reserve(arcs.capacity());
  for (const JoinEdge& e : graph.edges()) {
    if (!mask.empty() && !mask[size_t(e.id)]) continue;
    arcs.push_back(Arc{e.src, e.dst, e.weight});
    arc_to_edge.push_back(e.id);
  }
  int artificial_root = n;
  for (int v = 0; v < n; ++v) {
    arcs.push_back(Arc{artificial_root, v, penalty_weight});
    arc_to_edge.push_back(-1);
  }

  auto selected = SolveMinCostArborescence(n + 1, arcs, artificial_root);
  if (one_mca_calls != nullptr) ++(*one_mca_calls);
  // With the artificial root every vertex is reachable, so this always
  // succeeds.
  AUTOBI_CHECK(selected.has_value());

  for (int ai : *selected) {
    int edge_id = arc_to_edge[size_t(ai)];
    if (edge_id >= 0) result.edge_ids.push_back(edge_id);
  }
  std::sort(result.edge_ids.begin(), result.edge_ids.end());
  result.k = n - static_cast<int>(result.edge_ids.size());
  result.cost = KArborescenceCost(graph, result.edge_ids, penalty_weight);
  result.feasible = true;
  return result;
}

}  // namespace autobi
