#include "graph/kmca_cc.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <queue>
#include <tuple>
#include <unordered_set>
#include <utility>

#include "common/parallel.h"
#include "graph/edmonds.h"

namespace autobi {

namespace {

// Bound slack: a subproblem whose relaxation cannot beat the incumbent by
// more than this is cut (matches the legacy serial solver).
constexpr double kBoundEps = 1e-12;

// Finds one FK-once conflict set in `edge_ids`: a maximal group of selected
// edges sharing a source_key, of size >= 2. `out` is empty if none
// (feasible). Among multiple violated groups, picks the largest (strongest
// branching); ties go to the smallest source_key. `pairs` is caller-owned
// scratch — this runs once per search node, so it reuses flat sorted
// vectors instead of rebuilding a std::map every time.
void FindConflictSet(const JoinGraph& graph, const std::vector<int>& edge_ids,
                     std::vector<std::pair<int, int>>& pairs,
                     std::vector<int>& out) {
  out.clear();
  pairs.clear();
  pairs.reserve(edge_ids.size());
  for (int id : edge_ids) {
    pairs.emplace_back(graph.edge(id).source_key, id);
  }
  std::sort(pairs.begin(), pairs.end());
  size_t best_begin = 0;
  size_t best_len = 0;
  for (size_t i = 0; i < pairs.size();) {
    size_t j = i;
    while (j < pairs.size() && pairs[j].first == pairs[i].first) ++j;
    if (j - i >= 2 && j - i > best_len) {
      best_begin = i;
      best_len = j - i;
    }
    i = j;
  }
  for (size_t i = best_begin; i < best_begin + best_len; ++i) {
    out.push_back(pairs[i].second);
  }
}

// Per-edge-id mixer (splitmix64 finalizer). Masked-set signatures are the
// SUM of mixed ids — commutative, so a child's signature derives from its
// parent's in O(1): sig(child) = sig(parent) + sum(mix(conflict)) -
// mix(kept edge). Summing unmixed ids would collide constantly
// ({1,4} vs {2,3}); summing well-mixed ids makes collisions as unlikely as
// any 64-bit hash, and true equality is still verified set-wise on bucket
// collisions.
inline uint64_t MixEdgeId(int id) {
  uint64_t x = uint64_t(uint32_t(id)) + 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// One open branch-and-bound subproblem. The subproblem's graph is the full
// graph minus its masked edge set — which doubles as its canonical
// memoization key: two branch orders reaching the same masked set are the
// same subproblem. The masked ids (unordered) live as a [begin, begin + len)
// span in one shared pool, so creating (and memo-rejecting) a child never
// allocates: the span is appended, keyed by its precomputed signature, and
// truncated away again on a duplicate.
struct BnbNode {
  double bound = -std::numeric_limits<double>::infinity();
  uint64_t sig = 0;
  uint32_t begin = 0;
  uint32_t len = 0;
};

// Hash/equality over node indices. The functors hold pointers to the owning
// vectors, which are stable even as the vectors' storage reallocates.
struct SpanHash {
  const std::vector<BnbNode>* nodes;
  size_t operator()(int idx) const {
    return size_t((*nodes)[size_t(idx)].sig);
  }
};

// Exact set equality via a caller-owned mark array indexed by edge id (the
// spans are unordered, and a sorted canonical form would cost an O(n log n)
// merge per child). Only runs on hash-bucket collisions.
struct SpanEq {
  const std::vector<BnbNode>* nodes;
  const std::vector<int>* pool;
  std::vector<char>* marks;  // num_edges zeros; restored before returning.
  bool operator()(int a, int b) const {
    const BnbNode& na = (*nodes)[size_t(a)];
    const BnbNode& nb = (*nodes)[size_t(b)];
    if (na.len != nb.len) return false;
    const std::vector<int>& p = *pool;
    std::vector<char>& m = *marks;
    for (uint32_t i = na.begin; i < na.begin + na.len; ++i) m[p[i]] = 1;
    bool equal = true;
    for (uint32_t i = nb.begin; i < nb.begin + nb.len; ++i) {
      if (!m[p[i]]) {
        equal = false;
        break;
      }
    }
    for (uint32_t i = na.begin; i < na.begin + na.len; ++i) m[p[i]] = 0;
    return equal;
  }
};

// Priority-queue item: (lower bound, creation seq, node index). Min-heap on
// (bound, seq) — best-first, with creation order as the deterministic
// tie-break.
using OpenItem = std::tuple<double, long, int>;

KmcaResult AssembleResult(const JoinGraph& graph, double best_cost,
                          std::vector<int> best_edges) {
  KmcaResult result;
  result.edge_ids = std::move(best_edges);
  result.cost = best_cost;
  result.k = graph.num_vertices() - static_cast<int>(result.edge_ids.size());
  result.feasible = true;
  return result;
}

// Budget-exhausted fallback: the unconstrained relaxation thinned to one
// edge per conflict group (cheapest wins, ties to the lowest id): dropping
// edges from a k-arborescence cannot create cycles or in-degree > 1, so the
// result always satisfies both Definition 3 and FK-once — suboptimal, but a
// usable model instead of an empty one. Costs one extra 1-MCA call.
void GreedyThinnedFallback(const JoinGraph& graph,
                           const KmcaCcOptions& options, KmcaCcStats* stats,
                           double* best_cost, std::vector<int>* best_edges) {
  KmcaResult relaxed =
      SolveKmca(graph, options.penalty_weight, {}, &stats->one_mca_calls);
  // Flat (source_key, weight, id) triples sorted once: the first entry of
  // each source_key run is that group's cheapest (lowest-id on ties) edge.
  std::vector<std::tuple<int, double, int>> by_key;
  by_key.reserve(relaxed.edge_ids.size());
  for (int id : relaxed.edge_ids) {
    const JoinEdge& e = graph.edge(id);
    by_key.emplace_back(e.source_key, e.weight, id);
  }
  std::sort(by_key.begin(), by_key.end());
  best_edges->clear();
  for (size_t i = 0; i < by_key.size(); ++i) {
    if (i == 0 || std::get<0>(by_key[i]) != std::get<0>(by_key[i - 1])) {
      best_edges->push_back(std::get<2>(by_key[i]));
    }
  }
  std::sort(best_edges->begin(), best_edges->end());
  *best_cost = KArborescenceCost(graph, *best_edges, options.penalty_weight);
}

}  // namespace

bool SatisfiesFkOnce(const JoinGraph& graph,
                     const std::vector<int>& edge_ids) {
  // Sorted-keys duplicate scan: O(m log m) instead of the old O(m^2)
  // std::find over a growing vector.
  std::vector<int> keys;
  keys.reserve(edge_ids.size());
  for (int id : edge_ids) keys.push_back(graph.edge(id).source_key);
  std::sort(keys.begin(), keys.end());
  return std::adjacent_find(keys.begin(), keys.end()) == keys.end();
}

KmcaResult SolveKmcaCc(const JoinGraph& graph, const KmcaCcOptions& options,
                       KmcaCcStats* stats) {
  KmcaCcStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = KmcaCcStats{};

  if (!options.enforce_fk_once) {
    // Ablation: plain k-MCA.
    return SolveKmca(graph, options.penalty_weight, {},
                     &stats->one_mca_calls);
  }
  if (graph.num_vertices() == 0) {
    KmcaResult empty;
    empty.feasible = true;
    return empty;
  }

  // The augmented arc array is materialized once and shared read-only by
  // every search node; nodes differ only in their edge mask.
  const KmcaInstance inst = BuildKmcaInstance(graph, options.penalty_weight);
  const size_t num_edges = graph.num_edges();

  // Per-slot scratch for the parallel relaxation phase: one Edmonds arena
  // and one mask buffer per concurrent solve. The slot count is capped by
  // the wave batch, never the other way around — the search shape is
  // independent of the thread count.
  const int slots = std::max(
      1, std::min(ResolveThreads(options.threads), kKmcaCcWaveBatch));
  std::vector<EdmondsWorkspace> workspaces(static_cast<size_t>(slots));
  std::vector<std::vector<char>> slot_masks(
      size_t(slots), std::vector<char>(num_edges, 1));
  std::vector<KmcaResult> results(static_cast<size_t>(kKmcaCcWaveBatch));

  std::vector<BnbNode> nodes;
  std::vector<int> mask_pool;  // Concatenated masked-id spans of all nodes.
  std::priority_queue<OpenItem, std::vector<OpenItem>, std::greater<OpenItem>>
      open;
  std::vector<char> eq_marks(num_edges, 0);
  std::unordered_set<int, SpanHash, SpanEq> memo(
      /*bucket_count=*/64, SpanHash{&nodes},
      SpanEq{&nodes, &mask_pool, &eq_marks});

  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<int> best_edges;
  bool have_best = false;

  long next_seq = 0;
  nodes.push_back(BnbNode{});
  memo.insert(0);
  open.emplace(nodes.back().bound, next_seq++, 0);

  std::vector<int> wave;
  std::vector<std::pair<int, int>> conflict_scratch;
  std::vector<int> conflict;
  std::vector<std::pair<double, int>> keep_order;
  std::vector<int> parent_masked;

  while (!open.empty()) {
    // --- Wave formation (serial): pop best-first by (bound, seq), cutting
    // subproblems that can no longer beat the incumbent and charging the
    // 1-MCA budget in deterministic order.
    wave.clear();
    while (!open.empty() &&
           static_cast<int>(wave.size()) < kKmcaCcWaveBatch) {
      const auto& [bound, seq, idx] = open.top();
      if (have_best && bound >= best_cost - kBoundEps) {
        ++stats->pruned;
        open.pop();
        continue;
      }
      if (stats->one_mca_calls >= options.max_one_mca_calls) {
        stats->budget_exhausted = true;
        break;
      }
      ++stats->one_mca_calls;
      wave.push_back(idx);
      open.pop();
    }
    if (wave.empty()) break;
    ++stats->waves;

    // --- Parallel phase: each slot materializes node masks into its own
    // buffer and solves relaxations into per-node result slots. Pure
    // function evaluation — all decisions happen serially below, so results
    // and stats are bit-identical at any thread count.
    const size_t wave_n = wave.size();
    const size_t chunks = std::min(size_t(slots), wave_n);
    ParallelFor(
        chunks,
        [&](size_t c) {
          std::vector<char>& mask = slot_masks[c];
          EdmondsWorkspace& ws = workspaces[c];
          for (size_t w = wave_n * c / chunks; w < wave_n * (c + 1) / chunks;
               ++w) {
            const BnbNode& node = nodes[size_t(wave[w])];
            std::fill(mask.begin(), mask.end(), 1);
            for (uint32_t i = node.begin; i < node.begin + node.len; ++i) {
              mask[size_t(mask_pool[i])] = 0;
            }
            SolveKmcaOverInstance(graph, inst,
                                  num_edges > 0 ? mask.data() : nullptr,
                                  options.penalty_weight, ws, &results[w]);
          }
        },
        options.threads);

    // --- Serial phase, in wave order: bound test, feasibility, incumbent
    // merge, and memoized child creation.
    for (size_t w = 0; w < wave_n; ++w) {
      ++stats->nodes;
      const KmcaResult& relaxed = results[w];
      if (have_best && relaxed.cost >= best_cost - kBoundEps) {
        ++stats->pruned;
        continue;
      }
      FindConflictSet(graph, relaxed.edge_ids, conflict_scratch, conflict);
      if (conflict.empty()) {
        // Deterministic incumbent merge: lexicographically smallest
        // (cost, edge_ids) among explored feasible leaves wins.
        if (!have_best || relaxed.cost < best_cost ||
            (relaxed.cost == best_cost && relaxed.edge_ids < best_edges)) {
          best_cost = relaxed.cost;
          best_edges = relaxed.edge_ids;
          have_best = true;
        }
        continue;
      }

      // Branch: keep exactly one edge of the conflict set per child. (A
      // solution using none of them remains feasible in every child, so no
      // optimum is lost; see Theorem 4.) Children are created cheapest kept
      // edge first — among equal bounds the best-first queue then explores
      // the most promising subtree first, giving a strong incumbent early.
      keep_order.clear();
      for (int id : conflict) {
        keep_order.emplace_back(graph.edge(id).weight, id);
      }
      std::sort(keep_order.begin(), keep_order.end());

      // Appending a child's span may reallocate the pool while the parent's
      // span is being read, so copy the parent span to scratch once (the
      // buffer is reused across nodes — no steady-state allocation). The
      // signature of "parent + whole conflict set" is shared by all
      // children; each child then subtracts its kept edge in O(1).
      const BnbNode parent = nodes[size_t(wave[w])];
      parent_masked.assign(
          mask_pool.begin() + parent.begin,
          mask_pool.begin() + parent.begin + parent.len);
      uint64_t all_sig = parent.sig;
      for (int id : conflict) all_sig += MixEdgeId(id);
      for (const auto& [weight, keep] : keep_order) {
        (void)weight;
        // Child masked set = parent's masked set + (conflict \ keep),
        // appended to the pool (conflict edges are unmasked in the parent,
        // so the union is disjoint; spans are unordered by design).
        const uint32_t begin = static_cast<uint32_t>(mask_pool.size());
        mask_pool.insert(mask_pool.end(), parent_masked.begin(),
                         parent_masked.end());
        for (int id : conflict) {
          if (id != keep) mask_pool.push_back(id);
        }
        const int child_idx = static_cast<int>(nodes.size());
        nodes.push_back(BnbNode{
            relaxed.cost, all_sig - MixEdgeId(keep), begin,
            static_cast<uint32_t>(mask_pool.size()) - begin});
        if (!memo.insert(child_idx).second) {
          // Same subproblem reached via another branch order: roll the
          // provisional span back off the pool.
          ++stats->memo_hits;
          nodes.pop_back();
          mask_pool.resize(begin);
          continue;
        }
        open.emplace(relaxed.cost, next_seq++, child_idx);
      }
    }
    if (stats->budget_exhausted) break;
  }

  if (!have_best) {
    // Budget exhausted before any feasible leaf was reached.
    GreedyThinnedFallback(graph, options, stats, &best_cost, &best_edges);
  }
  return AssembleResult(graph, best_cost, std::move(best_edges));
}

// --- Legacy reference implementation (frozen; see header). ---------------

namespace {

std::vector<int> LegacyFindConflictSet(const JoinGraph& graph,
                                       const std::vector<int>& edge_ids) {
  std::map<int, std::vector<int>> by_source;
  for (int id : edge_ids) {
    by_source[graph.edge(id).source_key].push_back(id);
  }
  std::vector<int> best;
  for (auto& [key, group] : by_source) {
    (void)key;
    if (group.size() >= 2 && group.size() > best.size()) {
      best = group;
    }
  }
  return best;
}

struct LegacySearchState {
  const JoinGraph* graph;
  KmcaCcOptions options;
  KmcaCcStats* stats;
  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<int> best_edges;
  bool have_best = false;
};

// Recursive branch-and-bound (Algorithm 3). `mask[e]` marks edges still in
// the graph of this subproblem.
void LegacySearch(LegacySearchState& state, std::vector<char>& mask) {
  if (state.stats->one_mca_calls >= state.options.max_one_mca_calls) {
    state.stats->budget_exhausted = true;
    return;
  }
  ++state.stats->nodes;

  // Line 1: relaxation — solve unconstrained k-MCA on the masked graph.
  KmcaResult relaxed = SolveKmca(*state.graph, state.options.penalty_weight,
                                 mask, &state.stats->one_mca_calls);

  // Line 4: bound — constraints can only increase cost.
  if (state.have_best && relaxed.cost >= state.best_cost - kBoundEps) {
    ++state.stats->pruned;
    return;
  }

  // Line 2: feasibility.
  std::vector<int> conflict =
      LegacyFindConflictSet(*state.graph, relaxed.edge_ids);
  if (conflict.empty()) {
    state.best_cost = relaxed.cost;
    state.best_edges = relaxed.edge_ids;
    state.have_best = true;
    return;
  }

  // Lines 7-11: branch — keep exactly one edge of the conflict set per
  // child.
  for (int keep : conflict) {
    for (int id : conflict) {
      mask[size_t(id)] = (id == keep) ? 1 : 0;
    }
    LegacySearch(state, mask);
  }
  for (int id : conflict) mask[size_t(id)] = 1;  // Restore.
}

}  // namespace

KmcaResult SolveKmcaCcLegacy(const JoinGraph& graph,
                             const KmcaCcOptions& options,
                             KmcaCcStats* stats) {
  KmcaCcStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = KmcaCcStats{};

  if (!options.enforce_fk_once) {
    return SolveKmca(graph, options.penalty_weight, {},
                     &stats->one_mca_calls);
  }

  LegacySearchState state;
  state.graph = &graph;
  state.options = options;
  state.stats = stats;
  std::vector<char> mask(graph.num_edges(), 1);
  LegacySearch(state, mask);

  if (!state.have_best) {
    GreedyThinnedFallback(graph, options, stats, &state.best_cost,
                          &state.best_edges);
  }
  return AssembleResult(graph, state.best_cost, std::move(state.best_edges));
}

double EstimateBruteForceKmcaCalls(int num_vertices) {
  // sum_k S(n,k) * k, with Stirling-second-kind recurrence in doubles
  // (saturates at +inf for very large n, which is fine on a log-scale plot).
  int n = num_vertices;
  if (n <= 0) return 0.0;
  std::vector<double> prev(static_cast<size_t>(n) + 1, 0.0);
  prev[0] = 1.0;  // S(0,0) = 1.
  for (int row = 1; row <= n; ++row) {
    std::vector<double> cur(static_cast<size_t>(n) + 1, 0.0);
    for (int k = 1; k <= row; ++k) {
      cur[size_t(k)] = prev[size_t(k - 1)] + double(k) * prev[size_t(k)];
    }
    prev = std::move(cur);
  }
  double total = 0.0;
  for (int k = 1; k <= n; ++k) total += prev[size_t(k)] * double(k);
  return total;
}

double EstimateUnprunedBranchCalls(const JoinGraph& graph) {
  // Only edges with probability >= 0.5 can ever appear in a k-MCA
  // relaxation (cheaper to drop them than to pay the virtual-edge penalty),
  // so exhaustive branching enumerates one choice per conflict group among
  // those edges.
  std::map<int, long> group_sizes;
  for (const JoinEdge& e : graph.edges()) {
    if (e.probability >= 0.5) ++group_sizes[e.source_key];
  }
  double product = 1.0;
  for (const auto& [key, size] : group_sizes) {
    (void)key;
    if (size >= 2) product *= double(size);
  }
  return product;
}

}  // namespace autobi
