#include "graph/kmca_cc.h"

#include <algorithm>
#include <limits>
#include <map>

namespace autobi {

namespace {

// Finds one FK-once conflict set in `edge_ids`: a maximal group of selected
// edges sharing a source_key, of size >= 2. Returns empty if none (feasible).
// Among multiple violated groups, picks the largest (strongest branching).
std::vector<int> FindConflictSet(const JoinGraph& graph,
                                 const std::vector<int>& edge_ids) {
  std::map<int, std::vector<int>> by_source;
  for (int id : edge_ids) {
    by_source[graph.edge(id).source_key].push_back(id);
  }
  std::vector<int> best;
  for (auto& [key, group] : by_source) {
    (void)key;
    if (group.size() >= 2 && group.size() > best.size()) {
      best = group;
    }
  }
  return best;
}

struct SearchState {
  const JoinGraph* graph;
  KmcaCcOptions options;
  KmcaCcStats* stats;
  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<int> best_edges;
  bool have_best = false;
};

// Recursive branch-and-bound (Algorithm 3). `mask[e]` marks edges still in
// the graph of this subproblem.
void Search(SearchState& state, std::vector<char>& mask) {
  if (state.stats->one_mca_calls >= state.options.max_one_mca_calls) {
    state.stats->budget_exhausted = true;
    return;
  }
  ++state.stats->nodes;

  // Line 1: relaxation — solve unconstrained k-MCA on the masked graph.
  KmcaResult relaxed = SolveKmca(*state.graph, state.options.penalty_weight,
                                 mask, &state.stats->one_mca_calls);

  // Line 4: bound — constraints can only increase cost.
  if (state.have_best && relaxed.cost >= state.best_cost - 1e-12) {
    ++state.stats->pruned;
    return;
  }

  // Line 2: feasibility.
  std::vector<int> conflict = FindConflictSet(*state.graph, relaxed.edge_ids);
  if (conflict.empty()) {
    state.best_cost = relaxed.cost;
    state.best_edges = relaxed.edge_ids;
    state.have_best = true;
    return;
  }

  // Lines 7-11: branch — keep exactly one edge of the conflict set per
  // child. (A solution using none of them remains feasible in every child,
  // so no optimum is lost; see Theorem 4.)
  for (int keep : conflict) {
    for (int id : conflict) {
      mask[size_t(id)] = (id == keep) ? 1 : 0;
    }
    Search(state, mask);
  }
  for (int id : conflict) mask[size_t(id)] = 1;  // Restore.
}

}  // namespace

bool SatisfiesFkOnce(const JoinGraph& graph,
                     const std::vector<int>& edge_ids) {
  std::vector<int> seen;
  for (int id : edge_ids) {
    int key = graph.edge(id).source_key;
    if (std::find(seen.begin(), seen.end(), key) != seen.end()) return false;
    seen.push_back(key);
  }
  return true;
}

KmcaResult SolveKmcaCc(const JoinGraph& graph, const KmcaCcOptions& options,
                       KmcaCcStats* stats) {
  KmcaCcStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = KmcaCcStats{};

  if (!options.enforce_fk_once) {
    // Ablation: plain k-MCA.
    return SolveKmca(graph, options.penalty_weight, {},
                     &stats->one_mca_calls);
  }

  SearchState state;
  state.graph = &graph;
  state.options = options;
  state.stats = stats;
  std::vector<char> mask(graph.num_edges(), 1);
  Search(state, mask);

  if (!state.have_best) {
    // Budget exhausted before any feasible leaf was reached. Fall back to
    // the unconstrained relaxation thinned to one edge per conflict group
    // (cheapest wins, ties to the lowest id): dropping edges from a
    // k-arborescence cannot create cycles or in-degree > 1, so the result
    // always satisfies both Definition 3 and FK-once — suboptimal, but a
    // usable model instead of an empty one. Costs one extra 1-MCA call.
    KmcaResult relaxed =
        SolveKmca(graph, options.penalty_weight, {}, &stats->one_mca_calls);
    std::map<int, int> keep;  // source_key -> cheapest selected edge.
    for (int id : relaxed.edge_ids) {
      auto [it, inserted] = keep.emplace(graph.edge(id).source_key, id);
      if (!inserted &&
          graph.edge(id).weight < graph.edge(it->second).weight) {
        it->second = id;
      }
    }
    for (const auto& [key, id] : keep) {
      (void)key;
      state.best_edges.push_back(id);
    }
    std::sort(state.best_edges.begin(), state.best_edges.end());
    state.best_cost =
        KArborescenceCost(graph, state.best_edges, options.penalty_weight);
    state.have_best = true;
  }

  KmcaResult result;
  result.edge_ids = state.best_edges;
  result.cost = state.best_cost;
  result.k = graph.num_vertices() - static_cast<int>(state.best_edges.size());
  result.feasible = true;
  return result;
}

double EstimateBruteForceKmcaCalls(int num_vertices) {
  // sum_k S(n,k) * k, with Stirling-second-kind recurrence in doubles
  // (saturates at +inf for very large n, which is fine on a log-scale plot).
  int n = num_vertices;
  if (n <= 0) return 0.0;
  std::vector<double> prev(static_cast<size_t>(n) + 1, 0.0);
  prev[0] = 1.0;  // S(0,0) = 1.
  for (int row = 1; row <= n; ++row) {
    std::vector<double> cur(static_cast<size_t>(n) + 1, 0.0);
    for (int k = 1; k <= row; ++k) {
      cur[size_t(k)] = prev[size_t(k - 1)] + double(k) * prev[size_t(k)];
    }
    prev = std::move(cur);
  }
  double total = 0.0;
  for (int k = 1; k <= n; ++k) total += prev[size_t(k)] * double(k);
  return total;
}

double EstimateUnprunedBranchCalls(const JoinGraph& graph) {
  // Only edges with probability >= 0.5 can ever appear in a k-MCA
  // relaxation (cheaper to drop them than to pay the virtual-edge penalty),
  // so exhaustive branching enumerates one choice per conflict group among
  // those edges.
  std::map<int, long> group_sizes;
  for (const JoinEdge& e : graph.edges()) {
    if (e.probability >= 0.5) ++group_sizes[e.source_key];
  }
  double product = 1.0;
  for (const auto& [key, size] : group_sizes) {
    (void)key;
    if (size >= 2) product *= double(size);
  }
  return product;
}

}  // namespace autobi
