#include "graph/edmonds.h"

#include <algorithm>

#include "common/check.h"

namespace autobi {

namespace {

// One recursion level of the legacy contraction algorithm. `arcs` are this
// level's arcs; returns indices into `arcs`.
std::optional<std::vector<int>> SolveRecursive(int n,
                                               const std::vector<Arc>& arcs,
                                               int root) {
  // 1. Cheapest incoming arc for every non-root vertex.
  std::vector<int> best(static_cast<size_t>(n), -1);
  for (size_t i = 0; i < arcs.size(); ++i) {
    const Arc& a = arcs[i];
    if (a.src == a.dst || a.dst == root) continue;
    int v = a.dst;
    if (best[v] < 0 || a.weight < arcs[size_t(best[v])].weight) {
      best[v] = static_cast<int>(i);
    }
  }
  for (int v = 0; v < n; ++v) {
    if (v != root && best[v] < 0) return std::nullopt;  // Unreachable.
  }

  // 2. Detect cycles in the functional graph v -> src(best[v]).
  // color: 0 = unvisited, 1 = on current path, 2 = finished.
  std::vector<int> color(static_cast<size_t>(n), 0);
  std::vector<int> cycle_id(static_cast<size_t>(n), -1);
  int num_cycles = 0;
  for (int start = 0; start < n; ++start) {
    if (color[start] != 0) continue;
    int v = start;
    std::vector<int> path;
    while (v != root && color[v] == 0) {
      color[v] = 1;
      path.push_back(v);
      v = arcs[size_t(best[v])].src;
    }
    if (v != root && color[v] == 1) {
      // Found a new cycle: the path suffix starting at v.
      int c = num_cycles++;
      size_t pos = 0;
      while (path[pos] != v) ++pos;
      for (size_t k = pos; k < path.size(); ++k) cycle_id[path[k]] = c;
    }
    for (int u : path) color[u] = 2;
  }

  if (num_cycles == 0) {
    std::vector<int> result;
    result.reserve(static_cast<size_t>(n) - 1);
    for (int v = 0; v < n; ++v) {
      if (v != root) result.push_back(best[v]);
    }
    return result;
  }

  // 3. Contract each cycle to a super-vertex.
  std::vector<int> comp(static_cast<size_t>(n), -1);
  int next = num_cycles;  // Cycle c maps to component c.
  for (int v = 0; v < n; ++v) {
    comp[v] = cycle_id[v] >= 0 ? cycle_id[v] : next++;
  }
  int n_contracted = next;

  std::vector<Arc> sub_arcs;
  std::vector<int> parent_arc;  // sub arc index -> this-level arc index.
  sub_arcs.reserve(arcs.size());
  parent_arc.reserve(arcs.size());
  for (size_t i = 0; i < arcs.size(); ++i) {
    const Arc& a = arcs[i];
    if (a.src == a.dst || a.dst == root) continue;
    int nu = comp[a.src];
    int nv = comp[a.dst];
    if (nu == nv) continue;  // Internal to a contracted component.
    double w = a.weight;
    if (cycle_id[a.dst] >= 0) {
      // Entering a cycle: pay the difference against the cycle's own in-arc
      // at the entry vertex (the cycle arc it would displace).
      w -= arcs[size_t(best[a.dst])].weight;
    }
    sub_arcs.push_back(Arc{nu, nv, w});
    parent_arc.push_back(static_cast<int>(i));
  }

  auto sub = SolveRecursive(n_contracted, sub_arcs, comp[root]);
  if (!sub.has_value()) return std::nullopt;

  // 4. Expand: chosen sub-arcs map back; each cycle keeps all its internal
  // best-arcs except the one displaced at the entry vertex.
  std::vector<int> result;
  result.reserve(static_cast<size_t>(n) - 1);
  std::vector<char> is_entry_head(static_cast<size_t>(n), 0);
  for (int si : *sub) {
    int ai = parent_arc[size_t(si)];
    result.push_back(ai);
    is_entry_head[arcs[size_t(ai)].dst] = 1;
  }
  for (int v = 0; v < n; ++v) {
    if (v == root) continue;
    if (cycle_id[v] >= 0 && !is_entry_head[v]) result.push_back(best[v]);
  }
  return result;
}

}  // namespace

EdmondsWorkspace::Level& EdmondsWorkspace::level(size_t l) {
  if (levels_.size() <= l) levels_.resize(l + 1);
  return levels_[l];
}

bool EdmondsWorkspace::Solve(int num_vertices, const std::vector<Arc>& arcs,
                             int root, const int* arc_edge,
                             const char* edge_mask) {
  // invariant: the solver passes a root it constructed in range.
  AUTOBI_CHECK(root >= 0 && root < num_vertices);
  selected_.clear();
  if (num_vertices == 1) return true;

  // Level 0 optionally reads arcs through the edge mask; contracted levels
  // are already filtered.
  const bool use_mask = arc_edge != nullptr && edge_mask != nullptr;
  auto level0_skips = [&](size_t i) {
    return use_mask && arc_edge[i] >= 0 && edge_mask[arc_edge[i]] == 0;
  };

  level(0).n = num_vertices;
  level(0).root = root;

  // --- Descend: per level, pick cheapest in-arcs, detect cycles, contract.
  size_t depth = 0;
  for (;;) {
    Level& L = levels_[depth];
    const std::vector<Arc>& larcs = depth == 0 ? arcs : L.arcs;
    const bool masked_level = depth == 0 && use_mask;
    const int n = L.n;
    const int lroot = L.root;

    L.best.assign(size_t(n), -1);
    for (size_t i = 0; i < larcs.size(); ++i) {
      if (masked_level && level0_skips(i)) continue;
      const Arc& a = larcs[i];
      if (a.src == a.dst || a.dst == lroot) continue;
      int v = a.dst;
      if (L.best[v] < 0 || a.weight < larcs[size_t(L.best[v])].weight) {
        L.best[v] = static_cast<int>(i);
      }
    }
    for (int v = 0; v < n; ++v) {
      if (v != lroot && L.best[v] < 0) return false;  // Unreachable.
    }

    // Cycles of the functional graph v -> src(best[v]).
    // color: 0 = unvisited, 1 = on current path, 2 = finished.
    L.color.assign(size_t(n), 0);
    L.cycle_id.assign(size_t(n), -1);
    L.num_cycles = 0;
    for (int start = 0; start < n; ++start) {
      if (L.color[start] != 0) continue;
      int v = start;
      path_.clear();
      while (v != lroot && L.color[v] == 0) {
        L.color[v] = 1;
        path_.push_back(v);
        v = larcs[size_t(L.best[v])].src;
      }
      if (v != lroot && L.color[v] == 1) {
        int c = L.num_cycles++;
        size_t pos = 0;
        while (path_[pos] != v) ++pos;
        for (size_t k = pos; k < path_.size(); ++k) L.cycle_id[path_[k]] = c;
      }
      for (int u : path_) L.color[u] = 2;
    }
    if (L.num_cycles == 0) break;

    // Contract each cycle to a super-vertex; cycle c becomes component c.
    L.comp.assign(size_t(n), -1);
    int next = L.num_cycles;
    for (int v = 0; v < n; ++v) {
      L.comp[v] = L.cycle_id[v] >= 0 ? L.cycle_id[v] : next++;
    }

    level(depth + 1);  // Ensure existence before taking references.
    Level& parent = levels_[depth];
    Level& sub = levels_[depth + 1];
    const std::vector<Arc>& parcs = depth == 0 ? arcs : parent.arcs;
    sub.n = next;
    sub.root = parent.comp[lroot];
    sub.arcs.clear();
    sub.parent_arc.clear();
    for (size_t i = 0; i < parcs.size(); ++i) {
      if (masked_level && level0_skips(i)) continue;
      const Arc& a = parcs[i];
      if (a.src == a.dst || a.dst == lroot) continue;
      int nu = parent.comp[a.src];
      int nv = parent.comp[a.dst];
      if (nu == nv) continue;  // Internal to a contracted component.
      double w = a.weight;
      if (parent.cycle_id[a.dst] >= 0) {
        // Entering a cycle: pay the difference against the cycle's own
        // in-arc at the entry vertex (the cycle arc it would displace).
        w -= parcs[size_t(parent.best[a.dst])].weight;
      }
      sub.arcs.push_back(Arc{nu, nv, w});
      sub.parent_arc.push_back(static_cast<int>(i));
    }
    ++depth;
  }

  // --- Base: the acyclic level's best in-arcs are its solution.
  {
    const Level& base = levels_[depth];
    sel_a_.clear();
    for (int v = 0; v < base.n; ++v) {
      if (v != base.root) sel_a_.push_back(base.best[v]);
    }
  }

  // --- Unwind: map each level's selection through parent_arc; every cycle
  // keeps its internal best-arcs except the one displaced at the entry.
  std::vector<int>* cur = &sel_a_;
  std::vector<int>* prev = &sel_b_;
  for (size_t j = depth; j >= 1; --j) {
    Level& sub = levels_[j];
    Level& parent = levels_[j - 1];
    const std::vector<Arc>& parcs = (j - 1 == 0) ? arcs : parent.arcs;
    prev->clear();
    parent.is_entry.assign(size_t(parent.n), 0);
    for (int si : *cur) {
      int ai = sub.parent_arc[size_t(si)];
      prev->push_back(ai);
      parent.is_entry[parcs[size_t(ai)].dst] = 1;
    }
    for (int v = 0; v < parent.n; ++v) {
      if (v == parent.root) continue;
      if (parent.cycle_id[v] >= 0 && !parent.is_entry[v]) {
        prev->push_back(parent.best[v]);
      }
    }
    std::swap(cur, prev);
  }
  selected_.swap(*cur);
  return true;
}

std::optional<std::vector<int>> SolveMinCostArborescence(
    int num_vertices, const std::vector<Arc>& arcs, int root) {
  static thread_local EdmondsWorkspace workspace;
  if (!workspace.Solve(num_vertices, arcs, root)) return std::nullopt;
  return workspace.selected();
}

std::optional<std::vector<int>> SolveMinCostArborescenceLegacy(
    int num_vertices, const std::vector<Arc>& arcs, int root) {
  // invariant: the solver passes a root it constructed in range.
  AUTOBI_CHECK(root >= 0 && root < num_vertices);
  if (num_vertices == 1) return std::vector<int>{};
  return SolveRecursive(num_vertices, arcs, root);
}

double ArcSetWeight(const std::vector<Arc>& arcs,
                    const std::vector<int>& selected) {
  double sum = 0.0;
  for (int i : selected) sum += arcs[size_t(i)].weight;
  return sum;
}

}  // namespace autobi
