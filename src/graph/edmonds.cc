#include "graph/edmonds.h"

#include <algorithm>

#include "common/check.h"

namespace autobi {

namespace {

// One recursion level of the contraction algorithm. `arcs` are this level's
// arcs; returns indices into `arcs`.
std::optional<std::vector<int>> Solve(int n, const std::vector<Arc>& arcs,
                                      int root) {
  // 1. Cheapest incoming arc for every non-root vertex.
  std::vector<int> best(static_cast<size_t>(n), -1);
  for (size_t i = 0; i < arcs.size(); ++i) {
    const Arc& a = arcs[i];
    if (a.src == a.dst || a.dst == root) continue;
    int v = a.dst;
    if (best[v] < 0 || a.weight < arcs[size_t(best[v])].weight) {
      best[v] = static_cast<int>(i);
    }
  }
  for (int v = 0; v < n; ++v) {
    if (v != root && best[v] < 0) return std::nullopt;  // Unreachable.
  }

  // 2. Detect cycles in the functional graph v -> src(best[v]).
  // color: 0 = unvisited, 1 = on current path, 2 = finished.
  std::vector<int> color(static_cast<size_t>(n), 0);
  std::vector<int> cycle_id(static_cast<size_t>(n), -1);
  int num_cycles = 0;
  for (int start = 0; start < n; ++start) {
    if (color[start] != 0) continue;
    int v = start;
    std::vector<int> path;
    while (v != root && color[v] == 0) {
      color[v] = 1;
      path.push_back(v);
      v = arcs[size_t(best[v])].src;
    }
    if (v != root && color[v] == 1) {
      // Found a new cycle: the path suffix starting at v.
      int c = num_cycles++;
      size_t pos = 0;
      while (path[pos] != v) ++pos;
      for (size_t k = pos; k < path.size(); ++k) cycle_id[path[k]] = c;
    }
    for (int u : path) color[u] = 2;
  }

  if (num_cycles == 0) {
    std::vector<int> result;
    result.reserve(static_cast<size_t>(n) - 1);
    for (int v = 0; v < n; ++v) {
      if (v != root) result.push_back(best[v]);
    }
    return result;
  }

  // 3. Contract each cycle to a super-vertex.
  std::vector<int> comp(static_cast<size_t>(n), -1);
  int next = num_cycles;  // Cycle c maps to component c.
  for (int v = 0; v < n; ++v) {
    comp[v] = cycle_id[v] >= 0 ? cycle_id[v] : next++;
  }
  int n_contracted = next;

  std::vector<Arc> sub_arcs;
  std::vector<int> parent_arc;  // sub arc index -> this-level arc index.
  sub_arcs.reserve(arcs.size());
  parent_arc.reserve(arcs.size());
  for (size_t i = 0; i < arcs.size(); ++i) {
    const Arc& a = arcs[i];
    if (a.src == a.dst || a.dst == root) continue;
    int nu = comp[a.src];
    int nv = comp[a.dst];
    if (nu == nv) continue;  // Internal to a contracted component.
    double w = a.weight;
    if (cycle_id[a.dst] >= 0) {
      // Entering a cycle: pay the difference against the cycle's own in-arc
      // at the entry vertex (the cycle arc it would displace).
      w -= arcs[size_t(best[a.dst])].weight;
    }
    sub_arcs.push_back(Arc{nu, nv, w});
    parent_arc.push_back(static_cast<int>(i));
  }

  auto sub = Solve(n_contracted, sub_arcs, comp[root]);
  if (!sub.has_value()) return std::nullopt;

  // 4. Expand: chosen sub-arcs map back; each cycle keeps all its internal
  // best-arcs except the one displaced at the entry vertex.
  std::vector<int> result;
  result.reserve(static_cast<size_t>(n) - 1);
  std::vector<char> is_entry_head(static_cast<size_t>(n), 0);
  for (int si : *sub) {
    int ai = parent_arc[size_t(si)];
    result.push_back(ai);
    is_entry_head[arcs[size_t(ai)].dst] = 1;
  }
  for (int v = 0; v < n; ++v) {
    if (v == root) continue;
    if (cycle_id[v] >= 0 && !is_entry_head[v]) result.push_back(best[v]);
  }
  return result;
}

}  // namespace

std::optional<std::vector<int>> SolveMinCostArborescence(
    int num_vertices, const std::vector<Arc>& arcs, int root) {
  AUTOBI_CHECK(root >= 0 && root < num_vertices);
  if (num_vertices == 1) return std::vector<int>{};
  return Solve(num_vertices, arcs, root);
}

double ArcSetWeight(const std::vector<Arc>& arcs,
                    const std::vector<int>& selected) {
  double sum = 0.0;
  for (int i : selected) sum += arcs[size_t(i)].weight;
  return sum;
}

}  // namespace autobi
