#include "graph/validate.h"

#include <cstddef>
#include <numeric>

using std::size_t;

namespace autobi {

namespace {

// Union-find over vertex ids.
class DisjointSet {
 public:
  explicit DisjointSet(int n) : parent_(static_cast<size_t>(n)) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int Find(int x) {
    while (parent_[size_t(x)] != x) {
      parent_[size_t(x)] = parent_[size_t(parent_[size_t(x)])];
      x = parent_[size_t(x)];
    }
    return x;
  }
  bool Union(int a, int b) {
    int ra = Find(a);
    int rb = Find(b);
    if (ra == rb) return false;
    parent_[size_t(ra)] = rb;
    return true;
  }

 private:
  std::vector<int> parent_;
};

}  // namespace

bool HasDirectedCycle(int num_vertices,
                      const std::vector<std::pair<int, int>>& arcs) {
  std::vector<std::vector<int>> adj(static_cast<size_t>(num_vertices));
  for (const auto& [u, v] : arcs) adj[size_t(u)].push_back(v);
  // Iterative DFS with colors: 0 unvisited, 1 on stack, 2 done.
  std::vector<int> color(static_cast<size_t>(num_vertices), 0);
  std::vector<std::pair<int, size_t>> stack;
  for (int s = 0; s < num_vertices; ++s) {
    if (color[size_t(s)] != 0) continue;
    stack.emplace_back(s, 0);
    color[size_t(s)] = 1;
    while (!stack.empty()) {
      auto& [v, next] = stack.back();
      if (next < adj[size_t(v)].size()) {
        int w = adj[size_t(v)][next++];
        if (color[size_t(w)] == 1) return true;
        if (color[size_t(w)] == 0) {
          color[size_t(w)] = 1;
          stack.emplace_back(w, 0);
        }
      } else {
        color[size_t(v)] = 2;
        stack.pop_back();
      }
    }
  }
  return false;
}

bool IsKArborescence(int num_vertices,
                     const std::vector<std::pair<int, int>>& arcs,
                     int* k_out) {
  std::vector<int> in_degree(static_cast<size_t>(num_vertices), 0);
  for (const auto& [u, v] : arcs) {
    (void)u;
    if (++in_degree[size_t(v)] > 1) return false;
  }
  if (HasDirectedCycle(num_vertices, arcs)) return false;
  if (k_out != nullptr) *k_out = CountWeakComponents(num_vertices, arcs);
  return true;
}

bool IsSpanningArborescence(int num_vertices,
                            const std::vector<std::pair<int, int>>& arcs,
                            int root) {
  int k = 0;
  if (!IsKArborescence(num_vertices, arcs, &k)) return false;
  if (k != 1) return false;
  // Unique in-degree-0 vertex must be the root.
  std::vector<int> in_degree(static_cast<size_t>(num_vertices), 0);
  for (const auto& [u, v] : arcs) {
    (void)u;
    ++in_degree[size_t(v)];
  }
  return in_degree[size_t(root)] == 0;
}

int CountWeakComponents(int num_vertices,
                        const std::vector<std::pair<int, int>>& arcs) {
  DisjointSet ds(num_vertices);
  int components = num_vertices;
  for (const auto& [u, v] : arcs) {
    if (ds.Union(u, v)) --components;
  }
  return components;
}

}  // namespace autobi
