#ifndef AUTOBI_GRAPH_KMCA_CC_H_
#define AUTOBI_GRAPH_KMCA_CC_H_

#include <vector>

#include "graph/join_graph.h"
#include "graph/kmca.h"

namespace autobi {

// Fixed number of relaxations solved per branch-and-bound wave. Being a
// constant — rather than a function of the thread count — keeps the explored
// search tree, the result, and every KmcaCcStats counter bit-identical at
// any AUTOBI_THREADS setting; it also caps the useful parallelism of a
// single SolveKmcaCc call (8-way scaling needs >= 8 open subtrees, which
// only conflict-dense instances produce).
inline constexpr int kKmcaCcWaveBatch = 16;

struct KmcaCcOptions {
  // Virtual-edge penalty p (Equation 14); defaults to -log(0.5).
  double penalty_weight = DefaultPenaltyWeight();
  // Disables the FK-once constraint (ablation "no-FK-once-constraint",
  // Figure 8) — the solve then degenerates to plain k-MCA.
  bool enforce_fk_once = true;
  // Safety valve on branch-and-bound search; the optimum is still
  // returned for every case in our benchmarks (real conflict sets are
  // sparse), this only guards against adversarial inputs. When the budget
  // is exhausted before any feasible leaf is reached, the solver returns a
  // greedy feasible fallback (the k-MCA relaxation thinned to one edge per
  // conflict group) rather than an infeasible result; `budget_exhausted`
  // reports that the answer may be suboptimal either way.
  long max_one_mca_calls = 2'000'000;
  // Worker threads for the wave-parallel search: 0 inherits AUTOBI_THREADS /
  // hardware via ResolveThreads. Purely an execution knob — results and
  // stats are bit-identical at any value.
  int threads = 0;
};

struct KmcaCcStats {
  // Number of 1-MCA (Chu-Liu/Edmonds) invocations — the Figure 7 metric.
  long one_mca_calls = 0;
  // Branch-and-bound subproblems whose relaxation was solved.
  long nodes = 0;
  // Subproblems cut by the bound (Line 4 of Algorithm 3), before or after
  // solving their relaxation.
  long pruned = 0;
  // Children skipped because an identical masked subproblem was already
  // created elsewhere in the tree (canonical-signature memoization).
  long memo_hits = 0;
  // Best-first waves executed (each solves <= kKmcaCcWaveBatch relaxations
  // in parallel).
  long waves = 0;
  // True if max_one_mca_calls was hit (result may then be suboptimal).
  bool budget_exhausted = false;
};

// Algorithm 3: solves k-MCA-CC (k-MCA + the FK-once cardinality constraint,
// Equations 14-16) optimally via branch-and-bound over conflicting edge
// sets. NP-hard and Exp-APX-complete in general (Theorem 3), efficient on
// real schema graphs where few candidate edges share a source column.
//
// This implementation runs the search best-first in fixed-size waves: open
// subproblems are ordered by (lower bound, creation order), each wave solves
// up to kKmcaCcWaveBatch relaxations in parallel over one shared augmented
// arc instance (per-slot EdmondsWorkspace arenas, zero steady-state
// allocation per node), and all bound/branch/incumbent decisions happen
// serially between waves. Equal-cost optima are resolved by the
// deterministic incumbent-merge rule: the lexicographically smallest
// (cost, edge_ids) among explored feasible leaves wins. Identical masked
// subproblems reached via different branch orders are deduplicated by their
// canonical signature (the sorted set of masked-out edge ids). See
// ARCHITECTURE.md, "Fast k-MCA-CC".
KmcaResult SolveKmcaCc(const JoinGraph& graph,
                       const KmcaCcOptions& options = {},
                       KmcaCcStats* stats = nullptr);

// The original serial depth-first branch-and-bound, re-materializing the
// augmented arc array at every node. Kept verbatim as a differential oracle
// (an exact reference without the 2^m edge cap of brute_force.cc) and as the
// "before" column of bench_fig6_kmcacc. `options.threads` is ignored;
// `stats->memo_hits`/`waves` stay 0.
KmcaResult SolveKmcaCcLegacy(const JoinGraph& graph,
                             const KmcaCcOptions& options = {},
                             KmcaCcStats* stats = nullptr);

// True if the edge set satisfies FK-once (Equation 16): no two selected
// edges share the same source column set.
bool SatisfiesFkOnce(const JoinGraph& graph, const std::vector<int>& edge_ids);

// --- Counterfactual cost estimators for Figure 7. Both return the *count of
// 1-MCA invocations* the unoptimized algorithms would need (computed
// analytically; actually running them would time out, as the paper notes).

// Brute-force k-MCA without the artificial-root reduction: one 1-MCA call
// per block of every set partition of the vertices, i.e.
// sum over k of S(n,k) * k (Stirling numbers of the second kind).
double EstimateBruteForceKmcaCalls(int num_vertices);

// k-MCA-CC without branch-and-bound pruning: exhaustive enumeration of one
// edge per conflict group — the product of conflict-group sizes over all
// FK-once groups with >= 2 candidate edges.
double EstimateUnprunedBranchCalls(const JoinGraph& graph);

}  // namespace autobi

#endif  // AUTOBI_GRAPH_KMCA_CC_H_
