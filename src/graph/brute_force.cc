#include "graph/brute_force.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "graph/kmca_cc.h"
#include "graph/validate.h"

namespace autobi {

std::optional<std::vector<int>> BruteForceMinArborescence(
    int num_vertices, const std::vector<Arc>& arcs, int root) {
  // Collect candidate in-arcs per non-root vertex.
  std::vector<std::vector<int>> in_arcs(static_cast<size_t>(num_vertices));
  for (size_t i = 0; i < arcs.size(); ++i) {
    const Arc& a = arcs[i];
    if (a.src == a.dst || a.dst == root) continue;
    in_arcs[size_t(a.dst)].push_back(static_cast<int>(i));
  }
  std::vector<int> targets;
  for (int v = 0; v < num_vertices; ++v) {
    if (v == root) continue;
    if (in_arcs[size_t(v)].empty()) return std::nullopt;
    targets.push_back(v);
  }

  std::optional<std::vector<int>> best;
  double best_weight = std::numeric_limits<double>::infinity();
  std::vector<size_t> choice(targets.size(), 0);
  for (;;) {
    std::vector<int> selection;
    std::vector<std::pair<int, int>> pairs;
    for (size_t t = 0; t < targets.size(); ++t) {
      int ai = in_arcs[size_t(targets[t])][choice[t]];
      selection.push_back(ai);
      pairs.emplace_back(arcs[size_t(ai)].src, arcs[size_t(ai)].dst);
    }
    if (IsSpanningArborescence(num_vertices, pairs, root)) {
      double w = ArcSetWeight(arcs, selection);
      if (w < best_weight) {
        best_weight = w;
        best = selection;
      }
    }
    // Odometer increment.
    size_t t = 0;
    while (t < targets.size()) {
      if (++choice[t] < in_arcs[size_t(targets[t])].size()) break;
      choice[t] = 0;
      ++t;
    }
    if (t == targets.size()) break;
  }
  return best;
}

namespace {

KmcaResult BruteForceSubsets(const JoinGraph& graph, double penalty_weight,
                             bool enforce_fk_once) {
  size_t m = graph.num_edges();
  // invariant: callers gate on the brute-force size limit before calling.
  AUTOBI_CHECK_MSG(m <= 22, "brute force limited to 22 edges");
  int n = graph.num_vertices();
  KmcaResult best;
  best.cost = std::numeric_limits<double>::infinity();
  // Hoisted out of the 2^m loop (the fuzzer runs thousands of these), with
  // an inline in-degree pre-filter: most random subsets die on in-degree
  // before the cycle check, so skip the IsKArborescence allocations early.
  std::vector<int> ids;
  std::vector<std::pair<int, int>> pairs;
  std::vector<int> in_degree(static_cast<size_t>(n), 0);
  for (uint64_t bits = 0; bits < (1ULL << m); ++bits) {
    ids.clear();
    pairs.clear();
    std::fill(in_degree.begin(), in_degree.end(), 0);
    bool in_degree_ok = true;
    for (size_t i = 0; i < m; ++i) {
      if (bits & (1ULL << i)) {
        const JoinEdge& e = graph.edge(static_cast<int>(i));
        if (++in_degree[static_cast<size_t>(e.dst)] > 1) {
          in_degree_ok = false;
          break;
        }
        ids.push_back(static_cast<int>(i));
        pairs.emplace_back(e.src, e.dst);
      }
    }
    if (!in_degree_ok) continue;
    if (!IsKArborescence(graph.num_vertices(), pairs)) continue;
    if (enforce_fk_once && !SatisfiesFkOnce(graph, ids)) continue;
    double cost = KArborescenceCost(graph, ids, penalty_weight);
    if (cost < best.cost) {
      best.cost = cost;
      best.edge_ids = ids;
      best.k = graph.num_vertices() - static_cast<int>(ids.size());
      best.feasible = true;
    }
  }
  return best;
}

}  // namespace

KmcaResult BruteForceKmca(const JoinGraph& graph, double penalty_weight) {
  return BruteForceSubsets(graph, penalty_weight, /*enforce_fk_once=*/false);
}

KmcaResult BruteForceKmcaCc(const JoinGraph& graph, double penalty_weight) {
  return BruteForceSubsets(graph, penalty_weight, /*enforce_fk_once=*/true);
}

}  // namespace autobi
