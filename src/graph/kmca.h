#ifndef AUTOBI_GRAPH_KMCA_H_
#define AUTOBI_GRAPH_KMCA_H_

#include <cmath>
#include <vector>

#include "graph/join_graph.h"

namespace autobi {

// The paper's default virtual-edge penalty p = -log(0.5): a virtual edge is a
// coin-toss join (Section 4.3.2).
inline double DefaultPenaltyWeight() { return -std::log(0.5); }

struct KmcaResult {
  // Ids of selected JoinGraph edges (the k-arborescence J*).
  std::vector<int> edge_ids;
  // Objective value: sum of edge weights + (k-1) * p (Equation 8).
  double cost = 0.0;
  // Number of arborescences (connected components).
  int k = 0;
  bool feasible = false;
};

// Objective value of an edge set under Equation 8 (cost of the induced
// k-arborescence; k is derived as |V| - |J|).
double KArborescenceCost(const JoinGraph& graph,
                         const std::vector<int>& edge_ids,
                         double penalty_weight);

// Algorithm 2: solves k-MCA optimally by adding an artificial root with
// penalty-weight edges to every vertex, solving one 1-MCA instance, and
// stripping the artificial edges. Polynomial time (Theorem 2).
//
// `mask`: optional per-edge availability (used by the branch-and-bound of
// k-MCA-CC); empty means all edges available. `one_mca_calls`, if non-null,
// is incremented by the number of Chu-Liu/Edmonds invocations (one here) —
// the counter reported in Figure 7.
KmcaResult SolveKmca(const JoinGraph& graph, double penalty_weight,
                     const std::vector<char>& mask = {},
                     long* one_mca_calls = nullptr);

}  // namespace autobi

#endif  // AUTOBI_GRAPH_KMCA_H_
