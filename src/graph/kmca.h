#ifndef AUTOBI_GRAPH_KMCA_H_
#define AUTOBI_GRAPH_KMCA_H_

#include <cmath>
#include <vector>

#include "graph/edmonds.h"
#include "graph/join_graph.h"

namespace autobi {

// The paper's default virtual-edge penalty p = -log(0.5): a virtual edge is a
// coin-toss join (Section 4.3.2).
inline double DefaultPenaltyWeight() { return -std::log(0.5); }

struct KmcaResult {
  // Ids of selected JoinGraph edges (the k-arborescence J*).
  std::vector<int> edge_ids;
  // Objective value: sum of edge weights + (k-1) * p (Equation 8).
  double cost = 0.0;
  // Number of arborescences (connected components).
  int k = 0;
  bool feasible = false;
};

// Objective value of an edge set under Equation 8 (cost of the induced
// k-arborescence; k is derived as |V| - |J|).
double KArborescenceCost(const JoinGraph& graph,
                         const std::vector<int>& edge_ids,
                         double penalty_weight);

// The augmented 1-MCA instance G' = (V + {r}, E + {r->v}) of Algorithm 2,
// materialized once per (graph, penalty): real edges in id order followed by
// one artificial root->v arc per vertex. `arc_to_edge[i]` maps arc i back to
// its JoinGraph edge id (-1 for artificial arcs). The branch-and-bound of
// k-MCA-CC builds this once per SolveKmcaCc call and shares it read-only
// across every search node; per-node availability is expressed as an edge
// mask applied by EdmondsWorkspace at scan time, so no node ever copies or
// filters the arc array.
struct KmcaInstance {
  int num_vertices = 0;
  int artificial_root = 0;
  std::vector<Arc> arcs;
  std::vector<int> arc_to_edge;
};

KmcaInstance BuildKmcaInstance(const JoinGraph& graph, double penalty_weight);

// Solves k-MCA over a prebuilt augmented instance. `edge_mask` is indexed by
// edge id (nullptr = every edge available); artificial arcs are always
// available. Scratch lives in `workspace` and `out`'s buffers are reused, so
// repeated solves perform no heap allocation in the steady state. Results
// are identical to SolveKmca on the equivalently masked graph.
void SolveKmcaOverInstance(const JoinGraph& graph, const KmcaInstance& inst,
                           const char* edge_mask, double penalty_weight,
                           EdmondsWorkspace& workspace, KmcaResult* out);

// Algorithm 2: solves k-MCA optimally by adding an artificial root with
// penalty-weight edges to every vertex, solving one 1-MCA instance, and
// stripping the artificial edges. Polynomial time (Theorem 2).
//
// `mask`: optional per-edge availability (used by the branch-and-bound of
// k-MCA-CC); empty means all edges available. `one_mca_calls`, if non-null,
// is incremented by the number of Chu-Liu/Edmonds invocations (one here) —
// the counter reported in Figure 7.
KmcaResult SolveKmca(const JoinGraph& graph, double penalty_weight,
                     const std::vector<char>& mask = {},
                     long* one_mca_calls = nullptr);

}  // namespace autobi

#endif  // AUTOBI_GRAPH_KMCA_H_
