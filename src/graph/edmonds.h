#ifndef AUTOBI_GRAPH_EDMONDS_H_
#define AUTOBI_GRAPH_EDMONDS_H_

#include <optional>
#include <vector>

namespace autobi {

// A directed arc for the arborescence solvers.
struct Arc {
  int src = -1;
  int dst = -1;
  double weight = 0.0;
};

// Chu-Liu/Edmonds' algorithm for the Minimum-Cost Arborescence problem
// (1-MCA, Table 1): given a digraph on `num_vertices` vertices and a root,
// find the minimum-weight set of arcs such that every vertex other than the
// root has in-degree exactly 1 and all vertices are reachable from the root.
//
// Returns the indices (into `arcs`) of the selected arcs, or nullopt when no
// spanning arborescence rooted at `root` exists. Multi-arcs are allowed;
// self-loops and arcs into the root are ignored. O(V * E).
std::optional<std::vector<int>> SolveMinCostArborescence(
    int num_vertices, const std::vector<Arc>& arcs, int root);

// Sum of the weights of `selected` arcs.
double ArcSetWeight(const std::vector<Arc>& arcs,
                    const std::vector<int>& selected);

}  // namespace autobi

#endif  // AUTOBI_GRAPH_EDMONDS_H_
