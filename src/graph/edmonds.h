#ifndef AUTOBI_GRAPH_EDMONDS_H_
#define AUTOBI_GRAPH_EDMONDS_H_

#include <optional>
#include <vector>

namespace autobi {

// A directed arc for the arborescence solvers.
struct Arc {
  int src = -1;
  int dst = -1;
  double weight = 0.0;
};

// Reusable scratch arena for Chu-Liu/Edmonds (1-MCA). The contraction
// algorithm is iterative: each contraction level owns its per-vertex arrays
// (cheapest in-arc, cycle ids, component map) and its contracted arc buffer,
// all held by the workspace and reused across solves. After the first few
// solves every vector has reached its high-water capacity and a solve
// performs no heap allocation — the property the k-MCA-CC branch-and-bound
// relies on when it runs one workspace per worker slot (see
// ARCHITECTURE.md, "Fast k-MCA-CC").
//
// The optional (arc_edge, edge_mask) pair turns the level-0 arc array into a
// masked view: arc i participates only when arc_edge[i] < 0 (always-on arcs,
// e.g. the k-MCA artificial-root arcs) or edge_mask[arc_edge[i]] != 0. This
// lets every branch-and-bound node solve over one shared augmented arc array
// instead of re-materializing a filtered copy per node.
//
// Tie-breaks are identical to the legacy recursive implementation (first
// strictly-cheaper arc in index order wins), so the selected arc set — and
// its order — is bit-identical to SolveMinCostArborescenceLegacy.
class EdmondsWorkspace {
 public:
  // Solves 1-MCA rooted at `root` over the (optionally masked) arc view.
  // Returns false when some vertex is unreachable from the root; on success
  // selected() holds the chosen indices into `arcs`.
  bool Solve(int num_vertices, const std::vector<Arc>& arcs, int root,
             const int* arc_edge = nullptr, const char* edge_mask = nullptr);

  // Arc indices chosen by the last successful Solve.
  const std::vector<int>& selected() const { return selected_; }

 private:
  // Scratch for one contraction level. Level 0 reads the caller's arcs;
  // level l >= 1 reads `arcs`, built by contracting level l-1.
  struct Level {
    int n = 0;
    int root = 0;
    int num_cycles = 0;
    std::vector<int> best;      // vertex -> cheapest in-arc (this level).
    std::vector<int> color;     // cycle-detection DFS state.
    std::vector<int> cycle_id;  // vertex -> cycle index or -1.
    std::vector<int> comp;      // vertex -> next-level component.
    std::vector<char> is_entry;
    std::vector<Arc> arcs;        // This level's arcs (unused at level 0).
    std::vector<int> parent_arc;  // This level's arc -> previous level's arc.
  };

  Level& level(size_t l);

  std::vector<Level> levels_;
  std::vector<int> path_;  // Shared cycle-detection path scratch.
  std::vector<int> sel_a_;
  std::vector<int> sel_b_;
  std::vector<int> selected_;
};

// Chu-Liu/Edmonds' algorithm for the Minimum-Cost Arborescence problem
// (1-MCA, Table 1): given a digraph on `num_vertices` vertices and a root,
// find the minimum-weight set of arcs such that every vertex other than the
// root has in-degree exactly 1 and all vertices are reachable from the root.
//
// Returns the indices (into `arcs`) of the selected arcs, or nullopt when no
// spanning arborescence rooted at `root` exists. Multi-arcs are allowed;
// self-loops and arcs into the root are ignored. O(V * E).
//
// Convenience wrapper over EdmondsWorkspace (one thread-local workspace per
// calling thread); hot paths should own a workspace instead.
std::optional<std::vector<int>> SolveMinCostArborescence(
    int num_vertices, const std::vector<Arc>& arcs, int root);

// The original recursive, allocating implementation, kept verbatim as a
// differential reference for the workspace rewrite (tests compare the two
// arc-for-arc on the checked-in fuzz corpus). Not for production use.
std::optional<std::vector<int>> SolveMinCostArborescenceLegacy(
    int num_vertices, const std::vector<Arc>& arcs, int root);

// Sum of the weights of `selected` arcs.
double ArcSetWeight(const std::vector<Arc>& arcs,
                    const std::vector<int>& selected);

}  // namespace autobi

#endif  // AUTOBI_GRAPH_EDMONDS_H_
