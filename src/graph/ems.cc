#include "graph/ems.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/check.h"
#include "graph/validate.h"

namespace autobi {

namespace {

// Feasibility of S ∪ J* under the EMS constraints.
bool EmsFeasible(const JoinGraph& graph, const std::vector<int>& backbone,
                 const std::vector<int>& extra) {
  std::set<int> source_keys;
  std::set<int> pair_ids;
  std::vector<std::pair<int, int>> arcs;
  auto add = [&](int id) {
    const JoinEdge& e = graph.edge(id);
    if (!source_keys.insert(e.source_key).second) return false;
    if (e.pair_id >= 0 && !pair_ids.insert(e.pair_id).second) return false;
    arcs.emplace_back(e.src, e.dst);
    return true;
  };
  for (int id : backbone) {
    if (!add(id)) return false;
  }
  for (int id : extra) {
    if (!add(id)) return false;
  }
  return !HasDirectedCycle(graph.num_vertices(), arcs);
}

}  // namespace

std::vector<int> SolveEmsGreedy(const JoinGraph& graph,
                                const std::vector<int>& backbone,
                                const EmsOptions& options) {
  std::set<int> in_backbone(backbone.begin(), backbone.end());
  std::set<int> used_source_keys;
  std::set<int> used_pair_ids;
  std::vector<std::pair<int, int>> arcs;  // Current S ∪ J* arc set.
  for (int id : backbone) {
    const JoinEdge& e = graph.edge(id);
    used_source_keys.insert(e.source_key);
    if (e.pair_id >= 0) used_pair_ids.insert(e.pair_id);
    arcs.emplace_back(e.src, e.dst);
  }

  // Remaining promising edges R, most confident first (ties: smaller id for
  // determinism).
  std::vector<int> candidates;
  for (const JoinEdge& e : graph.edges()) {
    if (in_backbone.count(e.id)) continue;
    if (e.probability < options.tau) continue;
    candidates.push_back(e.id);
  }
  std::sort(candidates.begin(), candidates.end(), [&](int a, int b) {
    double pa = graph.edge(a).probability;
    double pb = graph.edge(b).probability;
    if (pa != pb) return pa > pb;
    return a < b;
  });

  std::vector<int> selected;
  for (int id : candidates) {
    const JoinEdge& e = graph.edge(id);
    if (used_source_keys.count(e.source_key)) continue;      // FK-once.
    if (e.pair_id >= 0 && used_pair_ids.count(e.pair_id)) continue;
    arcs.emplace_back(e.src, e.dst);
    if (HasDirectedCycle(graph.num_vertices(), arcs)) {      // Equation 19.
      arcs.pop_back();
      continue;
    }
    selected.push_back(id);
    used_source_keys.insert(e.source_key);
    if (e.pair_id >= 0) used_pair_ids.insert(e.pair_id);
  }
  return selected;
}

std::vector<int> SolveEmsExact(const JoinGraph& graph,
                               const std::vector<int>& backbone,
                               const EmsOptions& options) {
  std::set<int> in_backbone(backbone.begin(), backbone.end());
  std::set<int> backbone_pairs;
  for (int id : backbone) {
    if (graph.edge(id).pair_id >= 0) {
      backbone_pairs.insert(graph.edge(id).pair_id);
    }
  }
  std::vector<int> remaining;
  for (const JoinEdge& e : graph.edges()) {
    if (in_backbone.count(e.id)) continue;
    if (e.probability < options.tau) continue;
    if (e.pair_id >= 0 && backbone_pairs.count(e.pair_id)) continue;
    remaining.push_back(e.id);
  }
  // invariant: callers gate on the exact-solver size limit before calling.
  AUTOBI_CHECK_MSG(remaining.size() <= 22,
                   "SolveEmsExact limited to 22 remaining edges");

  std::vector<int> best;
  double best_logp = -1.0;
  for (uint64_t bits = 0; bits < (1ULL << remaining.size()); ++bits) {
    std::vector<int> subset;
    double logp = 0.0;
    for (size_t i = 0; i < remaining.size(); ++i) {
      if (bits & (1ULL << i)) {
        subset.push_back(remaining[i]);
        logp += std::log(graph.edge(remaining[i]).probability);
      }
    }
    if (subset.size() < best.size()) continue;
    if (subset.size() == best.size() && logp <= best_logp) continue;
    if (!EmsFeasible(graph, backbone, subset)) continue;
    best = subset;
    best_logp = logp;
  }
  return best;
}

}  // namespace autobi
