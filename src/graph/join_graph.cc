#include "graph/join_graph.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/strings.h"

namespace autobi {

double JoinGraph::ClampProbability(double p) {
  return std::min(1.0 - 1e-9, std::max(1e-9, p));
}

int JoinGraph::InternSourceKey(int src, const std::vector<int>& cols) {
  std::string name = StrFormat("%d|", src);
  for (int c : cols) name += StrFormat("%d,", c);
  for (size_t i = 0; i < source_key_names_.size(); ++i) {
    if (source_key_names_[i] == name) return static_cast<int>(i);
  }
  source_key_names_.push_back(name);
  return static_cast<int>(source_key_names_.size()) - 1;
}

int JoinGraph::AddEdge(int src, int dst, std::vector<int> src_columns,
                       std::vector<int> dst_columns, double probability,
                       bool one_to_one, int pair_id) {
  // invariant: graph builders only add edges between existing vertices.
  AUTOBI_CHECK(src >= 0 && src < num_vertices_);
  AUTOBI_CHECK(dst >= 0 && dst < num_vertices_);
  AUTOBI_CHECK(src != dst);
  JoinEdge e;
  e.id = static_cast<int>(edges_.size());
  e.src = src;
  e.dst = dst;
  e.src_columns = std::move(src_columns);
  e.dst_columns = std::move(dst_columns);
  e.probability = ClampProbability(probability);
  e.weight = -std::log(e.probability);
  e.one_to_one = one_to_one;
  e.pair_id = pair_id;
  e.source_key = InternSourceKey(src, e.src_columns);
  edges_.push_back(std::move(e));
  return edges_.back().id;
}

bool JoinGraph::StructurallyEqual(const JoinGraph& other) const {
  if (num_vertices_ != other.num_vertices_) return false;
  if (edges_.size() != other.edges_.size()) return false;
  for (size_t i = 0; i < edges_.size(); ++i) {
    const JoinEdge& a = edges_[i];
    const JoinEdge& b = other.edges_[i];
    if (a.id != b.id || a.src != b.src || a.dst != b.dst ||
        a.src_columns != b.src_columns || a.dst_columns != b.dst_columns ||
        a.probability != b.probability || a.weight != b.weight ||
        a.one_to_one != b.one_to_one || a.pair_id != b.pair_id ||
        a.source_key != b.source_key) {
      return false;
    }
  }
  return true;
}

int JoinGraph::AddOneToOneEdge(int a, int b, std::vector<int> a_columns,
                               std::vector<int> b_columns,
                               double probability) {
  int pair = next_pair_id_++;
  AddEdge(a, b, a_columns, b_columns, probability, /*one_to_one=*/true, pair);
  AddEdge(b, a, std::move(b_columns), std::move(a_columns), probability,
          /*one_to_one=*/true, pair);
  return pair;
}

}  // namespace autobi
