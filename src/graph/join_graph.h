#ifndef AUTOBI_GRAPH_JOIN_GRAPH_H_
#define AUTOBI_GRAPH_JOIN_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

namespace autobi {

// A candidate join edge in the global schema graph (Section 4.3.1).
//
// Vertices are tables. A directed edge points from the N-side (FK columns,
// `src`) to the 1-side (PK columns, `dst`). 1:1 joins are bi-directional: the
// builder inserts both orientations, sharing a `pair_id`, and the final
// solution reports each 1:1 pair at most once.
struct JoinEdge {
  int id = -1;   // Dense index into JoinGraph::edges().
  int src = -1;  // FK-side vertex (table index).
  int dst = -1;  // PK-side vertex (table index).
  std::vector<int> src_columns;
  std::vector<int> dst_columns;
  // Calibrated join probability P(C_i, C_j) in (0, 1).
  double probability = 0.0;
  // Edge weight w = -log(P) (Equation 5).
  double weight = 0.0;
  // True for 1:1 joins (represented as two directed edges with equal
  // pair_id); false for N:1.
  bool one_to_one = false;
  int pair_id = -1;
  // FK-once conflict group: edges with equal source_key share the same
  // starting columns (Equation 16). Assigned by JoinGraph::AddEdge.
  int source_key = -1;
};

// The global join graph G = (V, E) built by Algorithm 1.
class JoinGraph {
 public:
  JoinGraph() = default;
  explicit JoinGraph(int num_vertices) : num_vertices_(num_vertices) {}

  int num_vertices() const { return num_vertices_; }
  void set_num_vertices(int n) { num_vertices_ = n; }

  const std::vector<JoinEdge>& edges() const { return edges_; }
  const JoinEdge& edge(int id) const { return edges_[size_t(id)]; }
  size_t num_edges() const { return edges_.size(); }

  // Adds an edge; fills in id, weight (= -log probability) and source_key.
  // Returns the edge id.
  int AddEdge(int src, int dst, std::vector<int> src_columns,
              std::vector<int> dst_columns, double probability,
              bool one_to_one = false, int pair_id = -1);

  // Adds both orientations of a 1:1 join; returns the shared pair_id.
  int AddOneToOneEdge(int a, int b, std::vector<int> a_columns,
                      std::vector<int> b_columns, double probability);

  // Restricts probabilities away from {0,1} so -log stays finite.
  static double ClampProbability(double p);

  // Exact structural equality: same vertex count and the same edge sequence
  // on every field (endpoints, columns, bit-identical probability/weight,
  // 1:1 flags, pair and conflict-group ids). Since the downstream global
  // solve is a deterministic function of the graph (plus options), equal
  // graphs are the warm-start license of the incremental engine
  // (core/incremental.h): the previous run's solve output can be reused
  // wholesale with no bit-identity risk.
  bool StructurallyEqual(const JoinGraph& other) const;

 private:
  int num_vertices_ = 0;
  std::vector<JoinEdge> edges_;
  // Maps "src|col,col" -> conflict group id.
  std::vector<std::string> source_key_names_;
  int next_pair_id_ = 0;

  int InternSourceKey(int src, const std::vector<int>& cols);
};

}  // namespace autobi

#endif  // AUTOBI_GRAPH_JOIN_GRAPH_H_
