#ifndef AUTOBI_GRAPH_VALIDATE_H_
#define AUTOBI_GRAPH_VALIDATE_H_

#include <utility>
#include <vector>

namespace autobi {

// Structural predicates over arc sets, used to validate solver outputs and by
// the recall-mode acyclicity constraint (Equation 19).

// True if the digraph given by `arcs` (pairs src -> dst over `num_vertices`
// vertices) contains a directed cycle.
bool HasDirectedCycle(int num_vertices,
                      const std::vector<std::pair<int, int>>& arcs);

// True if `arcs` form a k-arborescence (Definition 3): every vertex has
// in-degree <= 1 and there is no directed cycle. When true and `k_out` is
// non-null, stores the number of weakly-connected components (isolated
// vertices count as trivial arborescences).
bool IsKArborescence(int num_vertices,
                     const std::vector<std::pair<int, int>>& arcs,
                     int* k_out = nullptr);

// True if `arcs` form a single spanning arborescence rooted at `root`
// (Definition 2): exactly one directed path from root to every other vertex.
bool IsSpanningArborescence(int num_vertices,
                            const std::vector<std::pair<int, int>>& arcs,
                            int root);

// Number of weakly-connected components of the digraph (isolated vertices
// included).
int CountWeakComponents(int num_vertices,
                        const std::vector<std::pair<int, int>>& arcs);

}  // namespace autobi

#endif  // AUTOBI_GRAPH_VALIDATE_H_
