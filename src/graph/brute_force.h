#ifndef AUTOBI_GRAPH_BRUTE_FORCE_H_
#define AUTOBI_GRAPH_BRUTE_FORCE_H_

#include <optional>
#include <vector>

#include "graph/edmonds.h"
#include "graph/kmca.h"

namespace autobi {

// Exhaustive reference solvers, used only by tests and the Figure-7
// counterfactuals. Exponential in the number of edges: callers must keep
// instances small (<= ~20 edges).

// Reference 1-MCA: enumerates every in-arc choice per non-root vertex and
// keeps the cheapest acyclic spanning selection. Returns arc indices.
std::optional<std::vector<int>> BruteForceMinArborescence(
    int num_vertices, const std::vector<Arc>& arcs, int root);

// Reference k-MCA: enumerates all edge subsets, keeps the cheapest
// k-arborescence under Equation 8.
KmcaResult BruteForceKmca(const JoinGraph& graph, double penalty_weight);

// Reference k-MCA-CC: as above, additionally requiring FK-once.
KmcaResult BruteForceKmcaCc(const JoinGraph& graph, double penalty_weight);

}  // namespace autobi

#endif  // AUTOBI_GRAPH_BRUTE_FORCE_H_
