#include "serve/transport.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"

namespace autobi {

Status RunStdioServer(ServeEngine* engine) {
  std::string line;
  while (!engine->shutdown_requested() && std::getline(std::cin, line)) {
    if (line.empty()) continue;
    std::cout << engine->HandleLine(line) << "\n" << std::flush;
  }
  return Status::Ok();
}

namespace {

// Reads buffered lines from `fd`, dispatching each through the engine.
// Returns on EOF, error, or engine shutdown. `wake_fd` is the read end of
// the transport's self-pipe: the engine's shutdown callback writes one byte
// there (which is never drained, so the pipe stays level-triggered
// readable), waking every blocked poller at once — shutdown accepted on one
// connection unblocks all others immediately, with no polling interval.
void ServeConnection(ServeEngine* engine, int fd, int wake_fd) {
  std::string pending;
  char buf[4096];
  while (true) {
    struct pollfd pfds[2];
    pfds[0].fd = fd;
    pfds[0].events = POLLIN;
    pfds[1].fd = wake_fd;
    pfds[1].events = POLLIN;
    int ready = ::poll(pfds, 2, -1);
    if (engine->shutdown_requested()) break;
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pfds[1].revents != 0) break;  // Shutdown wakeup.
    if ((pfds[0].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;  // EOF or error.
    pending.append(buf, size_t(n));
    size_t start = 0;
    for (size_t nl = pending.find('\n', start); nl != std::string::npos;
         nl = pending.find('\n', start)) {
      std::string_view line(pending.data() + start, nl - start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      if (!line.empty()) {
        std::string response = engine->HandleLine(line);
        response.push_back('\n');
        size_t off = 0;
        while (off < response.size()) {
          ssize_t w =
              ::write(fd, response.data() + off, response.size() - off);
          if (w <= 0) {
            ::close(fd);
            return;
          }
          off += size_t(w);
        }
      }
      start = nl + 1;
      if (engine->shutdown_requested()) {
        ::close(fd);
        return;
      }
    }
    pending.erase(0, start);
  }
  ::close(fd);
}

}  // namespace

Status RunUnixSocketServer(ServeEngine* engine, const std::string& path) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    return Status::InvalidInput(
        StrFormat("socket path too long (%zu bytes)", path.size()));
  }
  int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    return Status::Internal(
        StrFormat("socket() failed: %s", std::strerror(errno)));
  }
  ::unlink(path.c_str());  // Replace a stale socket from a previous run.
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size());
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status status = Status::Internal(
        StrFormat("bind(%s) failed: %s", path.c_str(), std::strerror(errno)));
    ::close(listen_fd);
    return status;
  }
  if (::listen(listen_fd, 16) < 0) {
    Status status = Status::Internal(
        StrFormat("listen failed: %s", std::strerror(errno)));
    ::close(listen_fd);
    ::unlink(path.c_str());
    return status;
  }

  // Self-pipe shutdown wakeup: the engine's shutdown callback writes one
  // byte to the pipe, which is never read back — it stays level-triggered
  // readable, so the accept loop and every connection poller unblock at
  // once instead of timing out on a polling interval.
  int wake[2];
  if (::pipe(wake) != 0) {
    Status status = Status::Internal(
        StrFormat("pipe failed: %s", std::strerror(errno)));
    ::close(listen_fd);
    ::unlink(path.c_str());
    return status;
  }
  const int wake_write = wake[1];
  engine->SetShutdownCallback([wake_write] {
    char byte = 1;
    ssize_t ignored = ::write(wake_write, &byte, 1);
    (void)ignored;
  });

  std::vector<std::thread> connections;
  while (!engine->shutdown_requested()) {
    struct pollfd pfds[2];
    pfds[0].fd = listen_fd;
    pfds[0].events = POLLIN;
    pfds[1].fd = wake[0];
    pfds[1].events = POLLIN;
    int ready = ::poll(pfds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pfds[1].revents != 0) break;  // Shutdown wakeup.
    if ((pfds[0].revents & POLLIN) == 0) continue;
    int conn_fd = ::accept(listen_fd, nullptr, nullptr);
    if (conn_fd < 0) continue;
    connections.emplace_back(ServeConnection, engine, conn_fd, wake[0]);
  }
  for (std::thread& t : connections) t.join();
  engine->SetShutdownCallback(nullptr);
  ::close(wake[0]);
  ::close(wake[1]);
  ::close(listen_fd);
  ::unlink(path.c_str());
  return Status::Ok();
}

}  // namespace autobi
