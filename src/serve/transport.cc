#include "serve/transport.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"

namespace autobi {

Status RunStdioServer(ServeEngine* engine) {
  std::string line;
  while (!engine->shutdown_requested() && std::getline(std::cin, line)) {
    if (line.empty()) continue;
    std::cout << engine->HandleLine(line) << "\n" << std::flush;
  }
  return Status::Ok();
}

namespace {

// Reads buffered lines from `fd`, dispatching each through the engine.
// Returns on EOF, error, or engine shutdown (polled every 200 ms so a
// shutdown accepted on another connection unblocks this one).
void ServeConnection(ServeEngine* engine, int fd) {
  std::string pending;
  char buf[4096];
  while (true) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    int ready = ::poll(&pfd, 1, 200);
    if (engine->shutdown_requested()) break;
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;  // EOF or error.
    pending.append(buf, size_t(n));
    size_t start = 0;
    for (size_t nl = pending.find('\n', start); nl != std::string::npos;
         nl = pending.find('\n', start)) {
      std::string_view line(pending.data() + start, nl - start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      if (!line.empty()) {
        std::string response = engine->HandleLine(line);
        response.push_back('\n');
        size_t off = 0;
        while (off < response.size()) {
          ssize_t w =
              ::write(fd, response.data() + off, response.size() - off);
          if (w <= 0) {
            ::close(fd);
            return;
          }
          off += size_t(w);
        }
      }
      start = nl + 1;
      if (engine->shutdown_requested()) {
        ::close(fd);
        return;
      }
    }
    pending.erase(0, start);
  }
  ::close(fd);
}

}  // namespace

Status RunUnixSocketServer(ServeEngine* engine, const std::string& path) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    return Status::InvalidInput(
        StrFormat("socket path too long (%zu bytes)", path.size()));
  }
  int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    return Status::Internal(
        StrFormat("socket() failed: %s", std::strerror(errno)));
  }
  ::unlink(path.c_str());  // Replace a stale socket from a previous run.
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size());
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status status = Status::Internal(
        StrFormat("bind(%s) failed: %s", path.c_str(), std::strerror(errno)));
    ::close(listen_fd);
    return status;
  }
  if (::listen(listen_fd, 16) < 0) {
    Status status = Status::Internal(
        StrFormat("listen failed: %s", std::strerror(errno)));
    ::close(listen_fd);
    ::unlink(path.c_str());
    return status;
  }

  std::vector<std::thread> connections;
  while (!engine->shutdown_requested()) {
    struct pollfd pfd;
    pfd.fd = listen_fd;
    pfd.events = POLLIN;
    int ready = ::poll(&pfd, 1, 200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    int conn_fd = ::accept(listen_fd, nullptr, nullptr);
    if (conn_fd < 0) continue;
    connections.emplace_back(ServeConnection, engine, conn_fd);
  }
  for (std::thread& t : connections) t.join();
  ::close(listen_fd);
  ::unlink(path.c_str());
  return Status::Ok();
}

}  // namespace autobi
