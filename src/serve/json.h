#ifndef AUTOBI_SERVE_JSON_H_
#define AUTOBI_SERVE_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace autobi {

// Minimal JSON value for the serving wire format (SERVING.md). The daemon
// speaks newline-delimited JSON: one request object per line in, one
// response object per line out. This is an untrusted-input surface — the
// parser returns kInvalidInput on any malformed byte sequence (it is fuzzed
// by the autobi_faultfuzz `serve` scenario) and the writer always emits a
// single line (no raw newlines; control characters are escaped).
//
// Design notes: objects preserve insertion order (stable wire output for
// tests and humans) with linear-scan lookup — protocol objects are small.
// Numbers distinguish int64 from double so row counts and version ids
// round-trip exactly; doubles render with %.17g (round-trip safe).
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  // null
  static Json MakeBool(bool b);
  static Json MakeInt(int64_t v);
  static Json MakeDouble(double v);
  static Json MakeString(std::string s);
  static Json MakeArray();
  static Json MakeObject();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Value accessors. Calling the wrong accessor is a programmer error
  // (checked); protocol code uses the typed Get* helpers below instead.
  bool AsBool() const;
  int64_t AsInt() const;      // Doubles truncate toward zero.
  double AsDouble() const;    // Ints widen.
  const std::string& AsString() const;

  // --- Arrays.
  size_t size() const { return array_.size(); }
  const Json& at(size_t i) const;
  Json& Append(Json v);  // Returns the appended element.

  // --- Objects (insertion-ordered).
  const std::vector<std::pair<std::string, Json>>& members() const {
    return object_;
  }
  // nullptr when absent.
  const Json* Find(std::string_view key) const;
  // Inserts or overwrites; returns the stored value.
  Json& Set(std::string key, Json value);

  // Typed member lookups for protocol handling: OK + default when the key
  // is absent, kInvalidInput when present with the wrong type.
  StatusOr<std::string> GetString(std::string_view key,
                                  std::string fallback) const;
  StatusOr<int64_t> GetInt(std::string_view key, int64_t fallback) const;
  StatusOr<double> GetDouble(std::string_view key, double fallback) const;
  StatusOr<bool> GetBool(std::string_view key, bool fallback) const;

  // Compact single-line serialization.
  std::string Write() const;
  void WriteTo(std::string* out) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  bool int_number_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

// Parses exactly one JSON value (plus surrounding whitespace) from `text`.
// kInvalidInput on anything else: trailing bytes, unterminated strings, bad
// escapes, numbers out of range, nesting beyond 64 levels.
StatusOr<Json> ParseJson(std::string_view text);

}  // namespace autobi

#endif  // AUTOBI_SERVE_JSON_H_
