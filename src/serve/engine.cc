#include "serve/engine.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <utility>

#include "common/strings.h"
#include "core/incremental.h"
#include "core/model_export.h"
#include "fuzz/faultpoints.h"
#include "profile/sketch.h"
#include "table/csv.h"

namespace autobi {

StatusOr<QosTier> ParseQosTier(std::string_view name) {
  if (name == "interactive") return QosTier::kInteractive;
  if (name == "standard") return QosTier::kStandard;
  if (name == "batch") return QosTier::kBatch;
  return Status::InvalidInput(
      StrFormat("unknown QoS tier '%.*s' (want interactive|standard|batch)",
                int(name.size()), name.data()));
}

const char* QosTierName(QosTier tier) {
  switch (tier) {
    case QosTier::kInteractive: return "interactive";
    case QosTier::kStandard: return "standard";
    case QosTier::kBatch: return "batch";
  }
  return "standard";
}

QosPolicy PolicyForTier(QosTier tier) {
  // Budget values are deterministic (they key the cross-request cache);
  // deadlines are wall-clock and never key anything. The numbers follow the
  // paper's latency profile: profiling/UCC dominates (Figure 5(b)), so the
  // interactive tier caps the value-probing row counts first.
  QosPolicy p;
  switch (tier) {
    case QosTier::kInteractive:
      p.deadline_seconds = 2.0;
      p.budgets.max_rows_per_table = 50'000;
      p.budgets.max_cells_per_table = 2'000'000;
      p.budgets.max_candidate_pairs = 20'000;
      p.budgets.max_one_mca_calls = 2'000;
      break;
    case QosTier::kStandard:
      p.deadline_seconds = 30.0;
      break;
    case QosTier::kBatch:
      // No deadline, no budgets: full-fidelity offline runs.
      break;
  }
  return p;
}

AdmissionGate::AdmissionGate(int max_inflight, int max_queue)
    : max_inflight_(std::max(1, max_inflight)),
      max_queue_(std::max(0, max_queue)) {}

Status AdmissionGate::Enter() {
  std::unique_lock<std::mutex> lock(mu_);
  if (inflight_ < max_inflight_) {
    ++inflight_;
    ++admitted_;
    return Status::Ok();
  }
  if (queued_ >= max_queue_) {
    ++rejected_;
    return Status::ResourceExhausted(StrFormat(
        "admission queue full (%d in flight, %d queued); retry with backoff",
        inflight_, queued_));
  }
  ++queued_;
  const auto wait_start = std::chrono::steady_clock::now();
  cv_.wait(lock, [this] { return inflight_ < max_inflight_; });
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wait_start)
          .count();
  queue_wait_total_seconds_ += waited;
  if (waited > queue_wait_max_seconds_) queue_wait_max_seconds_ = waited;
  --queued_;
  ++inflight_;
  ++admitted_;
  return Status::Ok();
}

void AdmissionGate::Exit() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --inflight_;
  }
  cv_.notify_one();
}

int AdmissionGate::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

int AdmissionGate::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

int64_t AdmissionGate::rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_;
}

int64_t AdmissionGate::admitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_;
}

double AdmissionGate::queue_wait_total_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_wait_total_seconds_;
}

double AdmissionGate::queue_wait_max_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_wait_max_seconds_;
}

namespace {

// Releases an admission slot on scope exit.
class GateGuard {
 public:
  explicit GateGuard(AdmissionGate* gate) : gate_(gate) {}
  ~GateGuard() { gate_->Exit(); }
  GateGuard(const GateGuard&) = delete;
  GateGuard& operator=(const GateGuard&) = delete;

 private:
  AdmissionGate* gate_;
};

// Starts the response envelope: echoes the request id (any JSON type).
Json BeginResponse(const Json* request) {
  Json resp = Json::MakeObject();
  if (request != nullptr) {
    if (const Json* id = request->Find("id")) resp.Set("id", *id);
  }
  return resp;
}

Json OkResponse(const Json& request) {
  Json resp = BeginResponse(&request);
  resp.Set("ok", Json::MakeBool(true));
  return resp;
}

Json JoinsToJson(const std::vector<NamedJoin>& joins) {
  Json arr = Json::MakeArray();
  for (const NamedJoin& j : joins) {
    Json obj = Json::MakeObject();
    obj.Set("from", Json::MakeString(j.from.ToString()));
    obj.Set("to", Json::MakeString(j.to.ToString()));
    obj.Set("kind", Json::MakeString(j.kind == JoinKind::kOneToOne ? "1:1"
                                                                   : "N:1"));
    arr.Append(std::move(obj));
  }
  return arr;
}

Json CacheStatsToJson(const PredictCache::Stats& s) {
  Json obj = Json::MakeObject();
  obj.Set("table_hits", Json::MakeInt(int64_t(s.table_hits)));
  obj.Set("table_misses", Json::MakeInt(int64_t(s.table_misses)));
  obj.Set("solve_hits", Json::MakeInt(int64_t(s.solve_hits)));
  obj.Set("solve_misses", Json::MakeInt(int64_t(s.solve_misses)));
  obj.Set("table_entries", Json::MakeInt(int64_t(s.table_entries)));
  obj.Set("solve_entries", Json::MakeInt(int64_t(s.solve_entries)));
  obj.Set("evictions", Json::MakeInt(int64_t(s.evictions)));
  return obj;
}

// Appends one JSON cell to a column, coercing numbers to the column's
// established type. Shared by the full columns-form upload and the
// update_table append path so both enforce identical typing rules.
Status AppendJsonCell(Column& out, const Json& v, size_t r) {
  switch (v.type()) {
    case Json::Type::kNull:
      out.AppendNull();
      break;
    case Json::Type::kNumber:
      // Integral JSON numbers become int cells, fractional ones double
      // cells — but a column must stay single-typed, so once the column
      // has a type, coerce to it.
      if (out.type() == ValueType::kDouble) {
        out.AppendDouble(v.AsDouble());
      } else if (out.type() == ValueType::kInt) {
        out.AppendInt(v.AsInt());
      } else if (v.AsDouble() == double(v.AsInt()) &&
                 double(v.AsInt()) == v.AsDouble()) {
        out.AppendInt(v.AsInt());
      } else {
        out.AppendDouble(v.AsDouble());
      }
      break;
    case Json::Type::kString:
      if (out.type() != ValueType::kNull &&
          out.type() != ValueType::kString) {
        return Status::InvalidInput(StrFormat(
            "column '%s' mixes strings with %s cells",
            out.name().c_str(),
            out.type() == ValueType::kInt ? "int" : "double"));
      }
      out.AppendString(v.AsString());
      break;
    default:
      return Status::InvalidInput(StrFormat(
          "column '%s' row %zu: cells must be null/number/string",
          out.name().c_str(), r));
  }
  return Status::Ok();
}

StatusOr<Table> TableFromColumnsJson(const std::string& name,
                                     const Json& columns) {
  Table table(name);
  for (size_t i = 0; i < columns.size(); ++i) {
    const Json& col = columns.at(i);
    if (!col.is_object()) {
      return Status::InvalidInput("each column must be an object");
    }
    AUTOBI_ASSIGN_OR_RETURN(std::string col_name,
                            col.GetString("name", std::string()));
    if (col_name.empty()) {
      return Status::InvalidInput(
          StrFormat("column %zu is missing a 'name'", i));
    }
    const Json* values = col.Find("values");
    if (values == nullptr || !values->is_array()) {
      return Status::InvalidInput(StrFormat(
          "column '%s' needs a 'values' array", col_name.c_str()));
    }
    Column& out = table.AddColumn(std::move(col_name));
    for (size_t r = 0; r < values->size(); ++r) {
      AUTOBI_RETURN_IF_ERROR(AppendJsonCell(out, values->at(r), r));
    }
  }
  if (!table.Validate()) {
    return Status::InvalidInput("columns have unequal lengths");
  }
  return table;
}

// Appends a columns-form delta to `table` in place: the delta must carry
// exactly the table's columns (same names, same order) with equal-length
// value arrays, typed compatibly with the existing cells. The append-only
// shape is what the incremental engine's schema diff recognizes as
// kAppended — old rows keep their byte-identical prefix.
Status AppendDeltaColumns(Table* table, const Json& columns) {
  if (columns.size() != table->num_columns()) {
    return Status::InvalidInput(StrFormat(
        "delta has %zu columns, table '%s' has %zu", columns.size(),
        table->name().c_str(), table->num_columns()));
  }
  // Validate shape before mutating anything.
  size_t rows = 0;
  for (size_t i = 0; i < columns.size(); ++i) {
    const Json& col = columns.at(i);
    if (!col.is_object()) {
      return Status::InvalidInput("each column must be an object");
    }
    AUTOBI_ASSIGN_OR_RETURN(std::string col_name,
                            col.GetString("name", std::string()));
    if (col_name != table->column(i).name()) {
      return Status::InvalidInput(StrFormat(
          "delta column %zu is '%s', table has '%s' (append must keep the "
          "schema)",
          i, col_name.c_str(), table->column(i).name().c_str()));
    }
    const Json* values = col.Find("values");
    if (values == nullptr || !values->is_array()) {
      return Status::InvalidInput(StrFormat(
          "column '%s' needs a 'values' array", col_name.c_str()));
    }
    if (i == 0) {
      rows = values->size();
    } else if (values->size() != rows) {
      return Status::InvalidInput("delta columns have unequal lengths");
    }
  }
  for (size_t i = 0; i < columns.size(); ++i) {
    const Json* values = columns.at(i).Find("values");
    Column& out = table->column(i);
    for (size_t r = 0; r < values->size(); ++r) {
      AUTOBI_RETURN_IF_ERROR(AppendJsonCell(out, values->at(r), r));
    }
  }
  return Status::Ok();
}

StatusOr<AutoBiMode> ParseMode(std::string_view name) {
  if (name == "full") return AutoBiMode::kFull;
  if (name == "precision" || name == "precision_only") {
    return AutoBiMode::kPrecisionOnly;
  }
  if (name == "schema" || name == "schema_only") return AutoBiMode::kSchemaOnly;
  return Status::InvalidInput(
      StrFormat("unknown mode '%.*s' (want full|precision_only|schema_only)",
                int(name.size()), name.data()));
}

}  // namespace

Json MakeErrorResponse(const Json* request, const Status& status) {
  Json resp = BeginResponse(request);
  resp.Set("ok", Json::MakeBool(false));
  Json err = Json::MakeObject();
  err.Set("code", Json::MakeString(StatusCodeName(status.code())));
  err.Set("message", Json::MakeString(status.message()));
  resp.Set("error", std::move(err));
  return resp;
}

ServeEngine::ServeEngine(const LocalModel* model, ServeOptions options)
    : model_(model),
      options_(options),
      cache_(options.cache),
      catalog_(options.max_unpinned_models_per_tenant),
      gate_(options.max_inflight, options.max_queue) {}

void ServeEngine::SetPredictHoldHookForTest(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(hook_mu_);
  predict_hold_hook_ = std::move(hook);
}

void ServeEngine::SetShutdownCallback(std::function<void()> callback) {
  std::lock_guard<std::mutex> lock(hook_mu_);
  shutdown_callback_ = std::move(callback);
}

Status ServeEngine::RecoverState() {
  if (options_.state_dir.empty()) return Status::Ok();
  return catalog_.OpenStateDir(options_.state_dir,
                               options_.journal_compact_every);
}

Status ServeEngine::FlushState() { return catalog_.Flush(); }

std::string ServeEngine::HandleLine(std::string_view line) {
  std::string buffer;
  if (FaultPoints::Global().Fire("serve.request")) {
    // Corrupt the request the way a broken client or truncated pipe would:
    // cut at a fraction-determined byte and append a stray quote. The
    // contract under test: any bytes in, one well-formed JSON error line
    // out.
    size_t cut = size_t(FaultPoints::Global().Fraction("serve.request") *
                        double(line.size()));
    buffer.assign(line.substr(0, cut));
    buffer.push_back('"');
    line = buffer;
  }
  StatusOr<Json> parsed = ParseJson(line);
  if (!parsed.ok()) {
    ++requests_;
    ++errors_;
    return MakeErrorResponse(nullptr, parsed.status()).Write();
  }
  return Handle(*parsed).Write();
}

Json ServeEngine::Handle(const Json& request) {
  ++requests_;
  Json resp;
  try {
    if (!request.is_object()) {
      resp = MakeErrorResponse(
          nullptr, Status::InvalidInput("request must be a JSON object"));
    } else {
      StatusOr<std::string> verb =
          request.GetString("verb", std::string());
      if (!verb.ok()) {
        resp = MakeErrorResponse(&request, verb.status());
      } else if (verb->empty()) {
        resp = MakeErrorResponse(
            &request, Status::InvalidInput("request is missing 'verb'"));
      } else if (*verb == "ping") {
        resp = HandlePing(request);
      } else if (*verb == "create_session") {
        resp = HandleCreateSession(request);
      } else if (*verb == "close_session") {
        resp = HandleCloseSession(request);
      } else if (*verb == "upload_table") {
        resp = HandleUploadTable(request);
      } else if (*verb == "update_table") {
        resp = HandleUpdateTable(request);
      } else if (*verb == "predict") {
        resp = HandlePredict(request);
      } else if (*verb == "get_model") {
        resp = HandleGetModel(request);
      } else if (*verb == "diff") {
        resp = HandleDiff(request);
      } else if (*verb == "publish_model") {
        resp = HandlePublishModel(request);
      } else if (*verb == "list_models") {
        resp = HandleListModels(request);
      } else if (*verb == "pin_model") {
        resp = HandlePinModel(request);
      } else if (*verb == "diff_models") {
        resp = HandleDiffModels(request);
      } else if (*verb == "get_catalog_model") {
        resp = HandleGetCatalogModel(request);
      } else if (*verb == "stats") {
        resp = HandleStats(request);
      } else if (*verb == "shutdown") {
        resp = HandleShutdown(request);
      } else {
        resp = MakeErrorResponse(
            &request,
            Status::InvalidInput(StrFormat(
                "unknown verb '%s' (see SERVING.md for the protocol)",
                verb->c_str())));
      }
    }
  } catch (const std::exception& e) {
    // Service boundary: nothing escapes as an exception.
    resp = MakeErrorResponse(
        &request, Status::Internal(StrFormat("request failed: %s", e.what())));
  }
  const Json* ok = resp.Find("ok");
  if (ok == nullptr || !ok->is_bool() || !ok->AsBool()) ++errors_;
  return resp;
}

Json ServeEngine::HandlePing(const Json& req) {
  Json resp = OkResponse(req);
  resp.Set("pong", Json::MakeBool(true));
  return resp;
}

Json ServeEngine::HandleCreateSession(const Json& req) {
  StatusOr<std::string> tenant = req.GetString("tenant", "default");
  if (!tenant.ok()) return MakeErrorResponse(&req, tenant.status());
  std::lock_guard<std::mutex> lock(mu_);
  if (int(sessions_.size()) >= options_.max_sessions) {
    return MakeErrorResponse(
        &req, Status::ResourceExhausted(StrFormat(
                  "session limit reached (%d); close_session first",
                  options_.max_sessions)));
  }
  std::string id = StrFormat("s%lld", static_cast<long long>(next_session_++));
  Session session;
  session.tenant = *tenant;
  sessions_.emplace(id, std::move(session));
  Json resp = OkResponse(req);
  resp.Set("session", Json::MakeString(id));
  resp.Set("tenant", Json::MakeString(*tenant));
  return resp;
}

Json ServeEngine::HandleCloseSession(const Json& req) {
  StatusOr<std::string> id = req.GetString("session", std::string());
  if (!id.ok()) return MakeErrorResponse(&req, id.status());
  std::lock_guard<std::mutex> lock(mu_);
  if (sessions_.erase(*id) == 0) {
    return MakeErrorResponse(
        &req, Status::InvalidInput(
                  StrFormat("unknown session '%s'", id->c_str())));
  }
  return OkResponse(req);
}

StatusOr<ServeEngine::Session> ServeEngine::SnapshotSession(
    const std::string& session_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return Status::InvalidInput(
        StrFormat("unknown session '%s' (create_session first)",
                  session_id.c_str()));
  }
  return it->second;
}

Json ServeEngine::HandleUploadTable(const Json& req) {
  StatusOr<std::string> id = req.GetString("session", std::string());
  if (!id.ok()) return MakeErrorResponse(&req, id.status());
  StatusOr<std::string> name = req.GetString("name", std::string());
  if (!name.ok()) return MakeErrorResponse(&req, name.status());

  // Parse the table payload *outside* the session lock (CSV parsing can be
  // the expensive part of an upload).
  const Json* csv = req.Find("csv");
  const Json* columns = req.Find("columns");
  Table table;
  if (csv != nullptr && csv->is_string()) {
    CsvOptions csv_options;
    csv_options.max_bytes = options_.max_csv_bytes;
    std::string table_name = name->empty() ? "table" : *name;
    StatusOr<Table> parsed =
        ReadCsv(csv->AsString(), table_name, csv_options);
    if (!parsed.ok()) {
      return MakeErrorResponse(&req,
                               parsed.status().WithContext("upload_table"));
    }
    table = std::move(parsed).value();
  } else if (columns != nullptr && columns->is_array()) {
    if (name->empty()) {
      return MakeErrorResponse(
          &req, Status::InvalidInput("columns upload needs a 'name'"));
    }
    StatusOr<Table> built = TableFromColumnsJson(*name, *columns);
    if (!built.ok()) {
      return MakeErrorResponse(&req,
                               built.status().WithContext("upload_table"));
    }
    table = std::move(built).value();
  } else {
    return MakeErrorResponse(
        &req, Status::InvalidInput(
                  "upload_table needs 'csv' (string) or 'columns' (array)"));
  }

  const uint64_t content_hash = TableContentHash(table);
  const std::string table_name = table.name();
  const size_t table_rows = table.num_rows();
  const size_t table_cols = table.num_columns();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(*id);
  if (it == sessions_.end()) {
    return MakeErrorResponse(
        &req, Status::InvalidInput(
                  StrFormat("unknown session '%s'", id->c_str())));
  }
  Session& session = it->second;
  // Copy-on-write: re-uploading a name replaces that table, otherwise
  // append. Predicts running on the old snapshot are unaffected.
  auto next = std::make_shared<std::vector<Table>>(*session.tables);
  bool replaced = false;
  for (Table& t : *next) {
    if (t.name() == table.name()) {
      t = std::move(table);
      replaced = true;
      break;
    }
  }
  if (!replaced) {
    if (int(next->size()) >= options_.max_tables_per_session) {
      return MakeErrorResponse(
          &req, Status::ResourceExhausted(
                    StrFormat("session table limit reached (%d)",
                              options_.max_tables_per_session)));
    }
    next->push_back(std::move(table));
  }
  session.tables = std::move(next);

  Json resp = OkResponse(req);
  resp.Set("table", Json::MakeString(table_name));
  resp.Set("rows", Json::MakeInt(int64_t(table_rows)));
  resp.Set("columns", Json::MakeInt(int64_t(table_cols)));
  resp.Set("replaced", Json::MakeBool(replaced));
  resp.Set("content_hash",
           Json::MakeString(StrFormat("%016llx",
                                      static_cast<unsigned long long>(
                                          content_hash))));
  resp.Set("num_tables", Json::MakeInt(int64_t(session.tables->size())));
  return resp;
}

Json ServeEngine::HandleUpdateTable(const Json& req) {
  StatusOr<std::string> id = req.GetString("session", std::string());
  if (!id.ok()) return MakeErrorResponse(&req, id.status());
  StatusOr<std::string> name = req.GetString("name", std::string());
  if (!name.ok()) return MakeErrorResponse(&req, name.status());
  if (name->empty()) {
    return MakeErrorResponse(
        &req, Status::InvalidInput("update_table needs a 'name'"));
  }
  const Json* columns = req.Find("columns");
  if (columns == nullptr || !columns->is_array()) {
    return MakeErrorResponse(
        &req, Status::InvalidInput(
                  "update_table needs 'columns' (array of appended rows)"));
  }

  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(*id);
  if (it == sessions_.end()) {
    return MakeErrorResponse(
        &req, Status::InvalidInput(
                  StrFormat("unknown session '%s'", id->c_str())));
  }
  Session& session = it->second;
  // Copy-on-write like upload_table: the append mutates a fresh copy, so a
  // shape/type error discards it and Predicts on the old snapshot are
  // unaffected. The committed table keeps its old rows byte-identical —
  // the incremental engine's diff classifies it as append-only.
  auto next = std::make_shared<std::vector<Table>>(*session.tables);
  Table* target = nullptr;
  for (Table& t : *next) {
    if (t.name() == *name) {
      target = &t;
      break;
    }
  }
  if (target == nullptr) {
    return MakeErrorResponse(
        &req, Status::InvalidInput(StrFormat(
                  "unknown table '%s' (upload_table first)", name->c_str())));
  }
  const size_t rows_before = target->num_rows();
  Status appended = AppendDeltaColumns(target, *columns);
  if (!appended.ok()) {
    return MakeErrorResponse(&req, appended.WithContext("update_table"));
  }
  const uint64_t content_hash = TableContentHash(*target);
  const size_t rows_after = target->num_rows();
  session.tables = std::move(next);

  Json resp = OkResponse(req);
  resp.Set("table", Json::MakeString(*name));
  resp.Set("rows_appended", Json::MakeInt(int64_t(rows_after - rows_before)));
  resp.Set("rows", Json::MakeInt(int64_t(rows_after)));
  resp.Set("content_hash",
           Json::MakeString(StrFormat("%016llx",
                                      static_cast<unsigned long long>(
                                          content_hash))));
  return resp;
}

Json ServeEngine::HandlePredict(const Json& req) {
  StatusOr<std::string> id = req.GetString("session", std::string());
  if (!id.ok()) return MakeErrorResponse(&req, id.status());
  StatusOr<std::string> tier_name = req.GetString("tier", "standard");
  if (!tier_name.ok()) return MakeErrorResponse(&req, tier_name.status());
  StatusOr<QosTier> tier = ParseQosTier(*tier_name);
  if (!tier.ok()) return MakeErrorResponse(&req, tier.status());
  StatusOr<std::string> mode_name = req.GetString("mode", "full");
  if (!mode_name.ok()) return MakeErrorResponse(&req, mode_name.status());
  StatusOr<AutoBiMode> mode = ParseMode(*mode_name);
  if (!mode.ok()) return MakeErrorResponse(&req, mode.status());
  // Opt-in delta path: diff against the session's previous incremental run
  // and recompute only what changed. Bit-identical joins/degradation to a
  // plain predict over the same tables; the response additionally carries
  // the "incremental" counters. Plain predicts keep the solve-memo
  // semantics (the delta path populates but never consults the memo).
  StatusOr<bool> incremental = req.GetBool("incremental", false);
  if (!incremental.ok()) return MakeErrorResponse(&req, incremental.status());

  QosPolicy policy = PolicyForTier(*tier);
  // Explicit per-request overrides on top of the tier defaults. Budgets are
  // deterministic and key the cache; the deadline does not.
  StatusOr<double> deadline =
      req.GetDouble("deadline_seconds", policy.deadline_seconds);
  if (!deadline.ok()) return MakeErrorResponse(&req, deadline.status());
  StatusOr<int64_t> max_rows = req.GetInt(
      "max_rows_per_table", int64_t(policy.budgets.max_rows_per_table));
  if (!max_rows.ok()) return MakeErrorResponse(&req, max_rows.status());
  StatusOr<int64_t> max_pairs = req.GetInt(
      "max_candidate_pairs", int64_t(policy.budgets.max_candidate_pairs));
  if (!max_pairs.ok()) return MakeErrorResponse(&req, max_pairs.status());
  StatusOr<int64_t> max_mca = req.GetInt(
      "max_one_mca_calls", int64_t(policy.budgets.max_one_mca_calls));
  if (!max_mca.ok()) return MakeErrorResponse(&req, max_mca.status());
  if (*deadline < 0 || *max_rows < 0 || *max_pairs < 0 || *max_mca < 0) {
    return MakeErrorResponse(
        &req,
        Status::InvalidInput("deadline and budget overrides must be >= 0"));
  }

  Status admitted = gate_.Enter();
  if (!admitted.ok()) return MakeErrorResponse(&req, admitted);
  GateGuard slot(&gate_);
  {
    std::function<void()> hook;
    {
      std::lock_guard<std::mutex> lock(hook_mu_);
      hook = predict_hold_hook_;
    }
    if (hook) hook();
  }

  StatusOr<Session> snapshot = SnapshotSession(*id);
  if (!snapshot.ok()) return MakeErrorResponse(&req, snapshot.status());
  std::shared_ptr<const std::vector<Table>> tables = snapshot->tables;
  if (tables->empty()) {
    return MakeErrorResponse(
        &req, Status::InvalidInput("session has no tables (upload_table "
                                   "first)"));
  }

  RunContext ctx;
  if (*deadline > 0) ctx.set_deadline_after(*deadline);
  ctx.budgets.max_rows_per_table = size_t(*max_rows);
  ctx.budgets.max_cells_per_table = policy.budgets.max_cells_per_table;
  ctx.budgets.max_candidate_pairs = size_t(*max_pairs);
  ctx.budgets.max_one_mca_calls = long(*max_mca);

  AutoBiOptions ab;
  ab.mode = *mode;
  ab.threads = options_.threads;
  ab.cache = &cache_;
  AutoBi predictor(model_, ab);
  ++predicts_;
  // Take the session's incremental state (if any) for exclusive use — the
  // engine must not share one state across concurrent calls. It goes back
  // on the session after the run, errors included (a failed run leaves the
  // state describing the last healthy one).
  std::shared_ptr<IncrementalState> inc_state;
  if (*incremental) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(*id);
    if (it != sessions_.end()) inc_state = std::move(it->second.incremental);
    if (inc_state == nullptr) inc_state = std::make_shared<IncrementalState>();
  }
  StatusOr<AutoBiResult> result =
      *incremental ? predictor.PredictIncremental(*tables, &ctx, inc_state.get())
                   : predictor.Predict(*tables, &ctx);
  if (!result.ok()) {
    if (inc_state != nullptr) {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = sessions_.find(*id);
      if (it != sessions_.end()) it->second.incremental = std::move(inc_state);
    }
    return MakeErrorResponse(&req, result.status());
  }

  std::vector<NamedJoin> joins = NameJoins(*tables, result->model);

  // Record the prediction on the session (tolerating a concurrent close:
  // the response still carries the result).
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(*id);
    if (it != sessions_.end()) {
      Session& session = it->second;
      if (session.has_predicted) {
        session.prev_joins = std::move(session.last_joins);
        session.has_previous = true;
      }
      session.last_joins = joins;
      session.has_predicted = true;
      session.last_model = result->model;
      session.last_tables = tables;
      if (inc_state != nullptr) session.incremental = std::move(inc_state);
    }
  }

  Json resp = OkResponse(req);
  resp.Set("session", Json::MakeString(*id));
  resp.Set("tier", Json::MakeString(QosTierName(*tier)));
  resp.Set("mode", Json::MakeString(*mode_name));
  resp.Set("num_tables", Json::MakeInt(int64_t(tables->size())));
  resp.Set("joins", JoinsToJson(joins));
  Json timing = Json::MakeObject();
  timing.Set("ucc_seconds", Json::MakeDouble(result->timing.ucc));
  timing.Set("ind_seconds", Json::MakeDouble(result->timing.ind));
  timing.Set("local_inference_seconds",
             Json::MakeDouble(result->timing.local_inference));
  timing.Set("global_predict_seconds",
             Json::MakeDouble(result->timing.global_predict));
  timing.Set("total_seconds", Json::MakeDouble(result->timing.Total()));
  timing.Set("threads", Json::MakeInt(result->timing.threads));
  resp.Set("timing", std::move(timing));
  if (*incremental) {
    Json inc = Json::MakeObject();
    inc.Set("used", Json::MakeBool(result->incremental.used));
    inc.Set("tables_reprofiled",
            Json::MakeInt(int64_t(result->incremental.tables_reprofiled)));
    inc.Set("tables_delta_merged",
            Json::MakeInt(int64_t(result->incremental.tables_delta_merged)));
    inc.Set("pairs_rescored",
            Json::MakeInt(int64_t(result->incremental.pairs_rescored)));
    inc.Set("pairs_reused",
            Json::MakeInt(int64_t(result->incremental.pairs_reused)));
    inc.Set("warm_start_used",
            Json::MakeBool(result->incremental.warm_start_used));
    resp.Set("incremental", std::move(inc));
  }
  // Lake-scale observability (PR 9): what the blocking stage pruned and how
  // the global solve partitioned. Cumulative engine-level sums feed the
  // stats verb.
  {
    const BlockingStats& b = result->ind_stats.blocking;
    Json blocking = Json::MakeObject();
    blocking.Set("column_pairs_total",
                 Json::MakeInt(int64_t(b.column_pairs_total)));
    blocking.Set("column_pairs_admitted",
                 Json::MakeInt(int64_t(b.column_pairs_admitted)));
    blocking.Set("column_pairs_pruned",
                 Json::MakeInt(int64_t(b.column_pairs_pruned)));
    blocking.Set("table_pairs_total",
                 Json::MakeInt(int64_t(b.table_pairs_total)));
    blocking.Set("table_pairs_active",
                 Json::MakeInt(int64_t(b.table_pairs_active)));
    blocking.Set("pruning_rate", Json::MakeDouble(b.PruningRate()));
    resp.Set("blocking", std::move(blocking));
    Json partition = Json::MakeObject();
    partition.Set("used", Json::MakeBool(result->partition.used));
    partition.Set("components",
                  Json::MakeInt(int64_t(result->partition.components)));
    partition.Set("components_solved",
                  Json::MakeInt(int64_t(result->partition.components_solved)));
    partition.Set(
        "largest_component_edges",
        Json::MakeInt(int64_t(result->partition.largest_component_edges)));
    resp.Set("partition", std::move(partition));
    blocked_pairs_ += int64_t(b.column_pairs_pruned);
    admitted_pairs_ += int64_t(b.column_pairs_admitted);
    components_solved_ += int64_t(result->partition.components_solved);
  }
  resp.Set("degraded", Json::MakeBool(result->degradation.Any()));
  if (result->degradation.Any()) {
    Json triggers = Json::MakeArray();
    for (const StageHealth* h :
         {&result->degradation.ucc, &result->degradation.ind,
          &result->degradation.local_inference,
          &result->degradation.global_predict}) {
      if (h->degraded) triggers.Append(Json::MakeString(h->trigger));
    }
    resp.Set("degradation", std::move(triggers));
  }
  resp.Set("cache", CacheStatsToJson(cache_.GetStats()));
  return resp;
}

Json ServeEngine::HandleGetModel(const Json& req) {
  StatusOr<std::string> id = req.GetString("session", std::string());
  if (!id.ok()) return MakeErrorResponse(&req, id.status());
  StatusOr<std::string> format = req.GetString("format", "json");
  if (!format.ok()) return MakeErrorResponse(&req, format.status());
  StatusOr<Session> snapshot = SnapshotSession(*id);
  if (!snapshot.ok()) return MakeErrorResponse(&req, snapshot.status());
  if (!snapshot->has_predicted) {
    return MakeErrorResponse(
        &req, Status::InvalidInput("session has no prediction yet (predict "
                                   "first)"));
  }
  const std::vector<Table>& tables = *snapshot->last_tables;
  StatusOr<std::string> content = Status::InvalidInput(
      StrFormat("unknown format '%s' (want json|dot|sql)", format->c_str()));
  if (*format == "json") {
    content = ExportJson(tables, snapshot->last_model);
  } else if (*format == "dot") {
    content = ExportDot(tables, snapshot->last_model);
  } else if (*format == "sql") {
    content = ExportSqlDdl(tables, snapshot->last_model);
  }
  if (!content.ok()) return MakeErrorResponse(&req, content.status());

  Json resp = OkResponse(req);
  resp.Set("format", Json::MakeString(*format));
  if (*format == "json") {
    // Embed the document as a JSON object so clients need not double-parse.
    StatusOr<Json> parsed = ParseJson(*content);
    if (!parsed.ok()) {
      return MakeErrorResponse(
          &req, Status::Internal("model export produced invalid JSON"));
    }
    resp.Set("model", std::move(*parsed));
  } else {
    resp.Set("content", Json::MakeString(*content));
  }
  return resp;
}

Json ServeEngine::HandleDiff(const Json& req) {
  StatusOr<std::string> id = req.GetString("session", std::string());
  if (!id.ok()) return MakeErrorResponse(&req, id.status());
  StatusOr<Session> snapshot = SnapshotSession(*id);
  if (!snapshot.ok()) return MakeErrorResponse(&req, snapshot.status());
  if (!snapshot->has_predicted) {
    return MakeErrorResponse(
        &req, Status::InvalidInput("session has no prediction yet (predict "
                                   "first)"));
  }
  // First prediction diffs against the empty model: everything is "added".
  ModelDiff diff = DiffJoinSets(snapshot->prev_joins, snapshot->last_joins);
  Json resp = OkResponse(req);
  resp.Set("against_previous", Json::MakeBool(snapshot->has_previous));
  resp.Set("added", JoinsToJson(diff.added));
  resp.Set("removed", JoinsToJson(diff.removed));
  return resp;
}

Json ServeEngine::HandlePublishModel(const Json& req) {
  StatusOr<std::string> id = req.GetString("session", std::string());
  if (!id.ok()) return MakeErrorResponse(&req, id.status());
  StatusOr<std::string> label = req.GetString("label", std::string());
  if (!label.ok()) return MakeErrorResponse(&req, label.status());
  StatusOr<Session> snapshot = SnapshotSession(*id);
  if (!snapshot.ok()) return MakeErrorResponse(&req, snapshot.status());
  if (!snapshot->has_predicted) {
    return MakeErrorResponse(
        &req, Status::InvalidInput("session has no prediction to publish"));
  }
  StatusOr<std::string> tenant = req.GetString("tenant", snapshot->tenant);
  if (!tenant.ok()) return MakeErrorResponse(&req, tenant.status());
  StatusOr<int64_t> version =
      catalog_.Publish(*tenant, *label, TablesContentHash(*snapshot->last_tables),
                       snapshot->last_joins);
  if (!version.ok()) return MakeErrorResponse(&req, version.status());
  Json resp = OkResponse(req);
  resp.Set("tenant", Json::MakeString(*tenant));
  resp.Set("version", Json::MakeInt(*version));
  return resp;
}

Json ServeEngine::HandleListModels(const Json& req) {
  StatusOr<std::string> tenant = req.GetString("tenant", "default");
  if (!tenant.ok()) return MakeErrorResponse(&req, tenant.status());
  Json resp = OkResponse(req);
  resp.Set("tenant", Json::MakeString(*tenant));
  Json arr = Json::MakeArray();
  for (const ModelSnapshot& s : catalog_.List(*tenant)) {
    Json obj = Json::MakeObject();
    obj.Set("version", Json::MakeInt(s.version));
    obj.Set("label", Json::MakeString(s.label));
    obj.Set("pinned", Json::MakeBool(s.pinned));
    obj.Set("num_joins", Json::MakeInt(int64_t(s.joins.size())));
    obj.Set("tables_hash",
            Json::MakeString(StrFormat(
                "%016llx", static_cast<unsigned long long>(s.tables_hash))));
    arr.Append(std::move(obj));
  }
  resp.Set("models", std::move(arr));
  return resp;
}

Json ServeEngine::HandlePinModel(const Json& req) {
  StatusOr<std::string> tenant = req.GetString("tenant", "default");
  if (!tenant.ok()) return MakeErrorResponse(&req, tenant.status());
  StatusOr<int64_t> version = req.GetInt("version", 0);
  if (!version.ok()) return MakeErrorResponse(&req, version.status());
  StatusOr<bool> pinned = req.GetBool("pinned", true);
  if (!pinned.ok()) return MakeErrorResponse(&req, pinned.status());
  Status status = catalog_.Pin(*tenant, *version, *pinned);
  if (!status.ok()) return MakeErrorResponse(&req, status);
  Json resp = OkResponse(req);
  resp.Set("version", Json::MakeInt(*version));
  resp.Set("pinned", Json::MakeBool(*pinned));
  return resp;
}

Json ServeEngine::HandleDiffModels(const Json& req) {
  StatusOr<std::string> tenant = req.GetString("tenant", "default");
  if (!tenant.ok()) return MakeErrorResponse(&req, tenant.status());
  StatusOr<int64_t> from = req.GetInt("from", 0);
  if (!from.ok()) return MakeErrorResponse(&req, from.status());
  StatusOr<int64_t> to = req.GetInt("to", 0);
  if (!to.ok()) return MakeErrorResponse(&req, to.status());
  StatusOr<ModelDiff> diff = catalog_.Diff(*tenant, *from, *to);
  if (!diff.ok()) return MakeErrorResponse(&req, diff.status());
  Json resp = OkResponse(req);
  resp.Set("added", JoinsToJson(diff->added));
  resp.Set("removed", JoinsToJson(diff->removed));
  return resp;
}

Json ServeEngine::HandleGetCatalogModel(const Json& req) {
  StatusOr<std::string> tenant = req.GetString("tenant", "default");
  if (!tenant.ok()) return MakeErrorResponse(&req, tenant.status());
  StatusOr<int64_t> version = req.GetInt("version", 0);
  if (!version.ok()) return MakeErrorResponse(&req, version.status());
  StatusOr<ModelSnapshot> snap = catalog_.Get(*tenant, *version);
  if (!snap.ok()) return MakeErrorResponse(&req, snap.status());
  Json resp = OkResponse(req);
  resp.Set("version", Json::MakeInt(snap->version));
  resp.Set("label", Json::MakeString(snap->label));
  resp.Set("pinned", Json::MakeBool(snap->pinned));
  resp.Set("tables_hash",
           Json::MakeString(StrFormat(
               "%016llx", static_cast<unsigned long long>(snap->tables_hash))));
  resp.Set("joins", JoinsToJson(snap->joins));
  return resp;
}

Json ServeEngine::HandleStats(const Json& req) {
  Json resp = OkResponse(req);
  {
    std::lock_guard<std::mutex> lock(mu_);
    resp.Set("sessions", Json::MakeInt(int64_t(sessions_.size())));
  }
  resp.Set("requests", Json::MakeInt(requests_.load()));
  resp.Set("errors", Json::MakeInt(errors_.load()));
  resp.Set("predicts", Json::MakeInt(predicts_.load()));
  resp.Set("cache", CacheStatsToJson(cache_.GetStats()));
  Json admission = Json::MakeObject();
  admission.Set("inflight", Json::MakeInt(gate_.inflight()));
  admission.Set("queued", Json::MakeInt(gate_.queued()));
  admission.Set("admitted", Json::MakeInt(gate_.admitted()));
  admission.Set("rejected", Json::MakeInt(gate_.rejected()));
  admission.Set("queue_wait_total_seconds",
                Json::MakeDouble(gate_.queue_wait_total_seconds()));
  admission.Set("queue_wait_max_seconds",
                Json::MakeDouble(gate_.queue_wait_max_seconds()));
  admission.Set("max_inflight", Json::MakeInt(options_.max_inflight));
  admission.Set("max_queue", Json::MakeInt(options_.max_queue));
  resp.Set("admission", std::move(admission));
  Json blocking = Json::MakeObject();
  blocking.Set("column_pairs_pruned", Json::MakeInt(blocked_pairs_.load()));
  blocking.Set("column_pairs_admitted", Json::MakeInt(admitted_pairs_.load()));
  blocking.Set("components_solved", Json::MakeInt(components_solved_.load()));
  resp.Set("blocking", std::move(blocking));
  DurabilityStats dur = catalog_.durability();
  Json durability = Json::MakeObject();
  durability.Set("enabled", Json::MakeBool(dur.enabled));
  durability.Set("generation", Json::MakeInt(int64_t(dur.generation)));
  durability.Set("recovered_versions", Json::MakeInt(dur.recovered_versions));
  durability.Set("recovered_tenants", Json::MakeInt(dur.recovered_tenants));
  durability.Set("discarded_records", Json::MakeInt(dur.discarded_records));
  durability.Set("journal_records", Json::MakeInt(dur.journal_records));
  durability.Set("journal_commits", Json::MakeInt(dur.journal_commits));
  durability.Set("journal_errors", Json::MakeInt(dur.journal_errors));
  durability.Set("snapshots_written", Json::MakeInt(dur.snapshots_written));
  resp.Set("durability", std::move(durability));
  return resp;
}

Json ServeEngine::HandleShutdown(const Json& req) {
  shutdown_.store(true, std::memory_order_release);
  // Flush-on-shutdown: the final commit barrier happens while the response
  // is still pending, so an acked shutdown implies durable state.
  Status flushed = FlushState();
  std::function<void()> callback;
  {
    std::lock_guard<std::mutex> lock(hook_mu_);
    callback = shutdown_callback_;
  }
  if (callback) callback();
  Json resp = OkResponse(req);
  resp.Set("shutting_down", Json::MakeBool(true));
  resp.Set("state_flushed", Json::MakeBool(flushed.ok()));
  return resp;
}

}  // namespace autobi
