#include "serve/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/fs.h"
#include "common/strings.h"
#include "fuzz/faultpoints.h"

namespace autobi {

namespace {

// CRC32C lookup table (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78),
// generated once on first use.
const uint32_t* Crc32cTable() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

constexpr size_t kHeaderSize = 4 + 4 + 8;  // length + crc + generation

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(char((v >> (8 * i)) & 0xFF));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(char((v >> (8 * i)) & 0xFF));
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= uint32_t(uint8_t(p[i])) << (8 * i);
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= uint64_t(uint8_t(p[i])) << (8 * i);
  return v;
}

Status WriteAllFd(int fd, const char* data, size_t size) {
  size_t off = 0;
  while (off < size) {
    ssize_t w = ::write(fd, data + off, size - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(
          StrFormat("journal write failed: %s", std::strerror(errno)));
    }
    off += size_t(w);
  }
  return Status::Ok();
}

}  // namespace

uint32_t Crc32c(const void* data, size_t size) {
  const uint32_t* table = Crc32cTable();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ p[i]) & 0xFF];
  }
  return crc ^ 0xFFFFFFFFu;
}

void AppendFramedRecord(std::string* out, uint64_t generation,
                        std::string_view payload) {
  PutU32(out, uint32_t(payload.size()));
  PutU32(out, Crc32c(payload.data(), payload.size()));
  PutU64(out, generation);
  out->append(payload.data(), payload.size());
}

LogReadResult DecodeRecords(std::string_view bytes, uint64_t generation) {
  LogReadResult result;
  size_t off = 0;
  while (off < bytes.size()) {
    if (bytes.size() - off < kHeaderSize) break;  // torn header
    const char* header = bytes.data() + off;
    uint32_t size = GetU32(header);
    uint32_t crc = GetU32(header + 4);
    uint64_t gen = GetU64(header + 8);
    if (gen != generation) break;  // stale or damaged epoch stamp
    if (bytes.size() - off - kHeaderSize < size) break;  // torn payload
    const char* payload = header + kHeaderSize;
    if (Crc32c(payload, size) != crc) break;  // corrupt record
    result.offsets.push_back(off);
    result.payloads.emplace_back(payload, size);
    off += kHeaderSize + size;
  }
  result.valid_bytes = off;
  if (off < bytes.size()) result.discarded_records = 1;
  return result;
}

RecordLog::~RecordLog() { Close(); }

Status RecordLog::Open(const std::string& path, uint64_t generation,
                       size_t committed_size) {
  Close();
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd < 0) {
    return Status::Internal(StrFormat("cannot open journal %s: %s",
                                      path.c_str(), std::strerror(errno)));
  }
  // Drop any torn tail left by a crash before appending behind it.
  if (::ftruncate(fd, off_t(committed_size)) != 0 ||
      ::lseek(fd, off_t(committed_size), SEEK_SET) < 0) {
    Status status = Status::Internal(StrFormat(
        "cannot truncate journal %s: %s", path.c_str(), std::strerror(errno)));
    ::close(fd);
    return status;
  }
  fd_ = fd;
  broken_ = false;
  generation_ = generation;
  committed_size_ = committed_size;
  pending_size_ = committed_size;
  path_ = path;
  return Status::Ok();
}

void RecordLog::RollbackLocked() {
  if (fd_ < 0) return;
  if (::ftruncate(fd_, off_t(committed_size_)) != 0 ||
      ::lseek(fd_, off_t(committed_size_), SEEK_SET) < 0) {
    // The file may now hold bytes we cannot account for; refuse further
    // writes rather than risk acking records behind garbage.
    broken_ = true;
    return;
  }
  pending_size_ = committed_size_;
}

Status RecordLog::Append(std::string_view payload) {
  if (fd_ < 0) return Status::Internal("journal is not open");
  if (broken_) return Status::Internal("journal is broken (failed rollback)");
  std::string frame;
  frame.reserve(kHeaderSize + payload.size());
  AppendFramedRecord(&frame, generation_, payload);
  FaultPoints& faults = FaultPoints::Global();
  if (faults.Fire("journal.corrupt")) {
    // Model a silently damaged write: the record is acked and counted as
    // committed, but a byte on disk is wrong. Recovery must detect it via
    // CRC and discard it (and everything after) — the acked-prefix case.
    size_t pos = size_t(faults.Fraction("journal.corrupt") * frame.size());
    if (pos >= frame.size()) pos = frame.size() - 1;
    frame[pos] = char(frame[pos] ^ 0x20);
  }
  if (faults.Fire("journal.short_write")) {
    size_t cut = size_t(faults.Fraction("journal.short_write") * frame.size());
    Status ignored = WriteAllFd(fd_, frame.data(), cut);
    (void)ignored;
    RollbackLocked();
    return Status::Internal("injected short write on journal append");
  }
  Status written = WriteAllFd(fd_, frame.data(), frame.size());
  if (!written.ok()) {
    RollbackLocked();
    return written;
  }
  pending_size_ += frame.size();
  return Status::Ok();
}

Status RecordLog::Commit() {
  if (fd_ < 0) return Status::Internal("journal is not open");
  if (broken_) return Status::Internal("journal is broken (failed rollback)");
  if (FaultPoints::Global().Fire("journal.fsync")) {
    RollbackLocked();
    return Status::Internal("injected fsync fault on journal commit");
  }
  // fdatasync suffices: record framing never changes the file's metadata
  // beyond its size, which fdatasync covers.
  if (::fdatasync(fd_) != 0) {
    Status status = Status::Internal(
        StrFormat("journal fsync failed: %s", std::strerror(errno)));
    RollbackLocked();
    return status;
  }
  committed_size_ = pending_size_;
  return Status::Ok();
}

void RecordLog::Close() {
  if (fd_ >= 0) {
    // Uncommitted bytes must not outlive the writer that promised to roll
    // them back.
    if (pending_size_ != committed_size_) RollbackLocked();
    ::close(fd_);
  }
  fd_ = -1;
  broken_ = false;
  committed_size_ = 0;
  pending_size_ = 0;
  path_.clear();
}

Status WriteSnapshotFile(const std::string& path, uint64_t generation,
                         std::string_view payload) {
  std::string framed;
  framed.reserve(kHeaderSize + payload.size());
  AppendFramedRecord(&framed, generation, payload);
  return WriteFileAtomic(path, framed);
}

SnapshotReadResult ReadSnapshotFile(const std::string& path) {
  SnapshotReadResult result;
  if (::access(path.c_str(), F_OK) != 0) return result;
  result.found = true;
  StatusOr<std::string> bytes = ReadFileToString(path);
  if (!bytes.ok()) {
    result.corrupt = true;
    return result;
  }
  const std::string& data = *bytes;
  if (data.size() < kHeaderSize) {
    result.corrupt = true;
    return result;
  }
  uint32_t size = GetU32(data.data());
  uint32_t crc = GetU32(data.data() + 4);
  uint64_t gen = GetU64(data.data() + 8);
  if (data.size() != kHeaderSize + size ||
      Crc32c(data.data() + kHeaderSize, size) != crc) {
    result.corrupt = true;
    return result;
  }
  result.generation = gen;
  result.payload.assign(data.data() + kHeaderSize, size);
  return result;
}

}  // namespace autobi
