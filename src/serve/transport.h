#ifndef AUTOBI_SERVE_TRANSPORT_H_
#define AUTOBI_SERVE_TRANSPORT_H_

#include <string>

#include "common/status.h"
#include "serve/engine.h"

namespace autobi {

// Newline-delimited JSON transports for ServeEngine (POSIX only, no
// dependencies). Both run until EOF or until the engine accepts a
// `shutdown` request. Framing: one request per input line, one response
// per output line; blank lines are ignored.

// Serves over stdin/stdout — the mode `autobi_serve --stdio` runs in, and
// the easiest way to drive the daemon from a shell pipeline.
Status RunStdioServer(ServeEngine* engine);

// Binds (and, on exit, unlinks) a unix-domain socket at `path` and serves
// each accepted connection on its own thread. Concurrency across
// connections is bounded by the engine's admission gate, not the transport.
// Shutdown is immediate: an accepted `shutdown` request wakes the accept
// loop and every idle connection through a self-pipe (no polling interval),
// and the engine flushes its durable state before the shutdown response is
// written.
Status RunUnixSocketServer(ServeEngine* engine, const std::string& path);

}  // namespace autobi

#endif  // AUTOBI_SERVE_TRANSPORT_H_
