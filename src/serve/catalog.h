#ifndef AUTOBI_SERVE_CATALOG_H_
#define AUTOBI_SERVE_CATALOG_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/bi_model.h"
#include "table/table.h"

namespace autobi {

// A join endpoint resolved to names. A BiModel's joins reference tables by
// index into one specific upload order; the catalog outlives sessions, so it
// stores name-resolved joins instead — two sessions that upload the same
// schema in different orders publish comparable snapshots.
struct NamedColumnRef {
  std::string table;
  std::vector<std::string> columns;

  bool operator==(const NamedColumnRef& o) const {
    return table == o.table && columns == o.columns;
  }
  bool operator<(const NamedColumnRef& o) const {
    if (table != o.table) return table < o.table;
    return columns < o.columns;
  }
  // "Orders(cust_id)"
  std::string ToString() const;
};

struct NamedJoin {
  NamedColumnRef from;
  NamedColumnRef to;
  JoinKind kind = JoinKind::kNToOne;

  // 1:1 joins oriented with the smaller endpoint first, mirroring
  // Join::Normalized(), so equality is orientation-insensitive.
  NamedJoin Normalized() const;
  bool operator==(const NamedJoin& o) const;
  // "Orders(cust_id) -> Customers(id) [N:1]"
  std::string ToString() const;
};

// Resolves a model's index-based joins against its table set. The model must
// already be structurally valid for `tables` (see ValidateBiModel); callers
// in the serving layer validate before publishing.
std::vector<NamedJoin> NameJoins(const std::vector<Table>& tables,
                                 const BiModel& model);

// One published model version.
struct ModelSnapshot {
  int64_t version = 0;  // Per-tenant, dense from 1, never reused.
  std::string label;
  bool pinned = false;        // Pinned snapshots are exempt from eviction.
  uint64_t tables_hash = 0;   // TablesContentHash of the source table set.
  std::vector<NamedJoin> joins;  // Normalized, sorted.
};

// Symmetric difference between two snapshots' join sets.
struct ModelDiff {
  std::vector<NamedJoin> added;    // In `to` but not `from`.
  std::vector<NamedJoin> removed;  // In `from` but not `to`.
};

ModelDiff DiffJoinSets(const std::vector<NamedJoin>& from,
                       const std::vector<NamedJoin>& to);

// Thread-safe versioned store of published model snapshots, partitioned by
// tenant (the serving protocol defaults the tenant to "default"). Versions
// are assigned per tenant in publish order. Capacity is bounded: when a
// tenant exceeds `max_unpinned_per_tenant` unpinned snapshots, the oldest
// unpinned one is evicted (pins are durable within the process lifetime —
// there is no persistence across daemon restarts).
class ModelCatalog {
 public:
  explicit ModelCatalog(size_t max_unpinned_per_tenant = 32);

  // Returns the assigned version (>= 1).
  int64_t Publish(const std::string& tenant, std::string label,
                  uint64_t tables_hash, std::vector<NamedJoin> joins);

  // version <= 0 means "latest". kInvalidInput when the tenant or version
  // does not exist (including evicted versions).
  StatusOr<ModelSnapshot> Get(const std::string& tenant,
                              int64_t version) const;

  Status Pin(const std::string& tenant, int64_t version, bool pinned);

  // Snapshots in ascending version order (empty for unknown tenants).
  std::vector<ModelSnapshot> List(const std::string& tenant) const;

  // Joins added/removed going from version `from` to version `to`.
  StatusOr<ModelDiff> Diff(const std::string& tenant, int64_t from,
                           int64_t to) const;

 private:
  struct Tenant {
    int64_t next_version = 1;
    std::vector<ModelSnapshot> snapshots;  // Ascending version.
  };

  // Requires lock. nullptr when absent; resolves version <= 0 to latest.
  const ModelSnapshot* FindLocked(const std::string& tenant,
                                  int64_t version) const;

  const size_t max_unpinned_per_tenant_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Tenant> tenants_;
};

}  // namespace autobi

#endif  // AUTOBI_SERVE_CATALOG_H_
