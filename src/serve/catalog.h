#ifndef AUTOBI_SERVE_CATALOG_H_
#define AUTOBI_SERVE_CATALOG_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/bi_model.h"
#include "serve/journal.h"
#include "table/table.h"

namespace autobi {

// A join endpoint resolved to names. A BiModel's joins reference tables by
// index into one specific upload order; the catalog outlives sessions, so it
// stores name-resolved joins instead — two sessions that upload the same
// schema in different orders publish comparable snapshots.
struct NamedColumnRef {
  std::string table;
  std::vector<std::string> columns;

  bool operator==(const NamedColumnRef& o) const {
    return table == o.table && columns == o.columns;
  }
  bool operator<(const NamedColumnRef& o) const {
    if (table != o.table) return table < o.table;
    return columns < o.columns;
  }
  // "Orders(cust_id)"
  std::string ToString() const;
};

struct NamedJoin {
  NamedColumnRef from;
  NamedColumnRef to;
  JoinKind kind = JoinKind::kNToOne;

  // 1:1 joins oriented with the smaller endpoint first, mirroring
  // Join::Normalized(), so equality is orientation-insensitive.
  NamedJoin Normalized() const;
  bool operator==(const NamedJoin& o) const;
  // "Orders(cust_id) -> Customers(id) [N:1]"
  std::string ToString() const;
};

// Resolves a model's index-based joins against its table set. The model must
// already be structurally valid for `tables` (see ValidateBiModel); callers
// in the serving layer validate before publishing.
std::vector<NamedJoin> NameJoins(const std::vector<Table>& tables,
                                 const BiModel& model);

// One published model version.
struct ModelSnapshot {
  int64_t version = 0;  // Per-tenant, dense from 1, never reused.
  std::string label;
  bool pinned = false;        // Pinned snapshots are exempt from eviction.
  uint64_t tables_hash = 0;   // TablesContentHash of the source table set.
  std::vector<NamedJoin> joins;  // Normalized, sorted.
};

// Symmetric difference between two snapshots' join sets.
struct ModelDiff {
  std::vector<NamedJoin> added;    // In `to` but not `from`.
  std::vector<NamedJoin> removed;  // In `from` but not `to`.
};

ModelDiff DiffJoinSets(const std::vector<NamedJoin>& from,
                       const std::vector<NamedJoin>& to);

// Thread-safe versioned store of published model snapshots, partitioned by
// tenant (the serving protocol defaults the tenant to "default"). Versions
// are assigned per tenant in publish order. Capacity is bounded: when a
// tenant exceeds `max_unpinned_per_tenant` unpinned snapshots, the oldest
// unpinned one is evicted.
//
// Durability: OpenStateDir attaches a write-ahead journal (serve/journal.h)
// so publishes, pins and evictions survive a crash or restart. Every
// mutation is framed, CRC32C-checksummed, appended and fsync'd BEFORE the
// in-memory state changes — a mutation that cannot be made durable is
// rejected with kInternal and leaves both memory and disk untouched. Every
// `compact_every` committed operations the catalog writes an atomic
// snapshot of its full state (common/fs.h WriteFileAtomic) stamped with a
// new generation and switches to a fresh `journal.<generation>` file; a
// failed compaction is non-fatal (the old journal keeps growing and
// compaction is retried). Without OpenStateDir the catalog behaves exactly
// as before: in-memory only, nothing survives the process.
class ModelCatalog {
 public:
  explicit ModelCatalog(size_t max_unpinned_per_tenant = 32);
  ~ModelCatalog();

  // Attaches `dir` (created if missing) and recovers any state in it:
  // replays the snapshot, then the journal suffix, silently discarding a
  // torn/short/corrupt tail (that is crash debris, not an error — see
  // DurabilityStats::discarded_records). Call once, before serving traffic.
  Status OpenStateDir(const std::string& dir, size_t compact_every = 64);

  // Returns the assigned version (>= 1). kInternal when the journal append
  // or commit fails — nothing was published.
  StatusOr<int64_t> Publish(const std::string& tenant, std::string label,
                            uint64_t tables_hash,
                            std::vector<NamedJoin> joins);

  // version <= 0 means "latest". kInvalidInput when the tenant or version
  // does not exist (including evicted versions).
  StatusOr<ModelSnapshot> Get(const std::string& tenant,
                              int64_t version) const;

  // kInternal when journaling the pin fails — the pin did not take effect.
  Status Pin(const std::string& tenant, int64_t version, bool pinned);

  // Snapshots in ascending version order (empty for unknown tenants).
  std::vector<ModelSnapshot> List(const std::string& tenant) const;

  // Joins added/removed going from version `from` to version `to`.
  StatusOr<ModelDiff> Diff(const std::string& tenant, int64_t from,
                           int64_t to) const;

  // Final fsync barrier for clean shutdown. No-op without a state dir.
  Status Flush();

  DurabilityStats durability() const;

 private:
  struct Tenant {
    int64_t next_version = 1;
    std::vector<ModelSnapshot> snapshots;  // Ascending version.
  };

  // Requires lock. nullptr when absent; resolves version <= 0 to latest.
  const ModelSnapshot* FindLocked(const std::string& tenant,
                                  int64_t version) const;

  // Requires lock. Serializes the full catalog state (deterministic tenant
  // order) for the compacted snapshot file.
  std::string EncodeStateLocked() const;

  // Requires lock. Applies one replayed journal operation. kInvalidInput on
  // an undecodable record — replay stops there and truncates.
  Status ApplyOpLocked(const std::string& payload);

  // Requires lock. Writes a new-generation snapshot + journal if due;
  // failures are swallowed (compaction retries on a later mutation).
  void MaybeCompactLocked();

  const size_t max_unpinned_per_tenant_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Tenant> tenants_;

  // Durability state (all guarded by mu_). journal_ is null when no state
  // dir is attached.
  std::string state_dir_;
  size_t compact_every_ = 64;
  size_t ops_since_compact_ = 0;
  std::unique_ptr<RecordLog> journal_;
  DurabilityStats stats_;
};

}  // namespace autobi

#endif  // AUTOBI_SERVE_CATALOG_H_
