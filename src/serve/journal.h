#ifndef AUTOBI_SERVE_JOURNAL_H_
#define AUTOBI_SERVE_JOURNAL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace autobi {

// Crash-safe record log + snapshot primitives backing the durable model
// catalog (serve/catalog.h, SERVING.md "Durability & recovery").
//
// Record framing (little-endian, fixed-width header):
//   [u32 payload_size][u32 crc32c(payload)][u64 generation][payload bytes]
// The generation stamps which snapshot epoch a record belongs to: each
// compaction bumps it and starts a fresh `journal.<generation>` file, so a
// crash between "snapshot renamed" and "old journal removed" can never
// replay stale records. Torn, short, or checksum-failing tails are data a
// crash legitimately produces — readers discard them silently and keep the
// committed prefix; they are never an error.

// CRC32C (Castagnoli polynomial), software table implementation. Chosen
// over plain CRC32 for its better burst-error detection on the short
// records the journal writes.
uint32_t Crc32c(const void* data, size_t size);

// Appends one framed record to `out`.
void AppendFramedRecord(std::string* out, uint64_t generation,
                        std::string_view payload);

struct LogReadResult {
  std::vector<std::string> payloads;  // Committed records, in append order.
  std::vector<size_t> offsets;        // Byte offset where payloads[i] starts.
  size_t valid_bytes = 0;             // Length of the decodable prefix.
  long discarded_records = 0;  // 1 when a torn/corrupt tail was dropped.
};

// Tolerant log reader: decodes records until the first short, torn,
// CRC-mismatched, or wrong-generation record and stops there. Never errors
// — a damaged tail yields the committed prefix plus discarded_records == 1.
LogReadResult DecodeRecords(std::string_view bytes, uint64_t generation);

// Append-only record log with explicit fsync commit barriers. Usage:
// Append() one or more records, then Commit() — only after Commit returns
// OK are those records durable (write-ahead contract: callers apply the
// mutation in memory only after the commit). On any append/commit failure
// the log rolls the file back to the last committed byte, so the on-disk
// log always holds exactly the committed records (a real crash, not a
// reported error, is what produces torn tails).
//
// Fault points (src/fuzz/faultpoints.h): `journal.short_write` persists only
// a prefix of the record before failing, `journal.corrupt` silently flips a
// byte in the framed record (an acked-but-damaged record recovery must
// discard), `journal.fsync` fails the commit barrier.
class RecordLog {
 public:
  RecordLog() = default;
  ~RecordLog();
  RecordLog(const RecordLog&) = delete;
  RecordLog& operator=(const RecordLog&) = delete;

  // Opens (creating if needed) `path` for appending. `committed_size` is
  // the length of the valid record prefix (from DecodeRecords); anything
  // after it — a torn tail from a crash — is truncated away so new records
  // never land behind garbage.
  Status Open(const std::string& path, uint64_t generation,
              size_t committed_size);

  // Appends one framed record (not yet durable).
  Status Append(std::string_view payload);

  // fsync barrier: all appended records are durable once this returns OK.
  Status Commit();

  void Close();
  bool is_open() const { return fd_ >= 0; }
  uint64_t generation() const { return generation_; }
  const std::string& path() const { return path_; }

 private:
  // Restores the file to the last committed byte after a failed append or
  // commit; marks the log broken if even that is impossible.
  void RollbackLocked();

  int fd_ = -1;
  bool broken_ = false;
  uint64_t generation_ = 0;
  size_t committed_size_ = 0;
  size_t pending_size_ = 0;
  std::string path_;
};

// One framed record written atomically (common/fs.h WriteFileAtomic), used
// for the compacted catalog snapshot. Readers see either the previous
// snapshot or the complete new one.
Status WriteSnapshotFile(const std::string& path, uint64_t generation,
                         std::string_view payload);

struct SnapshotReadResult {
  bool found = false;    // File exists.
  bool corrupt = false;  // Exists but fails framing/CRC validation.
  uint64_t generation = 0;
  std::string payload;
};

// Never errors: a missing file reads as found == false, a damaged one as
// corrupt == true.
SnapshotReadResult ReadSnapshotFile(const std::string& path);

// Recovery + runtime counters for the `stats` verb and operator logs.
struct DurabilityStats {
  bool enabled = false;         // A state dir is attached.
  uint64_t generation = 0;      // Current snapshot epoch.
  long recovered_versions = 0;  // Live model versions restored on open.
  long recovered_tenants = 0;   // Tenants restored on open.
  long discarded_records = 0;   // Torn/corrupt journal records dropped.
  long journal_records = 0;     // Records appended since open.
  long journal_commits = 0;     // fsync barriers since open.
  long journal_errors = 0;      // Rejected mutations (log rolled back).
  long snapshots_written = 0;   // Compactions since open.
};

}  // namespace autobi

#endif  // AUTOBI_SERVE_JOURNAL_H_
