// autobi_serve: the long-lived Auto-BI prediction daemon (SERVING.md).
//
// Wraps a trained LocalModel behind the session protocol — CreateSession ->
// UploadTable* -> Predict -> GetModel/Diff -> CloseSession — over
// newline-delimited JSON on stdin/stdout (--stdio) or a unix-domain socket
// (--socket PATH). Cross-request content-hash caches make re-predicting a
// mostly-unchanged schema skip the profiling/UCC bottleneck for unchanged
// tables.
//
// Usage:
//   autobi_serve --stdio
//   autobi_serve --socket /tmp/autobi.sock --threads 4
//   autobi_serve --model forests.bin --socket /tmp/autobi.sock
//   autobi_serve --socket /tmp/autobi.sock --state_dir /var/lib/autobi
//
// With --state_dir the model catalog (published versions, labels, pins) is
// journaled and survives crashes and restarts; see SERVING.md "Durability &
// recovery".

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/local_model.h"
#include "core/trainer.h"
#include "serve/engine.h"
#include "serve/transport.h"
#include "synth/corpus.h"

namespace {

void PrintUsage() {
  std::fprintf(stderr,
               "usage: autobi_serve [--stdio | --socket PATH] [options]\n"
               "  --model PATH      load trained forests (default: train on\n"
               "                    the synthetic corpus at startup)\n"
               "  --train_cases N   synthetic training-corpus size (240)\n"
               "  --threads N       worker threads per predict (0 = auto)\n"
               "  --max_inflight N  concurrent predicts (4)\n"
               "  --max_queue N     waiting predicts before rejection (16)\n"
               "  --state_dir PATH  journal the model catalog to PATH and\n"
               "                    recover it on boot (default: in-memory)\n");
}

bool ParseInt(const char* text, long* out) {
  char* end = nullptr;
  long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || v < 0) return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string model_path;
  std::string socket_path;
  bool stdio = false;
  long train_cases = 240;
  autobi::ServeOptions options;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "autobi_serve: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    long v = 0;
    if (arg == "--stdio") {
      stdio = true;
    } else if (arg == "--socket") {
      socket_path = next("--socket");
    } else if (arg == "--model") {
      model_path = next("--model");
    } else if (arg == "--train_cases") {
      if (!ParseInt(next("--train_cases"), &train_cases)) {
        std::fprintf(stderr, "autobi_serve: bad --train_cases\n");
        return 2;
      }
    } else if (arg == "--threads") {
      if (!ParseInt(next("--threads"), &v)) {
        std::fprintf(stderr, "autobi_serve: bad --threads\n");
        return 2;
      }
      options.threads = int(v);
    } else if (arg == "--max_inflight") {
      if (!ParseInt(next("--max_inflight"), &v)) {
        std::fprintf(stderr, "autobi_serve: bad --max_inflight\n");
        return 2;
      }
      options.max_inflight = int(v);
    } else if (arg == "--max_queue") {
      if (!ParseInt(next("--max_queue"), &v)) {
        std::fprintf(stderr, "autobi_serve: bad --max_queue\n");
        return 2;
      }
      options.max_queue = int(v);
    } else if (arg == "--state_dir") {
      options.state_dir = next("--state_dir");
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else {
      std::fprintf(stderr, "autobi_serve: unknown flag '%s'\n", arg.c_str());
      PrintUsage();
      return 2;
    }
  }
  // Exactly one transport; stdio is the default when neither is given.
  if (stdio && !socket_path.empty()) {
    std::fprintf(stderr,
                 "autobi_serve: pass exactly one of --stdio / --socket\n");
    return 2;
  }
  if (!stdio && socket_path.empty()) stdio = true;

  autobi::LocalModel model;
  if (!model_path.empty()) {
    if (!model.LoadFromFile(model_path)) {
      std::fprintf(stderr, "autobi_serve: cannot load model '%s'\n",
                   model_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "autobi_serve: loaded model from %s\n",
                 model_path.c_str());
  } else {
    // No model file: train on the synthetic corpus (a few seconds). For
    // production-style startup, train once with autobi_train and pass
    // --model.
    std::fprintf(stderr,
                 "autobi_serve: training on %ld synthetic cases...\n",
                 train_cases);
    autobi::CorpusOptions corpus_options;
    corpus_options.training_cases = size_t(train_cases);
    model = autobi::TrainLocalModel(
        autobi::BuildTrainingCorpus(corpus_options));
    std::fprintf(stderr, "autobi_serve: training done\n");
  }

  autobi::ServeEngine engine(&model, options);
  if (!options.state_dir.empty()) {
    autobi::Status recovered = engine.RecoverState();
    if (!recovered.ok()) {
      std::fprintf(stderr, "autobi_serve: state recovery failed: %s\n",
                   recovered.ToString().c_str());
      return 1;
    }
    autobi::DurabilityStats dur = engine.durability();
    std::fprintf(stderr,
                 "autobi_serve: recovered %ld model version(s) across %ld "
                 "tenant(s) from %s (generation %llu, %ld discarded "
                 "record(s))\n",
                 dur.recovered_versions, dur.recovered_tenants,
                 options.state_dir.c_str(),
                 static_cast<unsigned long long>(dur.generation),
                 dur.discarded_records);
  }
  autobi::Status status;
  if (stdio) {
    status = autobi::RunStdioServer(&engine);
  } else {
    std::fprintf(stderr, "autobi_serve: listening on %s\n",
                 socket_path.c_str());
    status = autobi::RunUnixSocketServer(&engine, socket_path);
  }
  if (!status.ok()) {
    std::fprintf(stderr, "autobi_serve: %s\n", status.ToString().c_str());
    return 1;
  }
  // Final fsync barrier after the transport drains (HandleShutdown already
  // flushed once; this also covers EOF-driven stdio exits).
  autobi::Status flushed = engine.FlushState();
  if (!flushed.ok()) {
    std::fprintf(stderr, "autobi_serve: state flush failed: %s\n",
                 flushed.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "autobi_serve: clean shutdown\n");
  return 0;
}
