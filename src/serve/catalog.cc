#include "serve/catalog.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/fs.h"
#include "common/strings.h"
#include "serve/json.h"

namespace autobi {

std::string NamedColumnRef::ToString() const {
  std::string out = table;
  out.push_back('(');
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += columns[i];
  }
  out.push_back(')');
  return out;
}

NamedJoin NamedJoin::Normalized() const {
  NamedJoin j = *this;
  if (j.kind == JoinKind::kOneToOne && j.to < j.from) {
    std::swap(j.from, j.to);
  }
  return j;
}

bool NamedJoin::operator==(const NamedJoin& o) const {
  NamedJoin a = Normalized();
  NamedJoin b = o.Normalized();
  return a.kind == b.kind && a.from == b.from && a.to == b.to;
}

std::string NamedJoin::ToString() const {
  return StrFormat("%s -> %s [%s]", from.ToString().c_str(),
                   to.ToString().c_str(),
                   kind == JoinKind::kOneToOne ? "1:1" : "N:1");
}

namespace {

NamedColumnRef NameRef(const std::vector<Table>& tables,
                       const ColumnRef& ref) {
  NamedColumnRef out;
  const Table& t = tables[size_t(ref.table)];
  out.table = t.name();
  out.columns.reserve(ref.columns.size());
  for (int c : ref.columns) out.columns.push_back(t.column(size_t(c)).name());
  return out;
}

bool NamedJoinLess(const NamedJoin& a, const NamedJoin& b) {
  if (!(a.from == b.from)) return a.from < b.from;
  if (!(a.to == b.to)) return a.to < b.to;
  return int(a.kind) < int(b.kind);
}

// --- Journal payload encoding. Payloads are single-line JSON (serve/json.h)
// so journal files are greppable during an incident. tables_hash is a hex
// string: the wire Json int is signed 64-bit and content hashes use the
// full unsigned range.

Json ColumnRefToJson(const NamedColumnRef& ref) {
  Json j = Json::MakeObject();
  j.Set("table", Json::MakeString(ref.table));
  Json& cols = j.Set("columns", Json::MakeArray());
  for (const std::string& c : ref.columns) cols.Append(Json::MakeString(c));
  return j;
}

StatusOr<NamedColumnRef> ColumnRefFromJson(const Json& j) {
  if (!j.is_object()) return Status::InvalidInput("column ref not an object");
  NamedColumnRef ref;
  AUTOBI_ASSIGN_OR_RETURN(ref.table, j.GetString("table", ""));
  const Json* cols = j.Find("columns");
  if (cols == nullptr || !cols->is_array()) {
    return Status::InvalidInput("column ref without columns array");
  }
  for (size_t i = 0; i < cols->size(); ++i) {
    if (!cols->at(i).is_string()) {
      return Status::InvalidInput("column name not a string");
    }
    ref.columns.push_back(cols->at(i).AsString());
  }
  return ref;
}

Json JoinToJson(const NamedJoin& join) {
  Json j = Json::MakeObject();
  j.Set("from", ColumnRefToJson(join.from));
  j.Set("to", ColumnRefToJson(join.to));
  j.Set("kind", Json::MakeString(join.kind == JoinKind::kOneToOne ? "1:1"
                                                                  : "N:1"));
  return j;
}

StatusOr<NamedJoin> JoinFromJson(const Json& j) {
  if (!j.is_object()) return Status::InvalidInput("join not an object");
  NamedJoin join;
  const Json* from = j.Find("from");
  const Json* to = j.Find("to");
  if (from == nullptr || to == nullptr) {
    return Status::InvalidInput("join without endpoints");
  }
  AUTOBI_ASSIGN_OR_RETURN(join.from, ColumnRefFromJson(*from));
  AUTOBI_ASSIGN_OR_RETURN(join.to, ColumnRefFromJson(*to));
  std::string kind;
  AUTOBI_ASSIGN_OR_RETURN(kind, j.GetString("kind", "N:1"));
  if (kind != "1:1" && kind != "N:1") {
    return Status::InvalidInput(StrFormat("unknown join kind '%s'",
                                          kind.c_str()));
  }
  join.kind = kind == "1:1" ? JoinKind::kOneToOne : JoinKind::kNToOne;
  return join;
}

std::string HashToHex(uint64_t hash) {
  return StrFormat("%016llx", static_cast<unsigned long long>(hash));
}

StatusOr<uint64_t> HashFromHex(const std::string& hex) {
  if (hex.empty() || hex.size() > 16) {
    return Status::InvalidInput("bad tables_hash");
  }
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(hex.c_str(), &end, 16);
  if (errno != 0 || end != hex.c_str() + hex.size()) {
    return Status::InvalidInput("bad tables_hash");
  }
  return uint64_t(v);
}

Json SnapshotToJson(const ModelSnapshot& snap) {
  Json j = Json::MakeObject();
  j.Set("version", Json::MakeInt(snap.version));
  j.Set("label", Json::MakeString(snap.label));
  j.Set("pinned", Json::MakeBool(snap.pinned));
  j.Set("tables_hash", Json::MakeString(HashToHex(snap.tables_hash)));
  Json& joins = j.Set("joins", Json::MakeArray());
  for (const NamedJoin& join : snap.joins) joins.Append(JoinToJson(join));
  return j;
}

StatusOr<ModelSnapshot> SnapshotFromJson(const Json& j) {
  if (!j.is_object()) return Status::InvalidInput("snapshot not an object");
  ModelSnapshot snap;
  AUTOBI_ASSIGN_OR_RETURN(snap.version, j.GetInt("version", 0));
  if (snap.version < 1) return Status::InvalidInput("bad snapshot version");
  AUTOBI_ASSIGN_OR_RETURN(snap.label, j.GetString("label", ""));
  AUTOBI_ASSIGN_OR_RETURN(snap.pinned, j.GetBool("pinned", false));
  std::string hex;
  AUTOBI_ASSIGN_OR_RETURN(hex, j.GetString("tables_hash", ""));
  AUTOBI_ASSIGN_OR_RETURN(snap.tables_hash, HashFromHex(hex));
  const Json* joins = j.Find("joins");
  if (joins == nullptr || !joins->is_array()) {
    return Status::InvalidInput("snapshot without joins array");
  }
  for (size_t i = 0; i < joins->size(); ++i) {
    NamedJoin join;
    AUTOBI_ASSIGN_OR_RETURN(join, JoinFromJson(joins->at(i)));
    snap.joins.push_back(std::move(join));
  }
  return snap;
}

std::string EncodePublishOp(const std::string& tenant,
                            const ModelSnapshot& snap) {
  Json op = Json::MakeObject();
  op.Set("op", Json::MakeString("publish"));
  op.Set("tenant", Json::MakeString(tenant));
  op.Set("snapshot", SnapshotToJson(snap));
  return op.Write();
}

std::string EncodeEvictOp(const std::string& tenant, int64_t version) {
  Json op = Json::MakeObject();
  op.Set("op", Json::MakeString("evict"));
  op.Set("tenant", Json::MakeString(tenant));
  op.Set("version", Json::MakeInt(version));
  return op.Write();
}

std::string EncodePinOp(const std::string& tenant, int64_t version,
                        bool pinned) {
  Json op = Json::MakeObject();
  op.Set("op", Json::MakeString("pin"));
  op.Set("tenant", Json::MakeString(tenant));
  op.Set("version", Json::MakeInt(version));
  op.Set("pinned", Json::MakeBool(pinned));
  return op.Write();
}

// Creates `dir` and any missing parents (EEXIST is fine at every level).
Status MakeDirs(const std::string& dir) {
  std::string prefix;
  size_t pos = 0;
  while (pos <= dir.size()) {
    size_t slash = dir.find('/', pos);
    if (slash == std::string::npos) slash = dir.size();
    prefix = dir.substr(0, slash);
    pos = slash + 1;
    if (prefix.empty()) continue;  // Leading '/'.
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::Internal(StrFormat("cannot create state dir %s: %s",
                                        prefix.c_str(), strerror(errno)));
    }
  }
  return Status::Ok();
}

std::string JournalPath(const std::string& dir, uint64_t generation) {
  return StrFormat("%s/journal.%llu", dir.c_str(),
                   static_cast<unsigned long long>(generation));
}

// Generations of every `journal.<n>` file in `dir`.
std::vector<uint64_t> ListJournalGenerations(const std::string& dir) {
  std::vector<uint64_t> gens;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return gens;
  while (struct dirent* e = ::readdir(d)) {
    std::string name = e->d_name;
    if (name.rfind("journal.", 0) != 0) continue;
    std::string suffix = name.substr(8);
    if (suffix.empty()) continue;
    char* end = nullptr;
    unsigned long long g = std::strtoull(suffix.c_str(), &end, 10);
    if (end != suffix.c_str() + suffix.size()) continue;
    gens.push_back(uint64_t(g));
  }
  ::closedir(d);
  return gens;
}

}  // namespace

std::vector<NamedJoin> NameJoins(const std::vector<Table>& tables,
                                 const BiModel& model) {
  std::vector<NamedJoin> joins;
  joins.reserve(model.joins.size());
  for (const Join& j : model.joins) {
    NamedJoin nj;
    nj.from = NameRef(tables, j.from);
    nj.to = NameRef(tables, j.to);
    nj.kind = j.kind;
    joins.push_back(nj.Normalized());
  }
  std::sort(joins.begin(), joins.end(), NamedJoinLess);
  return joins;
}

ModelDiff DiffJoinSets(const std::vector<NamedJoin>& from,
                       const std::vector<NamedJoin>& to) {
  ModelDiff diff;
  auto contains = [](const std::vector<NamedJoin>& set, const NamedJoin& j) {
    for (const NamedJoin& s : set) {
      if (s == j) return true;
    }
    return false;
  };
  for (const NamedJoin& j : to) {
    if (!contains(from, j)) diff.added.push_back(j);
  }
  for (const NamedJoin& j : from) {
    if (!contains(to, j)) diff.removed.push_back(j);
  }
  return diff;
}

ModelCatalog::ModelCatalog(size_t max_unpinned_per_tenant)
    : max_unpinned_per_tenant_(
          max_unpinned_per_tenant == 0 ? 1 : max_unpinned_per_tenant) {}

ModelCatalog::~ModelCatalog() = default;

std::string ModelCatalog::EncodeStateLocked() const {
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& entry : tenants_) names.push_back(entry.first);
  std::sort(names.begin(), names.end());  // Deterministic snapshot bytes.
  Json state = Json::MakeObject();
  Json& tenants = state.Set("tenants", Json::MakeArray());
  for (const std::string& name : names) {
    const Tenant& t = tenants_.at(name);
    Json& tj = tenants.Append(Json::MakeObject());
    tj.Set("name", Json::MakeString(name));
    tj.Set("next_version", Json::MakeInt(t.next_version));
    Json& snaps = tj.Set("snapshots", Json::MakeArray());
    for (const ModelSnapshot& s : t.snapshots) {
      snaps.Append(SnapshotToJson(s));
    }
  }
  return state.Write();
}

Status ModelCatalog::ApplyOpLocked(const std::string& payload) {
  StatusOr<Json> parsed = ParseJson(payload);
  if (!parsed.ok()) return parsed.status().WithContext("journal record");
  const Json& op = *parsed;
  std::string kind;
  AUTOBI_ASSIGN_OR_RETURN(kind, op.GetString("op", ""));
  std::string tenant;
  AUTOBI_ASSIGN_OR_RETURN(tenant, op.GetString("tenant", ""));
  if (tenant.empty()) return Status::InvalidInput("journal op without tenant");
  if (kind == "publish") {
    const Json* snap_json = op.Find("snapshot");
    if (snap_json == nullptr) {
      return Status::InvalidInput("publish record without snapshot");
    }
    ModelSnapshot snap;
    AUTOBI_ASSIGN_OR_RETURN(snap, SnapshotFromJson(*snap_json));
    Tenant& t = tenants_[tenant];
    if (t.next_version <= snap.version) t.next_version = snap.version + 1;
    t.snapshots.push_back(std::move(snap));
    return Status::Ok();
  }
  if (kind == "evict" || kind == "pin") {
    int64_t version = 0;
    AUTOBI_ASSIGN_OR_RETURN(version, op.GetInt("version", 0));
    auto it = tenants_.find(tenant);
    if (it == tenants_.end()) return Status::Ok();  // Tolerate: no-op.
    std::vector<ModelSnapshot>& snaps = it->second.snapshots;
    for (auto s = snaps.begin(); s != snaps.end(); ++s) {
      if (s->version != version) continue;
      if (kind == "evict") {
        snaps.erase(s);
      } else {
        bool pinned = false;
        AUTOBI_ASSIGN_OR_RETURN(pinned, op.GetBool("pinned", false));
        s->pinned = pinned;
      }
      break;
    }
    return Status::Ok();
  }
  return Status::InvalidInput(
      StrFormat("unknown journal op '%s'", kind.c_str()));
}

Status ModelCatalog::OpenStateDir(const std::string& dir,
                                  size_t compact_every) {
  std::lock_guard<std::mutex> lock(mu_);
  if (journal_ != nullptr) {
    return Status::InvalidInput("state dir is already attached");
  }
  AUTOBI_RETURN_IF_ERROR(MakeDirs(dir));
  state_dir_ = dir;
  compact_every_ = compact_every == 0 ? 1 : compact_every;
  ops_since_compact_ = 0;
  tenants_.clear();
  stats_ = DurabilityStats();
  stats_.enabled = true;

  // 1. Restore the compacted snapshot, if any. A damaged snapshot cannot
  // come from our own crash model (WriteFileAtomic renames are atomic), so
  // treat it as external corruption: count it, start empty, and move past
  // every existing journal generation rather than replay a suffix whose
  // base state is gone.
  uint64_t generation = 0;
  SnapshotReadResult snap = ReadSnapshotFile(dir + "/snapshot");
  bool snapshot_usable = snap.found && !snap.corrupt;
  if (snapshot_usable) {
    StatusOr<Json> parsed = ParseJson(snap.payload);
    Status restored = parsed.ok() ? Status::Ok() : parsed.status();
    if (restored.ok()) {
      const Json* tenant_list = parsed->Find("tenants");
      if (tenant_list == nullptr || !tenant_list->is_array()) {
        restored = Status::InvalidInput("snapshot without tenants");
      } else {
        for (size_t i = 0; restored.ok() && i < tenant_list->size(); ++i) {
          const Json& tj = tenant_list->at(i);
          std::string name = tj.GetString("name", "").value_or("");
          if (name.empty()) {
            restored = Status::InvalidInput("snapshot tenant without name");
            break;
          }
          Tenant& t = tenants_[name];
          t.next_version = tj.GetInt("next_version", 1).value_or(1);
          const Json* snaps = tj.Find("snapshots");
          if (snaps == nullptr || !snaps->is_array()) continue;
          for (size_t k = 0; k < snaps->size(); ++k) {
            StatusOr<ModelSnapshot> s = SnapshotFromJson(snaps->at(k));
            if (!s.ok()) {
              restored = s.status();
              break;
            }
            t.snapshots.push_back(std::move(*s));
          }
        }
      }
    }
    if (restored.ok()) {
      generation = snap.generation;
    } else {
      snapshot_usable = false;
      tenants_.clear();
    }
  }
  if (snap.found && !snapshot_usable) {
    ++stats_.discarded_records;
    for (uint64_t g : ListJournalGenerations(dir)) {
      if (g >= generation) generation = g + 1;
    }
  }

  // 2. Replay the journal suffix for this generation, stopping at the first
  // torn/corrupt/undecodable record. That tail is crash debris: count it,
  // truncate it away, keep serving the committed prefix.
  const std::string journal_path = JournalPath(dir, generation);
  std::string bytes;
  if (::access(journal_path.c_str(), F_OK) == 0) {
    StatusOr<std::string> read = ReadFileToString(journal_path);
    if (!read.ok()) return read.status().WithContext("journal recovery");
    bytes = std::move(*read);
  }
  LogReadResult records = DecodeRecords(bytes, generation);
  size_t valid_bytes = records.valid_bytes;
  stats_.discarded_records += records.discarded_records;
  for (size_t i = 0; i < records.payloads.size(); ++i) {
    if (!ApplyOpLocked(records.payloads[i]).ok()) {
      valid_bytes = records.offsets[i];
      stats_.discarded_records += long(records.payloads.size() - i);
      break;
    }
  }

  // 3. Reopen the journal for appending, truncated to the committed prefix,
  // and sweep stale generations left by a crash mid-compaction.
  journal_ = std::make_unique<RecordLog>();
  Status opened = journal_->Open(journal_path, generation, valid_bytes);
  if (!opened.ok()) {
    journal_.reset();
    return opened;
  }
  for (uint64_t g : ListJournalGenerations(dir)) {
    if (g != generation) ::unlink(JournalPath(dir, g).c_str());
  }

  stats_.generation = generation;
  stats_.recovered_tenants = long(tenants_.size());
  for (const auto& entry : tenants_) {
    stats_.recovered_versions += long(entry.second.snapshots.size());
  }
  return Status::Ok();
}

void ModelCatalog::MaybeCompactLocked() {
  if (journal_ == nullptr || ops_since_compact_ < compact_every_) return;
  // Crash-safe ordering: create the next-generation journal first, then
  // atomically publish the snapshot that points at it, then retire the old
  // log. A crash between any two steps recovers cleanly (stray files from
  // the incomplete step are swept on the next OpenStateDir).
  const uint64_t next_gen = stats_.generation + 1;
  const std::string next_path = JournalPath(state_dir_, next_gen);
  auto next_log = std::make_unique<RecordLog>();
  if (!next_log->Open(next_path, next_gen, 0).ok()) return;
  Status written =
      WriteSnapshotFile(state_dir_ + "/snapshot", next_gen,
                        EncodeStateLocked());
  if (!written.ok()) {
    // Non-fatal (io.rename lands here): keep journaling to the current
    // generation; the counter stays over threshold so the next mutation
    // retries.
    next_log->Close();
    ::unlink(next_path.c_str());
    return;
  }
  const std::string old_path = journal_->path();
  journal_ = std::move(next_log);
  stats_.generation = next_gen;
  ::unlink(old_path.c_str());
  ops_since_compact_ = 0;
  ++stats_.snapshots_written;
}

StatusOr<int64_t> ModelCatalog::Publish(const std::string& tenant,
                                        std::string label,
                                        uint64_t tables_hash,
                                        std::vector<NamedJoin> joins) {
  std::lock_guard<std::mutex> lock(mu_);
  Tenant& t = tenants_[tenant];
  ModelSnapshot snap;
  snap.version = t.next_version;
  snap.label = std::move(label);
  snap.tables_hash = tables_hash;
  snap.joins = std::move(joins);

  // Pick the eviction victim before journaling: the publish and the
  // eviction it causes are one logical mutation and share one commit
  // barrier. The victim is the oldest unpinned existing snapshot — never
  // the one being published, since the cap is >= 1.
  auto victim = t.snapshots.end();
  size_t unpinned = 1;  // The new snapshot.
  for (const ModelSnapshot& s : t.snapshots) {
    if (!s.pinned) ++unpinned;
  }
  if (unpinned > max_unpinned_per_tenant_) {
    for (auto it = t.snapshots.begin(); it != t.snapshots.end(); ++it) {
      if (!it->pinned) {
        victim = it;
        break;
      }
    }
  }

  if (journal_ != nullptr) {
    Status committed = journal_->Append(EncodePublishOp(tenant, snap));
    if (committed.ok() && victim != t.snapshots.end()) {
      committed = journal_->Append(EncodeEvictOp(tenant, victim->version));
    }
    if (committed.ok()) committed = journal_->Commit();
    if (!committed.ok()) {
      ++stats_.journal_errors;
      return committed.WithContext("publish rejected");
    }
    stats_.journal_records += victim != t.snapshots.end() ? 2 : 1;
    ++stats_.journal_commits;
  }

  if (victim != t.snapshots.end()) t.snapshots.erase(victim);
  ++t.next_version;
  t.snapshots.push_back(std::move(snap));
  ++ops_since_compact_;
  MaybeCompactLocked();
  return t.snapshots.back().version;
}

const ModelSnapshot* ModelCatalog::FindLocked(const std::string& tenant,
                                              int64_t version) const {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end() || it->second.snapshots.empty()) return nullptr;
  const std::vector<ModelSnapshot>& snaps = it->second.snapshots;
  if (version <= 0) return &snaps.back();
  for (const ModelSnapshot& s : snaps) {
    if (s.version == version) return &s;
  }
  return nullptr;
}

StatusOr<ModelSnapshot> ModelCatalog::Get(const std::string& tenant,
                                          int64_t version) const {
  std::lock_guard<std::mutex> lock(mu_);
  const ModelSnapshot* s = FindLocked(tenant, version);
  if (s == nullptr) {
    return Status::InvalidInput(
        StrFormat("no model version %lld for tenant '%s'",
                  static_cast<long long>(version), tenant.c_str()));
  }
  return *s;
}

Status ModelCatalog::Pin(const std::string& tenant, int64_t version,
                         bool pinned) {
  std::lock_guard<std::mutex> lock(mu_);
  const ModelSnapshot* s = FindLocked(tenant, version);
  if (s == nullptr) {
    return Status::InvalidInput(
        StrFormat("no model version %lld for tenant '%s'",
                  static_cast<long long>(version), tenant.c_str()));
  }
  if (journal_ != nullptr) {
    Status committed = journal_->Append(EncodePinOp(tenant, s->version, pinned));
    if (committed.ok()) committed = journal_->Commit();
    if (!committed.ok()) {
      ++stats_.journal_errors;
      return committed.WithContext("pin rejected");
    }
    ++stats_.journal_records;
    ++stats_.journal_commits;
  }
  const_cast<ModelSnapshot*>(s)->pinned = pinned;
  ++ops_since_compact_;
  MaybeCompactLocked();
  return Status::Ok();
}

std::vector<ModelSnapshot> ModelCatalog::List(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return {};
  return it->second.snapshots;
}

StatusOr<ModelDiff> ModelCatalog::Diff(const std::string& tenant, int64_t from,
                                       int64_t to) const {
  std::lock_guard<std::mutex> lock(mu_);
  const ModelSnapshot* a = FindLocked(tenant, from);
  const ModelSnapshot* b = FindLocked(tenant, to);
  if (a == nullptr || b == nullptr) {
    return Status::InvalidInput(StrFormat(
        "diff needs two existing versions for tenant '%s' (got %lld, %lld)",
        tenant.c_str(), static_cast<long long>(from),
        static_cast<long long>(to)));
  }
  return DiffJoinSets(a->joins, b->joins);
}

Status ModelCatalog::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (journal_ == nullptr) return Status::Ok();
  return journal_->Commit();
}

DurabilityStats ModelCatalog::durability() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace autobi
