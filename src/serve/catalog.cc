#include "serve/catalog.h"

#include <algorithm>
#include <utility>

#include "common/strings.h"

namespace autobi {

std::string NamedColumnRef::ToString() const {
  std::string out = table;
  out.push_back('(');
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += columns[i];
  }
  out.push_back(')');
  return out;
}

NamedJoin NamedJoin::Normalized() const {
  NamedJoin j = *this;
  if (j.kind == JoinKind::kOneToOne && j.to < j.from) {
    std::swap(j.from, j.to);
  }
  return j;
}

bool NamedJoin::operator==(const NamedJoin& o) const {
  NamedJoin a = Normalized();
  NamedJoin b = o.Normalized();
  return a.kind == b.kind && a.from == b.from && a.to == b.to;
}

std::string NamedJoin::ToString() const {
  return StrFormat("%s -> %s [%s]", from.ToString().c_str(),
                   to.ToString().c_str(),
                   kind == JoinKind::kOneToOne ? "1:1" : "N:1");
}

namespace {

NamedColumnRef NameRef(const std::vector<Table>& tables,
                       const ColumnRef& ref) {
  NamedColumnRef out;
  const Table& t = tables[size_t(ref.table)];
  out.table = t.name();
  out.columns.reserve(ref.columns.size());
  for (int c : ref.columns) out.columns.push_back(t.column(size_t(c)).name());
  return out;
}

bool NamedJoinLess(const NamedJoin& a, const NamedJoin& b) {
  if (!(a.from == b.from)) return a.from < b.from;
  if (!(a.to == b.to)) return a.to < b.to;
  return int(a.kind) < int(b.kind);
}

}  // namespace

std::vector<NamedJoin> NameJoins(const std::vector<Table>& tables,
                                 const BiModel& model) {
  std::vector<NamedJoin> joins;
  joins.reserve(model.joins.size());
  for (const Join& j : model.joins) {
    NamedJoin nj;
    nj.from = NameRef(tables, j.from);
    nj.to = NameRef(tables, j.to);
    nj.kind = j.kind;
    joins.push_back(nj.Normalized());
  }
  std::sort(joins.begin(), joins.end(), NamedJoinLess);
  return joins;
}

ModelDiff DiffJoinSets(const std::vector<NamedJoin>& from,
                       const std::vector<NamedJoin>& to) {
  ModelDiff diff;
  auto contains = [](const std::vector<NamedJoin>& set, const NamedJoin& j) {
    for (const NamedJoin& s : set) {
      if (s == j) return true;
    }
    return false;
  };
  for (const NamedJoin& j : to) {
    if (!contains(from, j)) diff.added.push_back(j);
  }
  for (const NamedJoin& j : from) {
    if (!contains(to, j)) diff.removed.push_back(j);
  }
  return diff;
}

ModelCatalog::ModelCatalog(size_t max_unpinned_per_tenant)
    : max_unpinned_per_tenant_(
          max_unpinned_per_tenant == 0 ? 1 : max_unpinned_per_tenant) {}

int64_t ModelCatalog::Publish(const std::string& tenant, std::string label,
                              uint64_t tables_hash,
                              std::vector<NamedJoin> joins) {
  std::lock_guard<std::mutex> lock(mu_);
  Tenant& t = tenants_[tenant];
  ModelSnapshot snap;
  snap.version = t.next_version++;
  snap.label = std::move(label);
  snap.tables_hash = tables_hash;
  snap.joins = std::move(joins);
  t.snapshots.push_back(std::move(snap));

  size_t unpinned = 0;
  for (const ModelSnapshot& s : t.snapshots) {
    if (!s.pinned) ++unpinned;
  }
  if (unpinned > max_unpinned_per_tenant_) {
    // Evict the oldest unpinned snapshot (never the one just published,
    // unless it is the only unpinned one — impossible here since the cap is
    // >= 1 and we only exceed it with at least two unpinned).
    for (auto it = t.snapshots.begin(); it != t.snapshots.end(); ++it) {
      if (!it->pinned) {
        t.snapshots.erase(it);
        break;
      }
    }
  }
  return t.snapshots.back().version;
}

const ModelSnapshot* ModelCatalog::FindLocked(const std::string& tenant,
                                              int64_t version) const {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end() || it->second.snapshots.empty()) return nullptr;
  const std::vector<ModelSnapshot>& snaps = it->second.snapshots;
  if (version <= 0) return &snaps.back();
  for (const ModelSnapshot& s : snaps) {
    if (s.version == version) return &s;
  }
  return nullptr;
}

StatusOr<ModelSnapshot> ModelCatalog::Get(const std::string& tenant,
                                          int64_t version) const {
  std::lock_guard<std::mutex> lock(mu_);
  const ModelSnapshot* s = FindLocked(tenant, version);
  if (s == nullptr) {
    return Status::InvalidInput(
        StrFormat("no model version %lld for tenant '%s'",
                  static_cast<long long>(version), tenant.c_str()));
  }
  return *s;
}

Status ModelCatalog::Pin(const std::string& tenant, int64_t version,
                         bool pinned) {
  std::lock_guard<std::mutex> lock(mu_);
  const ModelSnapshot* s = FindLocked(tenant, version);
  if (s == nullptr) {
    return Status::InvalidInput(
        StrFormat("no model version %lld for tenant '%s'",
                  static_cast<long long>(version), tenant.c_str()));
  }
  const_cast<ModelSnapshot*>(s)->pinned = pinned;
  return Status::Ok();
}

std::vector<ModelSnapshot> ModelCatalog::List(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return {};
  return it->second.snapshots;
}

StatusOr<ModelDiff> ModelCatalog::Diff(const std::string& tenant, int64_t from,
                                       int64_t to) const {
  std::lock_guard<std::mutex> lock(mu_);
  const ModelSnapshot* a = FindLocked(tenant, from);
  const ModelSnapshot* b = FindLocked(tenant, to);
  if (a == nullptr || b == nullptr) {
    return Status::InvalidInput(StrFormat(
        "diff needs two existing versions for tenant '%s' (got %lld, %lld)",
        tenant.c_str(), static_cast<long long>(from),
        static_cast<long long>(to)));
  }
  return DiffJoinSets(a->joins, b->joins);
}

}  // namespace autobi
