#include "serve/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "common/check.h"
#include "common/strings.h"

namespace autobi {

Json Json::MakeBool(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = b;
  return j;
}

Json Json::MakeInt(int64_t v) {
  Json j;
  j.type_ = Type::kNumber;
  j.int_number_ = true;
  j.int_ = v;
  j.double_ = static_cast<double>(v);
  return j;
}

Json Json::MakeDouble(double v) {
  Json j;
  j.type_ = Type::kNumber;
  j.int_number_ = false;
  j.double_ = v;
  j.int_ = static_cast<int64_t>(v);
  return j;
}

Json Json::MakeString(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(s);
  return j;
}

Json Json::MakeArray() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::MakeObject() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

bool Json::AsBool() const {
  AUTOBI_CHECK(type_ == Type::kBool);
  return bool_;
}

int64_t Json::AsInt() const {
  AUTOBI_CHECK(type_ == Type::kNumber);
  return int_number_ ? int_ : static_cast<int64_t>(double_);
}

double Json::AsDouble() const {
  AUTOBI_CHECK(type_ == Type::kNumber);
  return int_number_ ? static_cast<double>(int_) : double_;
}

const std::string& Json::AsString() const {
  AUTOBI_CHECK(type_ == Type::kString);
  return string_;
}

const Json& Json::at(size_t i) const {
  AUTOBI_CHECK(type_ == Type::kArray && i < array_.size());
  return array_[i];
}

Json& Json::Append(Json v) {
  AUTOBI_CHECK(type_ == Type::kArray);
  array_.push_back(std::move(v));
  return array_.back();
}

const Json* Json::Find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Json& Json::Set(std::string key, Json value) {
  AUTOBI_CHECK(type_ == Type::kObject);
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return v;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
  return object_.back().second;
}

StatusOr<std::string> Json::GetString(std::string_view key,
                                      std::string fallback) const {
  const Json* v = Find(key);
  if (v == nullptr || v->is_null()) return fallback;
  if (!v->is_string()) {
    return Status::InvalidInput(
        StrFormat("field '%.*s' must be a string", int(key.size()),
                  key.data()));
  }
  return v->AsString();
}

StatusOr<int64_t> Json::GetInt(std::string_view key, int64_t fallback) const {
  const Json* v = Find(key);
  if (v == nullptr || v->is_null()) return fallback;
  if (!v->is_number()) {
    return Status::InvalidInput(StrFormat("field '%.*s' must be a number",
                                          int(key.size()), key.data()));
  }
  return v->AsInt();
}

StatusOr<double> Json::GetDouble(std::string_view key, double fallback) const {
  const Json* v = Find(key);
  if (v == nullptr || v->is_null()) return fallback;
  if (!v->is_number()) {
    return Status::InvalidInput(StrFormat("field '%.*s' must be a number",
                                          int(key.size()), key.data()));
  }
  return v->AsDouble();
}

StatusOr<bool> Json::GetBool(std::string_view key, bool fallback) const {
  const Json* v = Find(key);
  if (v == nullptr || v->is_null()) return fallback;
  if (!v->is_bool()) {
    return Status::InvalidInput(StrFormat("field '%.*s' must be a boolean",
                                          int(key.size()), key.data()));
  }
  return v->AsBool();
}

namespace {

void AppendEscaped(std::string_view s, std::string* out) {
  out->push_back('"');
  for (char raw : s) {
    unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(raw);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

void Json::WriteTo(std::string* out) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Type::kNumber: {
      if (int_number_) {
        *out += StrFormat("%lld", static_cast<long long>(int_));
        return;
      }
      if (!std::isfinite(double_)) {
        // JSON has no Inf/NaN; null is the conventional lossy fallback.
        *out += "null";
        return;
      }
      std::string num = StrFormat("%.17g", double_);
      // Trim to the shortest round-trippable form for readable wire output.
      for (int prec = 1; prec < 17; ++prec) {
        std::string shorter = StrFormat("%.*g", prec, double_);
        if (std::strtod(shorter.c_str(), nullptr) == double_) {
          num = shorter;
          break;
        }
      }
      *out += num;
      return;
    }
    case Type::kString:
      AppendEscaped(string_, out);
      return;
    case Type::kArray: {
      out->push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out->push_back(',');
        array_[i].WriteTo(out);
      }
      out->push_back(']');
      return;
    }
    case Type::kObject: {
      out->push_back('{');
      for (size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out->push_back(',');
        AppendEscaped(object_[i].first, out);
        out->push_back(':');
        object_[i].second.WriteTo(out);
      }
      out->push_back('}');
      return;
    }
  }
}

std::string Json::Write() const {
  std::string out;
  WriteTo(&out);
  return out;
}

namespace {

// Recursive-descent parser over untrusted bytes. Every failure path returns
// kInvalidInput with a byte offset; nothing throws, nothing reads past
// `end_`.
class Parser {
 public:
  explicit Parser(std::string_view text)
      : begin_(text.data()), p_(text.data()), end_(text.data() + text.size()) {}

  StatusOr<Json> Parse() {
    SkipWs();
    Json root;
    AUTOBI_RETURN_IF_ERROR(ParseValue(0, &root));
    SkipWs();
    if (p_ != end_) return Error("trailing bytes after JSON value");
    return root;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const char* message) const {
    return Status::InvalidInput(
        StrFormat("JSON parse error at byte %zu: %s", size_t(p_ - begin_),
                  message));
  }

  void SkipWs() {
    while (p_ != end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      ++p_;
    }
  }

  bool Consume(char c) {
    if (p_ != end_ && *p_ == c) {
      ++p_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* lit) {
    const char* q = p_;
    while (*lit != '\0') {
      if (q == end_ || *q != *lit) return false;
      ++q;
      ++lit;
    }
    p_ = q;
    return true;
  }

  Status ParseValue(int depth, Json* out) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (p_ == end_) return Error("unexpected end of input");
    switch (*p_) {
      case '{': return ParseObject(depth, out);
      case '[': return ParseArray(depth, out);
      case '"': {
        std::string s;
        AUTOBI_RETURN_IF_ERROR(ParseString(&s));
        *out = Json::MakeString(std::move(s));
        return Status::Ok();
      }
      case 't':
        if (ConsumeLiteral("true")) {
          *out = Json::MakeBool(true);
          return Status::Ok();
        }
        return Error("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) {
          *out = Json::MakeBool(false);
          return Status::Ok();
        }
        return Error("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) {
          *out = Json();
          return Status::Ok();
        }
        return Error("invalid literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(int depth, Json* out) {
    ++p_;  // '{'
    *out = Json::MakeObject();
    SkipWs();
    if (Consume('}')) return Status::Ok();
    while (true) {
      SkipWs();
      if (p_ == end_ || *p_ != '"') return Error("expected object key");
      std::string key;
      AUTOBI_RETURN_IF_ERROR(ParseString(&key));
      SkipWs();
      if (!Consume(':')) return Error("expected ':' after object key");
      SkipWs();
      Json value;
      AUTOBI_RETURN_IF_ERROR(ParseValue(depth + 1, &value));
      out->Set(std::move(key), std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::Ok();
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(int depth, Json* out) {
    ++p_;  // '['
    *out = Json::MakeArray();
    SkipWs();
    if (Consume(']')) return Status::Ok();
    while (true) {
      SkipWs();
      Json value;
      AUTOBI_RETURN_IF_ERROR(ParseValue(depth + 1, &value));
      out->Append(std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::Ok();
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseHex4(uint32_t* out) {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      if (p_ == end_) return Error("truncated \\u escape");
      char c = *p_++;
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= uint32_t(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= uint32_t(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= uint32_t(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    *out = v;
    return Status::Ok();
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(char(cp));
    } else if (cp < 0x800) {
      out->push_back(char(0xC0 | (cp >> 6)));
      out->push_back(char(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(char(0xE0 | (cp >> 12)));
      out->push_back(char(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(char(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(char(0xF0 | (cp >> 18)));
      out->push_back(char(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(char(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(char(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseString(std::string* out) {
    ++p_;  // opening '"'
    out->clear();
    while (true) {
      if (p_ == end_) return Error("unterminated string");
      unsigned char c = static_cast<unsigned char>(*p_);
      if (c == '"') {
        ++p_;
        return Status::Ok();
      }
      if (c < 0x20) return Error("raw control character in string");
      if (c != '\\') {
        out->push_back(char(c));
        ++p_;
        continue;
      }
      ++p_;  // '\\'
      if (p_ == end_) return Error("truncated escape");
      char esc = *p_++;
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          uint32_t cp = 0;
          AUTOBI_RETURN_IF_ERROR(ParseHex4(&cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: require the paired low surrogate.
            if (p_ + 1 >= end_ || p_[0] != '\\' || p_[1] != 'u') {
              return Error("unpaired high surrogate");
            }
            p_ += 2;
            uint32_t lo = 0;
            AUTOBI_RETURN_IF_ERROR(ParseHex4(&lo));
            if (lo < 0xDC00 || lo > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired low surrogate");
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  Status ParseNumber(Json* out) {
    const char* start = p_;
    if (Consume('-')) {
      // sign consumed
    }
    if (p_ == end_ || *p_ < '0' || *p_ > '9') {
      return Error("invalid number");
    }
    if (*p_ == '0') {
      ++p_;
    } else {
      while (p_ != end_ && *p_ >= '0' && *p_ <= '9') ++p_;
    }
    bool integral = true;
    if (p_ != end_ && *p_ == '.') {
      integral = false;
      ++p_;
      if (p_ == end_ || *p_ < '0' || *p_ > '9') {
        return Error("digits required after decimal point");
      }
      while (p_ != end_ && *p_ >= '0' && *p_ <= '9') ++p_;
    }
    if (p_ != end_ && (*p_ == 'e' || *p_ == 'E')) {
      integral = false;
      ++p_;
      if (p_ != end_ && (*p_ == '+' || *p_ == '-')) ++p_;
      if (p_ == end_ || *p_ < '0' || *p_ > '9') {
        return Error("digits required in exponent");
      }
      while (p_ != end_ && *p_ >= '0' && *p_ <= '9') ++p_;
    }
    std::string token(start, size_t(p_ - start));
    if (integral) {
      errno = 0;
      char* token_end = nullptr;
      long long v = std::strtoll(token.c_str(), &token_end, 10);
      if (errno == 0 && token_end == token.c_str() + token.size()) {
        *out = Json::MakeInt(v);
        return Status::Ok();
      }
      // Out of int64 range: fall through to the double representation.
    }
    errno = 0;
    char* token_end = nullptr;
    double d = std::strtod(token.c_str(), &token_end);
    if (token_end != token.c_str() + token.size()) {
      return Error("invalid number");
    }
    if (!std::isfinite(d)) return Error("number out of range");
    *out = Json::MakeDouble(d);
    return Status::Ok();
  }

  const char* begin_;
  const char* p_;
  const char* end_;
};

}  // namespace

StatusOr<Json> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace autobi
