#ifndef AUTOBI_SERVE_ENGINE_H_
#define AUTOBI_SERVE_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/run_context.h"
#include "common/status.h"
#include "core/auto_bi.h"
#include "core/local_model.h"
#include "core/predict_cache.h"
#include "serve/catalog.h"
#include "serve/json.h"
#include "table/table.h"

namespace autobi {

// Quality-of-service tiers for Predict requests (SERVING.md has the full
// table). Each tier maps to a RunContext deadline plus deterministic
// budgets; budgets are part of the cross-request cache key, deadlines are
// not (deadline-tripped runs never populate the cache).
enum class QosTier { kInteractive, kStandard, kBatch };

struct QosPolicy {
  double deadline_seconds = 0.0;  // 0 = no deadline.
  RunContext::Budgets budgets;    // 0 fields = unlimited.
};

// Resolves "interactive" / "standard" / "batch"; kInvalidInput otherwise.
StatusOr<QosTier> ParseQosTier(std::string_view name);
QosPolicy PolicyForTier(QosTier tier);
const char* QosTierName(QosTier tier);

// Bounded two-stage admission control: at most `max_inflight` requests
// executing, at most `max_queue` more waiting for a slot; anything beyond
// that is rejected immediately with kResourceExhausted (the caller should
// retry with backoff; see SERVING.md "Troubleshooting"). Fairness is FIFO
// via the condition variable's wait order (not strictly guaranteed by the
// standard, but overflow behaviour — the tested contract — is exact).
class AdmissionGate {
 public:
  AdmissionGate(int max_inflight, int max_queue);

  // Blocks while queue capacity is available, rejects when it is not.
  Status Enter();
  void Exit();

  int inflight() const;
  int queued() const;
  int64_t rejected() const;
  // Requests granted a slot (immediately or after queueing).
  int64_t admitted() const;
  // Time requests spent waiting in the queue before admission, for the
  // `stats` verb: overload shedding is invisible without it.
  double queue_wait_total_seconds() const;
  double queue_wait_max_seconds() const;

 private:
  const int max_inflight_;
  const int max_queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int inflight_ = 0;
  int queued_ = 0;
  int64_t rejected_ = 0;
  int64_t admitted_ = 0;
  double queue_wait_total_seconds_ = 0.0;
  double queue_wait_max_seconds_ = 0.0;
};

struct ServeOptions {
  // Worker threads for each Predict's data-parallel stages (ResolveThreads
  // semantics: 0 = env/hardware, 1 = serial). Results are bit-identical at
  // any setting.
  int threads = 0;
  // Admission control (see AdmissionGate).
  int max_inflight = 4;
  int max_queue = 16;
  // Session table: creating one past this limit is kResourceExhausted.
  int max_sessions = 64;
  // Per-session upload cap.
  int max_tables_per_session = 256;
  // Per-upload CSV byte cap (flows into CsvOptions::max_bytes).
  size_t max_csv_bytes = size_t{64} << 20;  // 64 MiB
  // Cross-request content-hash cache sizing (core/predict_cache.h).
  PredictCache::Options cache;
  // Catalog retention (serve/catalog.h).
  size_t max_unpinned_models_per_tenant = 32;
  // Durable catalog state (serve/journal.h). Empty = in-memory only. When
  // set, RecoverState() must be called before serving traffic; published
  // models, versions and pins then survive crashes and restarts. Sessions
  // and the PredictCache are intentionally volatile (SERVING.md
  // "Durability & recovery").
  std::string state_dir;
  // Journal operations between compacted snapshots.
  size_t journal_compact_every = 64;
};

// The transport-independent serving engine: a session table, the shared
// cross-request PredictCache, the model catalog, and one handler per
// protocol verb. `Handle` is fully thread-safe — the stdio transport calls
// it from one thread, the socket transport from one thread per connection,
// and tests call it concurrently on purpose. Determinism contract: a
// Predict response's model is bit-identical for the same session tables and
// options at any thread count, cold or warm cache.
//
// Protocol (newline-delimited JSON; every verb documented with worked
// examples in SERVING.md): requests are {"verb": "...", "id": ..., ...},
// responses echo "id" and carry either "ok": true plus verb-specific fields
// or "ok": false plus {"error": {"code": "INVALID_INPUT", "message": ...}}.
class ServeEngine {
 public:
  // `model` is the trained local classifier; not owned, must outlive the
  // engine.
  explicit ServeEngine(const LocalModel* model, ServeOptions options = {});

  // Dispatches one parsed request object. Never throws.
  Json Handle(const Json& request);

  // Wire-level entry: parses `line` (fault point `serve.request` can corrupt
  // it first under AUTOBI_FAULT, exercising the malformed-input path),
  // dispatches, and serializes the response to a single line without the
  // trailing newline. Any input bytes produce exactly one well-formed JSON
  // response line.
  std::string HandleLine(std::string_view line);

  // Set once a `shutdown` request has been accepted; transports drain and
  // exit their accept loops.
  bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  PredictCache::Stats CacheStats() const { return cache_.GetStats(); }
  const ServeOptions& options() const { return options_; }

  // Attaches options().state_dir (no-op when empty) and replays any state
  // found there — see ModelCatalog::OpenStateDir. Call once, before the
  // transport starts accepting traffic.
  Status RecoverState();

  // Final fsync barrier on the catalog journal; called by HandleShutdown
  // and again by serve_main after the transport drains (idempotent).
  Status FlushState();

  DurabilityStats durability() const { return catalog_.durability(); }

  // Invoked (if set) when a `shutdown` request is accepted, after
  // shutdown_requested() starts returning true. Transports register a
  // self-pipe wakeup here so blocked pollers exit immediately instead of
  // timing out.
  void SetShutdownCallback(std::function<void()> callback);

  // Test hook: runs while a Predict request holds its admission slot (after
  // Enter, before the pipeline). Lets tests saturate admission
  // deterministically without timing races.
  void SetPredictHoldHookForTest(std::function<void()> hook);

 private:
  struct Session {
    std::string tenant;
    // Copy-on-write snapshot: uploads replace the vector, Predict runs on
    // its snapshot outside the session lock.
    std::shared_ptr<const std::vector<Table>> tables =
        std::make_shared<const std::vector<Table>>();
    // Results of the latest and previous Predict (name-resolved, for
    // get_model/diff). Empty until the first Predict.
    std::vector<NamedJoin> last_joins;
    std::vector<NamedJoin> prev_joins;
    bool has_predicted = false;
    bool has_previous = false;
    // The model + table snapshot backing the latest Predict, for exports.
    BiModel last_model;
    std::shared_ptr<const std::vector<Table>> last_tables;
    // Cross-request state of the delta path (core/incremental.h), created
    // lazily by the first {"incremental": true} predict. A predict takes it
    // out under the session lock (PredictIncremental must not share state
    // across concurrent calls) and puts it back when done — concurrent
    // incremental predicts on one session are last-writer-wins, the loser
    // simply running cold next time.
    std::shared_ptr<IncrementalState> incremental;
  };

  Json HandlePing(const Json& req);
  Json HandleCreateSession(const Json& req);
  Json HandleCloseSession(const Json& req);
  Json HandleUploadTable(const Json& req);
  Json HandleUpdateTable(const Json& req);
  Json HandlePredict(const Json& req);
  Json HandleGetModel(const Json& req);
  Json HandleDiff(const Json& req);
  Json HandlePublishModel(const Json& req);
  Json HandleListModels(const Json& req);
  Json HandlePinModel(const Json& req);
  Json HandleDiffModels(const Json& req);
  Json HandleGetCatalogModel(const Json& req);
  Json HandleStats(const Json& req);
  Json HandleShutdown(const Json& req);

  // Copies the session's current state under the session-table lock.
  // kInvalidInput for unknown session ids.
  StatusOr<Session> SnapshotSession(const std::string& session_id) const;

  const LocalModel* model_;
  ServeOptions options_;
  PredictCache cache_;
  ModelCatalog catalog_;
  AdmissionGate gate_;
  std::atomic<bool> shutdown_{false};

  mutable std::mutex mu_;  // Guards sessions_ and next_session_.
  std::unordered_map<std::string, Session> sessions_;
  int64_t next_session_ = 1;
  std::function<void()> predict_hold_hook_;
  std::function<void()> shutdown_callback_;
  std::mutex hook_mu_;  // Guards predict_hold_hook_ and shutdown_callback_.

  // Request counters for the `stats` verb.
  std::atomic<int64_t> requests_{0};
  std::atomic<int64_t> errors_{0};
  std::atomic<int64_t> predicts_{0};
  // Cumulative lake-scale counters across every successful predict (PR 9):
  // column pairs the blocking stage pruned/admitted and graph components
  // solved by the partitioned global solve.
  std::atomic<int64_t> blocked_pairs_{0};
  std::atomic<int64_t> admitted_pairs_{0};
  std::atomic<int64_t> components_solved_{0};
};

// Builds the standard error response envelope.
Json MakeErrorResponse(const Json* request, const Status& status);

}  // namespace autobi

#endif  // AUTOBI_SERVE_ENGINE_H_
