#include "core/case_io.h"

#include <fstream>
#include <sstream>

#include "common/strings.h"
#include "table/csv.h"

namespace autobi {

namespace {

const char* const kManifestName = "case.manifest";

std::string ColumnsToCsvField(const std::vector<int>& columns) {
  std::vector<std::string> parts;
  parts.reserve(columns.size());
  for (int c : columns) parts.push_back(std::to_string(c));
  return JoinStrings(parts, ",");
}

bool ParseColumns(const std::string& field, std::vector<int>* out,
                  std::string* error) {
  out->clear();
  for (const std::string& part : Split(field, ",")) {
    int64_t v = 0;
    if (!ParseInt64(part, &v)) {
      *error = "bad column index '" + part + "' in manifest";
      return false;
    }
    out->push_back(int(v));
  }
  if (out->empty()) {
    *error = "empty column list in manifest";
    return false;
  }
  return true;
}

SchemaType ParseSchemaType(const std::string& name) {
  if (name == "star") return SchemaType::kStar;
  if (name == "snowflake") return SchemaType::kSnowflake;
  if (name == "constellation") return SchemaType::kConstellation;
  return SchemaType::kOther;
}

}  // namespace

bool SaveCase(const BiCase& bi_case, const std::string& dir,
              std::string* error) {
  std::ofstream manifest(dir + "/" + kManifestName);
  if (!manifest) {
    *error = "cannot write manifest in " + dir;
    return false;
  }
  manifest << "autobi_case 1\n";
  manifest << "name " << bi_case.name << "\n";
  manifest << "schema_type " << SchemaTypeName(bi_case.schema_type) << "\n";
  manifest << "tables " << bi_case.tables.size() << "\n";
  for (const Table& t : bi_case.tables) {
    manifest << t.name() << "\n";
    std::ofstream csv(dir + "/" + t.name() + ".csv");
    if (!csv) {
      *error = "cannot write table file for " + t.name();
      return false;
    }
    csv << WriteCsv(t);
    if (!csv) {
      *error = "write failed for " + t.name();
      return false;
    }
  }
  manifest << "joins " << bi_case.ground_truth.joins.size() << "\n";
  for (const Join& j : bi_case.ground_truth.joins) {
    manifest << (j.kind == JoinKind::kOneToOne ? "1:1" : "N:1") << " "
             << j.from.table << " " << ColumnsToCsvField(j.from.columns)
             << " " << j.to.table << " " << ColumnsToCsvField(j.to.columns)
             << "\n";
  }
  return static_cast<bool>(manifest);
}

bool LoadCase(const std::string& dir, BiCase* bi_case, std::string* error) {
  std::ifstream manifest(dir + "/" + kManifestName);
  if (!manifest) {
    *error = "cannot open manifest in " + dir;
    return false;
  }
  *bi_case = BiCase{};
  std::string tag;
  int version = 0;
  if (!(manifest >> tag >> version) || tag != "autobi_case" || version != 1) {
    *error = "bad manifest header";
    return false;
  }
  std::string key;
  if (!(manifest >> key) || key != "name") {
    *error = "expected 'name'";
    return false;
  }
  manifest >> std::ws;
  std::getline(manifest, bi_case->name);
  std::string schema_type;
  if (!(manifest >> key >> schema_type) || key != "schema_type") {
    *error = "expected 'schema_type'";
    return false;
  }
  bi_case->schema_type = ParseSchemaType(schema_type);
  size_t num_tables = 0;
  if (!(manifest >> key >> num_tables) || key != "tables") {
    *error = "expected 'tables'";
    return false;
  }
  manifest >> std::ws;
  for (size_t i = 0; i < num_tables; ++i) {
    std::string table_name;
    std::getline(manifest, table_name);
    Table t;
    if (!ReadCsvFile(dir + "/" + table_name + ".csv", &t, error)) {
      return false;
    }
    t.set_name(table_name);
    bi_case->tables.push_back(std::move(t));
  }
  size_t num_joins = 0;
  if (!(manifest >> key >> num_joins) || key != "joins") {
    *error = "expected 'joins'";
    return false;
  }
  for (size_t i = 0; i < num_joins; ++i) {
    std::string kind, from_cols, to_cols;
    Join join;
    if (!(manifest >> kind >> join.from.table >> from_cols >> join.to.table
                   >> to_cols)) {
      *error = "truncated join list";
      return false;
    }
    join.kind = (kind == "1:1") ? JoinKind::kOneToOne : JoinKind::kNToOne;
    if (!ParseColumns(from_cols, &join.from.columns, error) ||
        !ParseColumns(to_cols, &join.to.columns, error)) {
      return false;
    }
    if (join.from.table < 0 ||
        join.from.table >= int(bi_case->tables.size()) ||
        join.to.table < 0 || join.to.table >= int(bi_case->tables.size())) {
      *error = "join references table out of range";
      return false;
    }
    bi_case->ground_truth.joins.push_back(join.Normalized());
  }
  return true;
}

}  // namespace autobi
