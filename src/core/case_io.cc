#include "core/case_io.h"

#include <fstream>

#include "common/strings.h"
#include "fuzz/faultpoints.h"
#include "table/csv.h"

namespace autobi {

namespace {

const char* const kManifestName = "case.manifest";

// Hostile-manifest guard: counts beyond this are rejected outright rather
// than looped over.
constexpr size_t kMaxManifestEntries = 1'000'000;

std::string ColumnsToCsvField(const std::vector<int>& columns) {
  std::vector<std::string> parts;
  parts.reserve(columns.size());
  for (int c : columns) parts.push_back(std::to_string(c));
  return JoinStrings(parts, ",");
}

Status ParseColumns(const std::string& field, std::vector<int>* out) {
  out->clear();
  for (const std::string& part : Split(field, ",")) {
    int64_t v = 0;
    if (!ParseInt64(part, &v)) {
      return Status::InvalidInput("bad column index '" + part +
                                  "' in manifest");
    }
    out->push_back(int(v));
  }
  if (out->empty()) {
    return Status::InvalidInput("empty column list in manifest");
  }
  return Status::Ok();
}

SchemaType ParseSchemaType(const std::string& name) {
  if (name == "star") return SchemaType::kStar;
  if (name == "snowflake") return SchemaType::kSnowflake;
  if (name == "constellation") return SchemaType::kConstellation;
  return SchemaType::kOther;
}

// Table names become file names under `dir`; reject anything that could
// escape it or collide with the manifest.
Status ValidateTableFileName(const std::string& name) {
  if (name.empty()) {
    return Status::InvalidInput("empty table name in manifest");
  }
  if (name.find('/') != std::string::npos ||
      name.find('\\') != std::string::npos || name == "." || name == "..") {
    return Status::InvalidInput("table name '" + name +
                                "' is not a plain file name");
  }
  return Status::Ok();
}

}  // namespace

Status SaveCase(const BiCase& bi_case, const std::string& dir) {
  std::ofstream manifest(dir + "/" + kManifestName);
  if (!manifest || FaultPoints::Global().Fire("io.open")) {
    return Status::Internal("cannot write manifest in " + dir);
  }
  manifest << "autobi_case 1\n";
  manifest << "name " << bi_case.name << "\n";
  manifest << "schema_type " << SchemaTypeName(bi_case.schema_type) << "\n";
  manifest << "tables " << bi_case.tables.size() << "\n";
  for (const Table& t : bi_case.tables) {
    AUTOBI_RETURN_IF_ERROR(
        ValidateTableFileName(t.name()).WithContext("save case"));
    manifest << t.name() << "\n";
    std::ofstream csv(dir + "/" + t.name() + ".csv");
    if (!csv || FaultPoints::Global().Fire("io.open")) {
      return Status::Internal("cannot write table file for " + t.name());
    }
    csv << WriteCsv(t);
    if (!csv) {
      return Status::Internal("write failed for " + t.name());
    }
  }
  manifest << "joins " << bi_case.ground_truth.joins.size() << "\n";
  for (const Join& j : bi_case.ground_truth.joins) {
    manifest << (j.kind == JoinKind::kOneToOne ? "1:1" : "N:1") << " "
             << j.from.table << " " << ColumnsToCsvField(j.from.columns)
             << " " << j.to.table << " " << ColumnsToCsvField(j.to.columns)
             << "\n";
  }
  if (!manifest) {
    return Status::Internal("write failed for manifest in " + dir);
  }
  return Status::Ok();
}

StatusOr<BiCase> LoadCase(const std::string& dir) {
  std::ifstream manifest(dir + "/" + kManifestName);
  if (!manifest || FaultPoints::Global().Fire("io.open")) {
    return Status::Internal("cannot open manifest in " + dir);
  }
  BiCase bi_case;
  std::string tag;
  int version = 0;
  if (!(manifest >> tag >> version) || tag != "autobi_case" || version != 1) {
    return Status::InvalidInput("bad manifest header in " + dir);
  }
  std::string key;
  if (!(manifest >> key) || key != "name") {
    return Status::InvalidInput("expected 'name' in manifest");
  }
  manifest >> std::ws;
  std::getline(manifest, bi_case.name);
  std::string schema_type;
  if (!(manifest >> key >> schema_type) || key != "schema_type") {
    return Status::InvalidInput("expected 'schema_type' in manifest");
  }
  bi_case.schema_type = ParseSchemaType(schema_type);
  size_t num_tables = 0;
  if (!(manifest >> key >> num_tables) || key != "tables" ||
      num_tables > kMaxManifestEntries) {
    return Status::InvalidInput("expected 'tables' count in manifest");
  }
  manifest >> std::ws;
  for (size_t i = 0; i < num_tables; ++i) {
    std::string table_name;
    if (!std::getline(manifest, table_name)) {
      return Status::InvalidInput("truncated table list in manifest");
    }
    AUTOBI_RETURN_IF_ERROR(
        ValidateTableFileName(table_name).WithContext("load case"));
    StatusOr<Table> t = ReadCsvFile(dir + "/" + table_name + ".csv");
    if (!t.ok()) return t.status().WithContext("load case table");
    t->set_name(table_name);
    bi_case.tables.push_back(std::move(t).value());
  }
  size_t num_joins = 0;
  if (!(manifest >> key >> num_joins) || key != "joins" ||
      num_joins > kMaxManifestEntries) {
    return Status::InvalidInput("expected 'joins' count in manifest");
  }
  for (size_t i = 0; i < num_joins; ++i) {
    std::string kind, from_cols, to_cols;
    Join join;
    if (!(manifest >> kind >> join.from.table >> from_cols >> join.to.table
                   >> to_cols)) {
      return Status::InvalidInput("truncated join list in manifest");
    }
    join.kind = (kind == "1:1") ? JoinKind::kOneToOne : JoinKind::kNToOne;
    AUTOBI_RETURN_IF_ERROR(ParseColumns(from_cols, &join.from.columns));
    AUTOBI_RETURN_IF_ERROR(ParseColumns(to_cols, &join.to.columns));
    if (join.from.table < 0 ||
        join.from.table >= int(bi_case.tables.size()) ||
        join.to.table < 0 || join.to.table >= int(bi_case.tables.size())) {
      return Status::InvalidInput("join references table out of range");
    }
    const Table& from_t = bi_case.tables[size_t(join.from.table)];
    const Table& to_t = bi_case.tables[size_t(join.to.table)];
    for (int c : join.from.columns) {
      if (c < 0 || c >= int(from_t.num_columns())) {
        return Status::InvalidInput("join references column out of range");
      }
    }
    for (int c : join.to.columns) {
      if (c < 0 || c >= int(to_t.num_columns())) {
        return Status::InvalidInput("join references column out of range");
      }
    }
    bi_case.ground_truth.joins.push_back(join.Normalized());
  }
  return bi_case;
}

}  // namespace autobi
