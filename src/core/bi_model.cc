#include "core/bi_model.h"

#include <algorithm>

#include "common/strings.h"

namespace autobi {

Join Join::Normalized() const {
  if (kind == JoinKind::kOneToOne && to < from) {
    Join out = *this;
    std::swap(out.from, out.to);
    return out;
  }
  return *this;
}

bool Join::operator==(const Join& o) const {
  Join a = Normalized();
  Join b = o.Normalized();
  return a.kind == b.kind && a.from == b.from && a.to == b.to;
}

bool BiModel::Contains(const Join& join) const {
  return std::find(joins.begin(), joins.end(), join) != joins.end();
}

const char* SchemaTypeName(SchemaType type) {
  switch (type) {
    case SchemaType::kStar:
      return "star";
    case SchemaType::kSnowflake:
      return "snowflake";
    case SchemaType::kConstellation:
      return "constellation";
    case SchemaType::kOther:
      return "other";
  }
  return "?";
}

namespace {

Status ValidateColumnRef(const std::vector<Table>& tables,
                         const ColumnRef& ref, size_t join_index,
                         const char* side) {
  if (ref.table < 0 || ref.table >= int(tables.size())) {
    return Status::InvalidInput(
        StrFormat("join %zu %s side references table %d of %zu", join_index,
                  side, ref.table, tables.size()));
  }
  if (ref.columns.empty()) {
    return Status::InvalidInput(StrFormat(
        "join %zu %s side has an empty column list", join_index, side));
  }
  const Table& t = tables[size_t(ref.table)];
  for (int c : ref.columns) {
    if (c < 0 || c >= int(t.num_columns())) {
      return Status::InvalidInput(
          StrFormat("join %zu %s side references column %d of table '%s' "
                    "(%zu columns)",
                    join_index, side, c, t.name().c_str(), t.num_columns()));
    }
  }
  return Status::Ok();
}

}  // namespace

Status ValidateBiModel(const std::vector<Table>& tables,
                       const BiModel& model) {
  for (size_t i = 0; i < model.joins.size(); ++i) {
    const Join& join = model.joins[i];
    AUTOBI_RETURN_IF_ERROR(ValidateColumnRef(tables, join.from, i, "from"));
    AUTOBI_RETURN_IF_ERROR(ValidateColumnRef(tables, join.to, i, "to"));
    if (join.from.table == join.to.table) {
      return Status::InvalidInput(
          StrFormat("join %zu is a self-join on table %d", i, join.from.table));
    }
  }
  return Status::Ok();
}

std::string JoinToString(const std::vector<Table>& tables, const Join& join) {
  std::string out = ColumnRefToString(tables, join.from);
  out += join.kind == JoinKind::kOneToOne ? " <-> " : " -> ";
  out += ColumnRefToString(tables, join.to);
  out += join.kind == JoinKind::kOneToOne ? " [1:1]" : " [N:1]";
  return out;
}

}  // namespace autobi
