#include "core/bi_model.h"

#include <algorithm>

namespace autobi {

Join Join::Normalized() const {
  if (kind == JoinKind::kOneToOne && to < from) {
    Join out = *this;
    std::swap(out.from, out.to);
    return out;
  }
  return *this;
}

bool Join::operator==(const Join& o) const {
  Join a = Normalized();
  Join b = o.Normalized();
  return a.kind == b.kind && a.from == b.from && a.to == b.to;
}

bool BiModel::Contains(const Join& join) const {
  return std::find(joins.begin(), joins.end(), join) != joins.end();
}

const char* SchemaTypeName(SchemaType type) {
  switch (type) {
    case SchemaType::kStar:
      return "star";
    case SchemaType::kSnowflake:
      return "snowflake";
    case SchemaType::kConstellation:
      return "constellation";
    case SchemaType::kOther:
      return "other";
  }
  return "?";
}

std::string JoinToString(const std::vector<Table>& tables, const Join& join) {
  std::string out = ColumnRefToString(tables, join.from);
  out += join.kind == JoinKind::kOneToOne ? " <-> " : " -> ";
  out += ColumnRefToString(tables, join.to);
  out += join.kind == JoinKind::kOneToOne ? " [1:1]" : " [N:1]";
  return out;
}

}  // namespace autobi
