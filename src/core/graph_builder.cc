#include "core/graph_builder.h"

#include <stdexcept>

#include "common/parallel.h"
#include "common/timer.h"
#include "fuzz/faultpoints.h"

namespace autobi {

namespace {
// Sentinel probability marking a candidate whose scoring was skipped after
// a RunContext deadline/cancel trip (real scores are in [0, 1]).
constexpr double kSkippedScore = -1.0;
}  // namespace

JoinGraph BuildJoinGraph(const std::vector<Table>& tables,
                         const CandidateSet& candidates,
                         const LocalModel& model, bool schema_only,
                         double* local_inference_seconds, int threads,
                         const RunContext* run_ctx, StageHealth* health) {
  Timer timer;
  JoinGraph graph(static_cast<int>(tables.size()));
  FeatureContext ctx;
  ctx.tables = &tables;
  ctx.profiles = &candidates.profiles;
  ctx.frequency = &model.frequency();
  // Featurize + score (the expensive part) in parallel; LocalModel::Score is
  // const and stateless. Graph mutation stays serial in candidate order.
  std::vector<double> probabilities = ParallelMap(
      candidates.candidates.size(),
      [&](size_t i) {
        // Item-boundary stop poll: skipped candidates are marked with a
        // sentinel and dropped during the serial edge-add pass below.
        if (run_ctx != nullptr && run_ctx->StopRequested()) {
          return kSkippedScore;
        }
        // Fault point: a worker exception inside a parallel region. The pool
        // rethrows it from the lowest-indexed failing iteration and the
        // service boundary converts it to kInternal.
        if (FaultPoints::Global().Fire("parallel.task")) {
          throw std::runtime_error("injected parallel task fault");
        }
        return model.Score(ctx, candidates.candidates[i], schema_only);
      },
      threads);
  size_t skipped = 0;
  for (size_t i = 0; i < candidates.candidates.size(); ++i) {
    const JoinCandidate& cand = candidates.candidates[i];
    double p = probabilities[i];
    if (p == kSkippedScore) {
      ++skipped;
      continue;
    }
    if (cand.one_to_one) {
      graph.AddOneToOneEdge(cand.src.table, cand.dst.table, cand.src.columns,
                            cand.dst.columns, p);
    } else {
      graph.AddEdge(cand.src.table, cand.dst.table, cand.src.columns,
                    cand.dst.columns, p);
    }
  }
  if (skipped > 0 && health != nullptr) {
    health->MarkDegraded(
        "run stopped during local inference; unscored candidates dropped");
  }
  if (local_inference_seconds != nullptr) {
    *local_inference_seconds = timer.Seconds();
  }
  return graph;
}

}  // namespace autobi
