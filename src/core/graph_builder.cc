#include "core/graph_builder.h"

#include "common/timer.h"

namespace autobi {

JoinGraph BuildJoinGraph(const std::vector<Table>& tables,
                         const CandidateSet& candidates,
                         const LocalModel& model, bool schema_only,
                         double* local_inference_seconds) {
  Timer timer;
  JoinGraph graph(static_cast<int>(tables.size()));
  FeatureContext ctx;
  ctx.tables = &tables;
  ctx.profiles = &candidates.profiles;
  ctx.frequency = &model.frequency();
  for (const JoinCandidate& cand : candidates.candidates) {
    double p = model.Score(ctx, cand, schema_only);
    if (cand.one_to_one) {
      graph.AddOneToOneEdge(cand.src.table, cand.dst.table, cand.src.columns,
                            cand.dst.columns, p);
    } else {
      graph.AddEdge(cand.src.table, cand.dst.table, cand.src.columns,
                    cand.dst.columns, p);
    }
  }
  if (local_inference_seconds != nullptr) {
    *local_inference_seconds = timer.Seconds();
  }
  return graph;
}

}  // namespace autobi
