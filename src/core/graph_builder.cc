#include "core/graph_builder.h"

#include <algorithm>
#include <stdexcept>

#include "common/parallel.h"
#include "common/timer.h"
#include "fuzz/faultpoints.h"

namespace autobi {

std::vector<double> ScoreCandidates(const std::vector<Table>& tables,
                                    const std::vector<TableProfile>& profiles,
                                    const std::vector<JoinCandidate>& candidates,
                                    const LocalModel& model, bool schema_only,
                                    int threads, const RunContext* run_ctx) {
  FeatureContext ctx;
  ctx.tables = &tables;
  ctx.profiles = &profiles;
  ctx.frequency = &model.frequency();
  // Featurize + score (the expensive part) in parallel; LocalModel::Score is
  // const and stateless.
  return ParallelMap(
      candidates.size(),
      [&](size_t i) {
        // Item-boundary stop poll: skipped candidates are marked with a
        // sentinel and dropped during the serial edge-add pass below.
        if (run_ctx != nullptr && run_ctx->StopRequested()) {
          return kSkippedCandidateScore;
        }
        // Fault point: a worker exception inside a parallel region. The pool
        // rethrows it from the lowest-indexed failing iteration and the
        // service boundary converts it to kInternal.
        if (FaultPoints::Global().Fire("parallel.task")) {
          throw std::runtime_error("injected parallel task fault");
        }
        return model.Score(ctx, candidates[i], schema_only);
      },
      threads);
}

JoinGraph BuildJoinGraphFromScores(size_t num_tables,
                                   const std::vector<JoinCandidate>& candidates,
                                   const std::vector<double>& probabilities,
                                   StageHealth* health) {
  JoinGraph graph(static_cast<int>(num_tables));
  size_t skipped = 0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    const JoinCandidate& cand = candidates[i];
    double p = probabilities[i];
    if (p == kSkippedCandidateScore) {
      ++skipped;
      continue;
    }
    if (cand.one_to_one) {
      graph.AddOneToOneEdge(cand.src.table, cand.dst.table, cand.src.columns,
                            cand.dst.columns, p);
    } else {
      graph.AddEdge(cand.src.table, cand.dst.table, cand.src.columns,
                    cand.dst.columns, p);
    }
  }
  if (skipped > 0 && health != nullptr) {
    health->MarkDegraded(
        "run stopped during local inference; unscored candidates dropped");
  }
  return graph;
}

namespace {

// Path-halving union-find over vertex ids.
int FindRoot(std::vector<int>& parent, int v) {
  while (parent[size_t(v)] != v) {
    parent[size_t(v)] = parent[size_t(parent[size_t(v)])];
    v = parent[size_t(v)];
  }
  return v;
}

}  // namespace

std::vector<GraphComponent> PartitionJoinGraph(const JoinGraph& graph) {
  const int n = graph.num_vertices();
  std::vector<int> parent(static_cast<size_t>(n));
  for (int v = 0; v < n; ++v) parent[size_t(v)] = v;
  for (const JoinEdge& e : graph.edges()) {
    int a = FindRoot(parent, e.src);
    int b = FindRoot(parent, e.dst);
    // Union by smaller root id: the root IS the component's smallest vertex,
    // which makes the output ordering below trivially deterministic.
    if (a == b) continue;
    if (a < b) {
      parent[size_t(b)] = a;
    } else {
      parent[size_t(a)] = b;
    }
  }
  // Roots in ascending order = components ordered by smallest vertex.
  std::vector<int> comp_of(size_t(n), -1);
  std::vector<GraphComponent> out;
  for (int v = 0; v < n; ++v) {
    int r = FindRoot(parent, v);
    if (comp_of[size_t(r)] < 0) {
      comp_of[size_t(r)] = int(out.size());
      out.emplace_back();
    }
    out[size_t(comp_of[size_t(r)])].vertices.push_back(v);
  }
  for (const JoinEdge& e : graph.edges()) {
    out[size_t(comp_of[size_t(FindRoot(parent, e.src))])].edge_ids.push_back(
        e.id);
  }
  return out;
}

JoinGraph BuildComponentGraph(const JoinGraph& graph,
                              const GraphComponent& comp) {
  JoinGraph local(int(comp.vertices.size()));
  auto local_id = [&](int v) {
    return int(std::lower_bound(comp.vertices.begin(), comp.vertices.end(), v) -
               comp.vertices.begin());
  };
  for (int id : comp.edge_ids) {
    const JoinEdge& e = graph.edge(id);
    local.AddEdge(local_id(e.src), local_id(e.dst), e.src_columns,
                  e.dst_columns, e.probability, e.one_to_one, e.pair_id);
  }
  return local;
}

JoinGraph BuildJoinGraph(const std::vector<Table>& tables,
                         const CandidateSet& candidates,
                         const LocalModel& model, bool schema_only,
                         double* local_inference_seconds, int threads,
                         const RunContext* run_ctx, StageHealth* health) {
  Timer timer;
  std::vector<double> probabilities =
      ScoreCandidates(tables, candidates.profiles, candidates.candidates,
                      model, schema_only, threads, run_ctx);
  JoinGraph graph = BuildJoinGraphFromScores(
      tables.size(), candidates.candidates, probabilities, health);
  if (local_inference_seconds != nullptr) {
    *local_inference_seconds = timer.Seconds();
  }
  return graph;
}

}  // namespace autobi
