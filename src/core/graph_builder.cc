#include "core/graph_builder.h"

#include "common/parallel.h"
#include "common/timer.h"

namespace autobi {

JoinGraph BuildJoinGraph(const std::vector<Table>& tables,
                         const CandidateSet& candidates,
                         const LocalModel& model, bool schema_only,
                         double* local_inference_seconds, int threads) {
  Timer timer;
  JoinGraph graph(static_cast<int>(tables.size()));
  FeatureContext ctx;
  ctx.tables = &tables;
  ctx.profiles = &candidates.profiles;
  ctx.frequency = &model.frequency();
  // Featurize + score (the expensive part) in parallel; LocalModel::Score is
  // const and stateless. Graph mutation stays serial in candidate order.
  std::vector<double> probabilities = ParallelMap(
      candidates.candidates.size(),
      [&](size_t i) {
        return model.Score(ctx, candidates.candidates[i], schema_only);
      },
      threads);
  for (size_t i = 0; i < candidates.candidates.size(); ++i) {
    const JoinCandidate& cand = candidates.candidates[i];
    double p = probabilities[i];
    if (cand.one_to_one) {
      graph.AddOneToOneEdge(cand.src.table, cand.dst.table, cand.src.columns,
                            cand.dst.columns, p);
    } else {
      graph.AddEdge(cand.src.table, cand.dst.table, cand.src.columns,
                    cand.dst.columns, p);
    }
  }
  if (local_inference_seconds != nullptr) {
    *local_inference_seconds = timer.Seconds();
  }
  return graph;
}

}  // namespace autobi
