#ifndef AUTOBI_CORE_GRAPH_BUILDER_H_
#define AUTOBI_CORE_GRAPH_BUILDER_H_

#include <vector>

#include "common/run_context.h"
#include "core/candidates.h"
#include "core/local_model.h"
#include "graph/join_graph.h"

namespace autobi {

// Algorithm 1: turns scored candidates into the weighted global join graph.
// Each N:1 candidate becomes a directed edge (FK side -> PK side); each 1:1
// candidate becomes a bi-directional edge pair. Edge weights are
// w = -log(P) with P the calibrated local-classifier probability.
//
// Returns the graph; `edge_probabilities` come from `model` evaluated with
// `schema_only` features. `local_inference_seconds`, if non-null, receives
// the featurize+score latency (the Local-Inference component of Fig 5(b)).
// Candidates are featurized and scored in parallel (`threads` as in
// ResolveThreads); edges are then added serially in candidate order, so edge
// ids and probabilities are identical at any thread count.
//
// If `run_ctx` is non-null, each candidate's scoring polls
// RunContext::StopRequested at its boundary; candidates skipped after a
// deadline/cancel trip are dropped from the graph and `health` (if non-null)
// is marked degraded. A null or untripped context yields a byte-identical
// graph.
JoinGraph BuildJoinGraph(const std::vector<Table>& tables,
                         const CandidateSet& candidates,
                         const LocalModel& model, bool schema_only,
                         double* local_inference_seconds = nullptr,
                         int threads = 0,
                         const RunContext* run_ctx = nullptr,
                         StageHealth* health = nullptr);

}  // namespace autobi

#endif  // AUTOBI_CORE_GRAPH_BUILDER_H_
