#ifndef AUTOBI_CORE_GRAPH_BUILDER_H_
#define AUTOBI_CORE_GRAPH_BUILDER_H_

#include <vector>

#include "common/run_context.h"
#include "core/candidates.h"
#include "core/local_model.h"
#include "graph/join_graph.h"

namespace autobi {

// Algorithm 1: turns scored candidates into the weighted global join graph.
// Each N:1 candidate becomes a directed edge (FK side -> PK side); each 1:1
// candidate becomes a bi-directional edge pair. Edge weights are
// w = -log(P) with P the calibrated local-classifier probability.
//
// Returns the graph; `edge_probabilities` come from `model` evaluated with
// `schema_only` features. `local_inference_seconds`, if non-null, receives
// the featurize+score latency (the Local-Inference component of Fig 5(b)).
// Candidates are featurized and scored in parallel (`threads` as in
// ResolveThreads); edges are then added serially in candidate order, so edge
// ids and probabilities are identical at any thread count.
//
// If `run_ctx` is non-null, each candidate's scoring polls
// RunContext::StopRequested at its boundary; candidates skipped after a
// deadline/cancel trip are dropped from the graph and `health` (if non-null)
// is marked degraded. A null or untripped context yields a byte-identical
// graph.
JoinGraph BuildJoinGraph(const std::vector<Table>& tables,
                         const CandidateSet& candidates,
                         const LocalModel& model, bool schema_only,
                         double* local_inference_seconds = nullptr,
                         int threads = 0,
                         const RunContext* run_ctx = nullptr,
                         StageHealth* health = nullptr);

// --- The two halves of BuildJoinGraph, exposed so the incremental engine
// (core/incremental.h) can score only the candidates of changed table pairs
// (reusing cached probabilities elsewhere) and still assemble the exact
// graph a cold run would build.

// Sentinel probability marking a candidate whose scoring was skipped after a
// RunContext deadline/cancel trip (real scores are in [0, 1]).
inline constexpr double kSkippedCandidateScore = -1.0;

// Featurizes and scores `candidates` in parallel — the ParallelMap half of
// BuildJoinGraph, byte-identical scores in candidate order. Skipped
// candidates (stop trip) get kSkippedCandidateScore.
std::vector<double> ScoreCandidates(const std::vector<Table>& tables,
                                    const std::vector<TableProfile>& profiles,
                                    const std::vector<JoinCandidate>& candidates,
                                    const LocalModel& model, bool schema_only,
                                    int threads = 0,
                                    const RunContext* run_ctx = nullptr);

// The serial edge-add half: builds the graph from pre-scored candidates in
// candidate order, dropping kSkippedCandidateScore entries (and marking
// `health` degraded if any were dropped). BuildJoinGraph ==
// BuildJoinGraphFromScores(tables.size(), cands, ScoreCandidates(...)).
JoinGraph BuildJoinGraphFromScores(size_t num_tables,
                                   const std::vector<JoinCandidate>& candidates,
                                   const std::vector<double>& probabilities,
                                   StageHealth* health = nullptr);

// --- Lake-scale partitioned solve (PR 9). On a data lake the join graph is
// a union of disconnected islands; k-MCA-CC cost and the FK-once constraint
// are both separable across connected components (conflict groups share a
// source vertex, and the solver's artificial-root arcs are per-vertex), so
// each component can be solved independently and the per-component
// selections stitched in deterministic component order.

// One connected component of the join graph under undirected connectivity.
// Components are returned ordered by smallest vertex; `vertices` and
// `edge_ids` are ascending. Every vertex appears in exactly one component —
// including edgeless singletons (callers skip solving those).
struct GraphComponent {
  std::vector<int> vertices;
  std::vector<int> edge_ids;
};

std::vector<GraphComponent> PartitionJoinGraph(const JoinGraph& graph);

// The component's induced subgraph with vertices/edges relabeled to local
// dense ids: vertex = rank in comp.vertices, edge k = comp.edge_ids[k]. The
// remap is monotone, so every deterministic tie-break the solver applies to
// local ids agrees with the global-id order restricted to the component.
// Probabilities, weights, 1:1 pair ids and FK-once conflict groups carry
// over exactly (pair ids are passed through verbatim; source keys re-intern
// to the same grouping because interning is per (src, columns)).
JoinGraph BuildComponentGraph(const JoinGraph& graph,
                              const GraphComponent& comp);

// Telemetry of the partitioned global solve (PR 9): how the join graph
// decomposed into connected components and how each fared. The flat
// single-instance solve (0 or 1 solvable component) leaves `used` false.
struct PartitionStats {
  bool used = false;               // Partitioned path taken this run.
  size_t components = 0;           // All components, edgeless singletons too.
  size_t components_solved = 0;    // Components with >= 1 edge (one solve each).
  size_t largest_component_edges = 0;
  // Health of each solved component, in component order. A budget trip
  // degrades that one component (greedy feasible backbone there) while the
  // others keep their exact solves.
  std::vector<StageHealth> component_health;
};

}  // namespace autobi

#endif  // AUTOBI_CORE_GRAPH_BUILDER_H_
