#ifndef AUTOBI_CORE_SCHEMA_DIFF_H_
#define AUTOBI_CORE_SCHEMA_DIFF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "table/table.h"

namespace autobi {

// Schema diffing for incremental re-prediction (core/incremental.h): each
// table of the new submission is classified against a snapshot of the
// previous one by content hash, so the engine knows which cached work is
// still valid. All classifications are hash-proven (modulo 64-bit
// collisions, the same exactness caveat as the PredictCache):
//
//   kUnchanged  byte-identical table (name, column names, cells).
//   kRenamed    same cells, new table and/or column names. Name-free work
//               (profiles, UCCs) transfers; name-dependent work (candidate
//               scores, metadata fallback) does not.
//   kAppended   same name, same columns, old cells an exact prefix of the
//               new ones with rows appended — the profile-merge fast path.
//   kReplaced   same name, different cells (in-place edit / reload).
//   kAdded      no previous table matches.
//
// Previous tables matched by nothing are reported as dropped.

// Hash summary of one table, computed once per healthy run and carried in
// the IncrementalState.
struct TableSnapshot {
  std::string name;
  size_t num_rows = 0;
  size_t num_columns = 0;
  // TableContentHash: name + per-column (name + cells) hashes.
  uint64_t table_hash = 0;
  // Per-column ColumnContentHash (name + cells) — prefix-extendable, the
  // append test re-derives these over the new columns' first num_rows rows.
  std::vector<uint64_t> column_hashes;
  // Per-column ColumnCellsHash (cells only) — the rename detector.
  std::vector<uint64_t> cells_hashes;
};

TableSnapshot SnapshotTable(const Table& table);

enum class TableChangeKind {
  kUnchanged,
  kRenamed,
  kAppended,
  kReplaced,
  kAdded,
};

// Classification of one table of the new submission.
struct TableChange {
  TableChangeKind kind = TableChangeKind::kAdded;
  // Index of the matched previous table (-1 for kAdded).
  int prev_index = -1;
};

// The full diff: per-new-table classifications plus leftover previous
// tables.
struct SchemaDiff {
  std::vector<TableChange> changes;    // Parallel to the new tables.
  std::vector<int> dropped;            // Previous indices matched by nothing.
};

// Diffs `tables` against `prev`; `next` must be the snapshots of `tables`
// (next[i] == SnapshotTable(tables[i]) — precomputed by the caller so the
// hashes can also seed the state update and the solve-memo key). Matching is
// greedy in new-table order, each previous table consumed at most once,
// preferring (1) exact table-hash match, (2) same-name match (classified
// appended/renamed-columns/replaced by the cell hashes), (3) same-shape
// cells match (whole-table rename).
SchemaDiff DiffSchema(const std::vector<TableSnapshot>& prev,
                      const std::vector<TableSnapshot>& next,
                      const std::vector<Table>& tables);

}  // namespace autobi

#endif  // AUTOBI_CORE_SCHEMA_DIFF_H_
