#ifndef AUTOBI_CORE_AUTO_BI_H_
#define AUTOBI_CORE_AUTO_BI_H_

#include <vector>

#include "common/run_context.h"
#include "common/status.h"
#include "core/bi_model.h"
#include "core/candidates.h"
#include "core/graph_builder.h"
#include "core/local_model.h"
#include "graph/kmca_cc.h"

namespace autobi {

// The three Auto-BI variants evaluated in Section 5.
enum class AutoBiMode {
  kFull,           // Auto-BI: precision mode + recall mode.
  kPrecisionOnly,  // Auto-BI-P: k-MCA-CC backbone only.
  kSchemaOnly,     // Auto-BI-S: full pipeline on metadata-only features.
};

struct AutoBiOptions {
  AutoBiMode mode = AutoBiMode::kFull;
  // Worker threads for the data-parallel pipeline stages (profiling/UCC,
  // IND, local inference). ResolveThreads semantics: 0 = AUTOBI_THREADS env
  // or hardware concurrency, 1 = serial. Predictions are bit-identical at
  // any thread count (see ARCHITECTURE.md, "Concurrency model").
  int threads = 0;
  // Virtual-edge probability: penalty p = -log(this). 0.5 is the calibrated
  // coin-toss default (Section 4.3.2, Figure 9(a)).
  double penalty_probability = 0.5;
  // Recall-mode threshold τ (Section 4.3.3, Figure 9(b)).
  double tau = 0.5;
  // --- Ablation switches (Figure 8). Defaults are the full system.
  bool enforce_fk_once = true;    // false => "no-FK-once-constraint".
  bool use_precision_mode = true; // false => "no-precision-mode".
  bool lc_only = false;           // true  => "LC-only".
  CandidateGenOptions candidates;
  KmcaCcOptions solver;  // penalty_weight/enforce_fk_once are overwritten.
  // Optional cross-request cache (core/predict_cache.h; not owned, must
  // outlive the predictor). Flows into candidates.cache for the profiling
  // layer, and additionally memoizes whole healthy solves keyed by the
  // content hash of the table set plus an options/budget fingerprint: a
  // byte-identical re-submission returns the cached result without running
  // the pipeline. Hits are bit-identical to recomputation (models, graph,
  // solver stats); only timing differs. Runs tripped by a deadline/cancel
  // never populate the memo.
  PredictCache* cache = nullptr;
};

// Per-stage latency (seconds) matching Figure 5(b)'s breakdown.
struct AutoBiTiming {
  double ucc = 0.0;
  double ind = 0.0;
  double local_inference = 0.0;
  double global_predict = 0.0;
  // Effective worker-thread count the parallel stages ran with (0 when the
  // producing method predates / bypasses the thread pool).
  int threads = 0;
  double Total() const { return ucc + ind + local_inference + global_predict; }
};

// Per-stage degradation markers for a RunContext-governed run. A healthy
// run (null context, or nothing tripped) leaves every stage untouched; a
// tripped deadline/cancel/budget marks the stages that gave work up, with a
// human-readable trigger (see ARCHITECTURE.md, "Error handling & graceful
// degradation").
struct AutoBiDegradation {
  StageHealth ucc;
  StageHealth ind;
  StageHealth local_inference;
  StageHealth global_predict;

  bool Any() const {
    return ucc.degraded || ind.degraded || local_inference.degraded ||
           global_predict.degraded;
  }
};

// Observability counters of an incremental run (core/incremental.h): how
// much work the delta path actually did versus reused. A cold run (or a
// plain Predict) leaves `used` false and everything zero.
struct IncrementalStats {
  // True when the delta engine ran (false: cold rebuild or plain Predict).
  bool used = false;
  // Tables whose profile + UCCs were recomputed from scratch this run.
  size_t tables_reprofiled = 0;
  // Tables whose cached profile was merged forward over an appended suffix
  // (MergeAppendedTableProfile) instead of rescanned.
  size_t tables_delta_merged = 0;
  // Unordered table pairs whose IND scan + candidate scoring re-ran.
  size_t pairs_rescored = 0;
  // Unordered table pairs whose cached candidates + scores were reused.
  size_t pairs_reused = 0;
  // True when the global solve was reused wholesale because the join graph
  // was structurally identical to the previous run's.
  bool warm_start_used = false;
};

struct AutoBiResult {
  BiModel model;
  AutoBiTiming timing;
  // Solver telemetry for Figures 6 and 7 (summed over components when the
  // partitioned solve ran).
  KmcaCcStats solver_stats;
  double kmca_cc_seconds = 0.0;
  // The constructed join graph (diagnostics / tests).
  JoinGraph graph;
  // Edge ids selected by precision mode (backbone J*) and recall mode (S).
  std::vector<int> backbone_edges;
  std::vector<int> recall_edges;
  // What (if anything) was degraded by the run's deadline/cancel/budgets.
  AutoBiDegradation degradation;
  // Delta-path observability (all-zero unless PredictIncremental ran).
  IncrementalStats incremental;
  // Candidate-generation counters, including the blocking stage's pruning
  // numbers (profile/ind.h). Surfaced by the serve stats/predict verbs and
  // bench_lake.
  IndStats ind_stats;
  // Partitioned-solve telemetry (PartitionStats, core/graph_builder.h).
  PartitionStats partition;
};

// Cross-call state of the incremental engine (core/incremental.h): cached
// snapshots, profiles, per-pair candidates/scores, graph and solve of the
// previous healthy run. Opaque here so auto_bi.h stays free of the engine's
// internals; default-constructible and movable, owned by the caller (one per
// logical table-set, e.g. per serve session).
struct IncrementalState;

// The online Auto-BI predictor (Section 4.3): candidate generation ->
// calibrated local scoring -> k-MCA-CC precision mode -> EMS recall mode.
class AutoBi {
 public:
  // `model` must outlive this object.
  AutoBi(const LocalModel* model, AutoBiOptions options = {});

  // Service entry point. Validates the input tables (kInvalidInput on
  // malformed ones) and runs the pipeline under `ctx` (may be null):
  // deadline/cancel trips and budgets degrade stages gracefully — the call
  // still succeeds with a feasible partial model and the skipped work
  // recorded in result.degradation. Unexpected internal failures (including
  // injected parallel-task faults) surface as kInternal rather than
  // propagating exceptions. A null or untripped context produces output
  // bit-identical to the legacy overload at any thread count.
  StatusOr<AutoBiResult> Predict(const std::vector<Table>& tables,
                                 const RunContext* ctx) const;

  // Legacy trusted-caller form (tests, benchmarks, baselines, synthetic
  // corpora): no context, CHECK-fails on Status errors.
  AutoBiResult Predict(const std::vector<Table>& tables) const;

  // Delta-aware Predict: diffs `tables` against the previous run cached in
  // `*state` (which must outlive the call and be reused across calls over
  // the same evolving table-set) and recomputes only the work touching
  // changed tables — appended tables merge their profiles forward, unchanged
  // pairs reuse their candidates and scores, and a structurally identical
  // join graph reuses the previous global solve wholesale.
  //
  // Contract: the returned result is bit-identical to what Predict would
  // return on the same post-change tables — models, graph, edge sets, solver
  // stats, partition telemetry, degradation markers — with only timing,
  // result.incremental, and result.ind_stats (which counts the scans this
  // run actually performed, not what a cold run would redo) differing. First call (or invalidated/mismatched state) runs a cold
  // rebuild through the same engine; runs the engine cannot serve
  // bit-identically (context stopped at entry, tables over the value-probe
  // budget) invalidate the state and fall back to the plain pipeline.
  // Degraded runs never update the state. `state` must not be shared across
  // concurrent calls.
  StatusOr<AutoBiResult> PredictIncremental(const std::vector<Table>& tables,
                                            const RunContext* ctx,
                                            IncrementalState* state) const;

  const AutoBiOptions& options() const { return options_; }

 private:
  const LocalModel* model_;
  AutoBiOptions options_;
};

// Converts selected graph edges into BiModel joins (1:1 pairs deduplicated to
// a single normalized join).
BiModel EdgesToModel(const JoinGraph& graph, const std::vector<int>& edges);

// Stage 4 of the pipeline (global prediction), factored out so the
// incremental engine runs the exact same code: consumes result->graph and
// fills model/backbone_edges/recall_edges/solver_stats/kmca_cc_seconds,
// timing.global_predict, and degradation.global_predict. Deterministic
// function of (graph, options, ctx stop/budget state).
void RunGlobalPredict(const AutoBiOptions& options, const RunContext* ctx,
                      AutoBiResult* result);

// Fingerprint of everything besides the table bytes that deterministically
// shapes a Predict result: the AutoBi options (execution-only knobs like
// `threads` excluded — results are bit-identical at any thread count) and
// the RunContext's deterministic budgets. Deadlines/cancellation are *not*
// part of the key: they are time-dependent, so runs they trip never populate
// the solve memo (checked via result.degradation). Shared by the PredictCache
// solve memo and the incremental engine's options-change detection.
uint64_t SolveKeyFingerprint(const AutoBiOptions& options,
                             const RunContext* ctx);

}  // namespace autobi

#endif  // AUTOBI_CORE_AUTO_BI_H_
