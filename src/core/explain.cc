#include "core/explain.h"

#include <algorithm>
#include <set>

#include "common/strings.h"
#include "core/join_stats.h"
#include "profile/column_profile.h"
#include "text/similarity.h"
#include "text/tokenize.h"

namespace autobi {

namespace {

std::string RefName(const std::vector<Table>& tables, int table,
                    const std::vector<int>& columns) {
  std::string out;
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += " ";
    out += tables[size_t(table)].column(size_t(columns[i])).name();
  }
  return out;
}

// Recomputes the salient evidence for an edge directly from the data (the
// trained model's internals are not needed for a faithful narrative).
std::vector<std::string> Evidence(const std::vector<Table>& tables,
                                  const std::vector<TableProfile>& profiles,
                                  const JoinEdge& e) {
  std::vector<std::string> out;
  const ColumnProfile& src =
      profiles[size_t(e.src)].columns[size_t(e.src_columns[0])];
  const ColumnProfile& dst =
      profiles[size_t(e.dst)].columns[size_t(e.dst_columns[0])];
  double containment = Containment(src, dst);
  if (containment >= 0.99) {
    out.push_back("every value has a match in the referenced column");
  } else if (containment >= 0.9) {
    out.push_back(StrFormat("%.0f%% of values have a match", containment * 100));
  } else {
    out.push_back(StrFormat("only %.0f%% of values have a match (dirty join)",
                            containment * 100));
  }
  if (dst.IsUnique()) {
    out.push_back("referenced column is a unique key");
  } else {
    out.push_back("referenced column is NOT unique — review this join");
  }

  std::string src_name = RefName(tables, e.src, e.src_columns);
  std::string dst_name = RefName(tables, e.dst, e.dst_columns);
  std::string aug = tables[size_t(e.dst)].name() + " " + dst_name;
  double name_sim = std::max(
      EditSimilarity(NormalizeIdentifier(src_name),
                     NormalizeIdentifier(dst_name)),
      TokenJaccard(TokenizeIdentifier(src_name), TokenizeIdentifier(aug)));
  if (name_sim >= 0.8) {
    out.push_back("column names match closely");
  } else if (name_sim >= 0.4) {
    out.push_back("column names are partially similar");
  } else {
    out.push_back("column names are unrelated (value evidence only)");
  }
  if (e.one_to_one) {
    out.push_back("both sides are keys with mutual containment (1:1)");
  }

  // Execute the join and report its cardinality behaviour — the check a
  // user would run by hand before trusting the relationship.
  Join join;
  join.from = ColumnRef{e.src, e.src_columns};
  join.to = ColumnRef{e.dst, e.dst_columns};
  join.kind = e.one_to_one ? JoinKind::kOneToOne : JoinKind::kNToOne;
  JoinStats stats = ComputeJoinStats(tables, join);
  if (stats.max_fanout > 1) {
    out.push_back(StrFormat("join fans out (up to %zu matches per row)",
                            stats.max_fanout));
  } else if (stats.LooksLikeCleanNToOne()) {
    out.push_back("join executes as a clean N:1");
  }
  return out;
}

}  // namespace

std::string JoinExplanation::ToString(
    const std::vector<Table>& tables) const {
  std::string out = JoinToString(tables, join);
  out += StrFormat("  [P=%.2f, %s] ", probability, stage.c_str());
  out += JoinStrings(evidence, "; ");
  return out;
}

std::vector<JoinExplanation> ExplainPrediction(
    const std::vector<Table>& tables, const AutoBiResult& result) {
  std::vector<TableProfile> profiles = ProfileTables(tables);
  std::set<int> backbone(result.backbone_edges.begin(),
                         result.backbone_edges.end());

  std::vector<JoinExplanation> out;
  std::set<int> used_pairs;
  auto add = [&](int id) {
    const JoinEdge& e = result.graph.edge(id);
    if (e.one_to_one) {
      if (used_pairs.count(e.pair_id)) return;
      used_pairs.insert(e.pair_id);
    }
    JoinExplanation ex;
    ex.join.from = ColumnRef{e.src, e.src_columns};
    ex.join.to = ColumnRef{e.dst, e.dst_columns};
    ex.join.kind = e.one_to_one ? JoinKind::kOneToOne : JoinKind::kNToOne;
    ex.join = ex.join.Normalized();
    ex.probability = e.probability;
    ex.stage = backbone.count(id) ? "precision-mode backbone" : "recall mode";
    ex.evidence = Evidence(tables, profiles, e);
    out.push_back(std::move(ex));
  };
  for (int id : result.backbone_edges) add(id);
  for (int id : result.recall_edges) add(id);
  return out;
}

}  // namespace autobi
