#ifndef AUTOBI_CORE_EXPLAIN_H_
#define AUTOBI_CORE_EXPLAIN_H_

#include <string>
#include <vector>

#include "core/auto_bi.h"

namespace autobi {

// Human-readable rationale for one predicted join: the calibrated
// probability, whether the edge came from the precision-mode backbone or
// recall mode, and the strongest evidence behind it. Self-service BI users
// cannot debug a wrong join from a bare edge list (the paper's motivation
// for case-level precision); explanations are the practical mitigation.
struct JoinExplanation {
  Join join;
  double probability = 0.0;
  // "precision-mode backbone" or "recall mode".
  std::string stage;
  // Evidence strings like "value containment 0.98", "column names highly
  // similar", ordered by salience.
  std::vector<std::string> evidence;

  // One-line rendering.
  std::string ToString(const std::vector<Table>& tables) const;
};

// Explains every join of an AutoBi prediction. `tables` must be the tables
// the result was predicted from.
std::vector<JoinExplanation> ExplainPrediction(
    const std::vector<Table>& tables, const AutoBiResult& result);

}  // namespace autobi

#endif  // AUTOBI_CORE_EXPLAIN_H_
