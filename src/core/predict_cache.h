#ifndef AUTOBI_CORE_PREDICT_CACHE_H_
#define AUTOBI_CORE_PREDICT_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/bi_model.h"
#include "core/graph_builder.h"
#include "graph/join_graph.h"
#include "graph/kmca_cc.h"
#include "profile/column_profile.h"
#include "profile/ind.h"
#include "profile/ucc.h"

namespace autobi {

// Cross-request caches for the prediction pipeline, keyed by content hash
// (profile/sketch.h). A PredictCache outlives individual Predict calls: the
// serving layer (src/serve/) shares one instance across sessions and
// requests, so re-uploading a mostly-unchanged schema skips re-profiling
// unchanged tables — the UCC/profiling stage is the dominant latency
// component (Figure 5(b)) — and an entirely unchanged case skips the whole
// pipeline via the solve memo.
//
// Correctness contract (see SERVING.md, "Cache keying & invalidation"):
//   - Keys are pure functions of the input bytes plus the relevant option
//     fingerprint, so a hit returns exactly what recomputation would have
//     produced (modulo 64-bit hash collisions, probability ~ n^2 / 2^64).
//     Warm results are bit-identical to cold ones; tests/serve_test.cc pins
//     this and bench_serve measures the speedup.
//   - Entries are immutable once inserted (shared_ptr<const T>), so lookups
//     need no copy and hits can be shared across concurrent requests.
//   - Only healthy (non-degraded) results are cached: a run tripped by a
//     deadline/cancel is time-dependent and never populates either cache.
//     Deterministic budgets are part of the key instead.
//   - Capacity-bounded: eviction is FIFO by insertion order (cheap, and
//     admission order is deterministic enough for an LRU-shaped workload).
//
// Thread safety: all methods may be called concurrently.
class PredictCache {
 public:
  // Profiling output of one table under one UccOptions fingerprint.
  struct TableEntry {
    TableProfile profile;
    std::vector<Ucc> uccs;
  };

  // A finished global solve for one (case, options, budgets) key. Timing is
  // intentionally absent: a warm hit reports its own (near-zero) timings.
  struct SolveEntry {
    BiModel model;
    JoinGraph graph;
    std::vector<int> backbone_edges;
    std::vector<int> recall_edges;
    KmcaCcStats solver_stats;
    // Work counters of the producing run, replayed verbatim on a hit so warm
    // results stay bit-identical to cold ones (blocking/pruning counters and
    // partitioned-solve telemetry included).
    IndStats ind_stats;
    PartitionStats partition;
  };

  struct Stats {
    size_t table_hits = 0;
    size_t table_misses = 0;
    size_t solve_hits = 0;
    size_t solve_misses = 0;
    size_t table_entries = 0;
    size_t solve_entries = 0;
    size_t evictions = 0;
  };

  struct Options {
    size_t max_table_entries = 4096;
    size_t max_solve_entries = 512;
  };

  PredictCache() = default;
  explicit PredictCache(Options options) : options_(options) {}
  PredictCache(const PredictCache&) = delete;
  PredictCache& operator=(const PredictCache&) = delete;

  // --- Table-profile cache. `key` = TableContentHash ⊕ UccOptions
  // fingerprint (the caller mixes them; see candidates.cc).
  std::shared_ptr<const TableEntry> FindTable(uint64_t key) const;
  void InsertTable(uint64_t key, std::shared_ptr<const TableEntry> entry);

  // --- Solve memo. `key` = TablesContentHash ⊕ AutoBiOptions/budget
  // fingerprint (see auto_bi.cc).
  std::shared_ptr<const SolveEntry> FindSolve(uint64_t key) const;
  void InsertSolve(uint64_t key, std::shared_ptr<const SolveEntry> entry);

  Stats GetStats() const;
  void Clear();

 private:
  template <typename T>
  struct Shard {
    std::unordered_map<uint64_t, std::shared_ptr<const T>> map;
    std::vector<uint64_t> insertion_order;  // FIFO eviction queue.
    size_t hits = 0;
    size_t misses = 0;
  };

  template <typename T>
  std::shared_ptr<const T> Find(const Shard<T>& shard, uint64_t key) const;
  template <typename T>
  void Insert(Shard<T>& shard, size_t capacity, uint64_t key,
              std::shared_ptr<const T> entry);

  Options options_;
  mutable std::mutex mu_;
  Shard<TableEntry> tables_;
  Shard<SolveEntry> solves_;
  size_t evictions_ = 0;
};

}  // namespace autobi

#endif  // AUTOBI_CORE_PREDICT_CACHE_H_
