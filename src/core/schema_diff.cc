#include "core/schema_diff.h"

#include "profile/sketch.h"

namespace autobi {

namespace {

// True when every column of `table` extends the matched snapshot's column by
// appended rows only: the snapshot's (name + cells) hash must reappear as
// the prefix content hash of the new column over the old row count.
bool IsAppendOnlyExtension(const TableSnapshot& prev, const Table& table) {
  if (table.num_columns() != prev.num_columns) return false;
  if (table.num_rows() < prev.num_rows) return false;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (ColumnContentHashPrefix(table.column(c), prev.num_rows) !=
        prev.column_hashes[c]) {
      return false;
    }
  }
  return true;
}

// True when the tables hold the same cells column-by-column regardless of
// any name (table or column) differences.
bool SameCells(const TableSnapshot& prev, const TableSnapshot& next) {
  if (next.num_columns != prev.num_columns) return false;
  if (next.num_rows != prev.num_rows) return false;
  for (size_t c = 0; c < next.num_columns; ++c) {
    if (next.cells_hashes[c] != prev.cells_hashes[c]) return false;
  }
  return true;
}

}  // namespace

TableSnapshot SnapshotTable(const Table& table) {
  TableSnapshot snap;
  snap.name = table.name();
  snap.num_rows = table.num_rows();
  snap.num_columns = table.num_columns();
  snap.column_hashes.reserve(table.num_columns());
  snap.cells_hashes.reserve(table.num_columns());
  // One pass over the cell bytes per column: the named hash and the table
  // hash are both recompositions of the cells hash (profile/sketch.h).
  for (size_t c = 0; c < table.num_columns(); ++c) {
    uint64_t cells = ColumnCellsHash(table.column(c));
    snap.cells_hashes.push_back(cells);
    snap.column_hashes.push_back(
        ColumnContentHashFromCells(table.column(c).name(), cells));
  }
  snap.table_hash =
      TableContentHashFromColumnHashes(table.name(), snap.column_hashes);
  return snap;
}

SchemaDiff DiffSchema(const std::vector<TableSnapshot>& prev,
                      const std::vector<TableSnapshot>& next,
                      const std::vector<Table>& tables) {
  SchemaDiff diff;
  diff.changes.resize(tables.size());
  std::vector<char> used(prev.size(), 0);

  // Pass 1: exact matches (kUnchanged) claim their previous table first so a
  // same-name-but-edited twin can never steal an unchanged table's cache.
  for (size_t i = 0; i < tables.size(); ++i) {
    for (size_t p = 0; p < prev.size(); ++p) {
      if (used[p]) continue;
      if (prev[p].table_hash == next[i].table_hash) {
        diff.changes[i] = {TableChangeKind::kUnchanged, int(p)};
        used[p] = 1;
        break;
      }
    }
  }
  // Pass 2: same-name matches — appended / column-renamed / replaced.
  for (size_t i = 0; i < tables.size(); ++i) {
    if (diff.changes[i].prev_index >= 0) continue;
    for (size_t p = 0; p < prev.size(); ++p) {
      if (used[p] || prev[p].name != next[i].name) continue;
      TableChangeKind kind;
      if (SameCells(prev[p], next[i])) {
        kind = TableChangeKind::kRenamed;  // Same cells, new column names.
      } else if (IsAppendOnlyExtension(prev[p], tables[i])) {
        kind = TableChangeKind::kAppended;
      } else {
        kind = TableChangeKind::kReplaced;
      }
      diff.changes[i] = {kind, int(p)};
      used[p] = 1;
      break;
    }
  }
  // Pass 3: whole-table renames — same cells under a different table name.
  for (size_t i = 0; i < tables.size(); ++i) {
    if (diff.changes[i].prev_index >= 0) continue;
    for (size_t p = 0; p < prev.size(); ++p) {
      if (used[p]) continue;
      if (SameCells(prev[p], next[i])) {
        diff.changes[i] = {TableChangeKind::kRenamed, int(p)};
        used[p] = 1;
        break;
      }
    }
  }
  // Everything still unmatched is new; leftover previous tables are dropped.
  for (size_t i = 0; i < tables.size(); ++i) {
    if (diff.changes[i].prev_index < 0) {
      diff.changes[i] = {TableChangeKind::kAdded, -1};
    }
  }
  for (size_t p = 0; p < prev.size(); ++p) {
    if (!used[p]) diff.dropped.push_back(int(p));
  }
  return diff;
}

}  // namespace autobi
