#include "core/incremental.h"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <utility>

#include "common/parallel.h"
#include "common/strings.h"
#include "common/timer.h"
#include "core/candidates.h"
#include "core/graph_builder.h"
#include "fuzz/faultpoints.h"
#include "profile/ind.h"
#include "profile/sketch.h"
#include "table/key_view.h"

namespace autobi {

namespace {

// Remaps a cached pair entry from the previous run's table index space into
// the new one and restores the new space's canonical form: per-candidate
// index relabel, 1:1 reorientation to the lower endpoint (the canonical
// swap of AddIndCandidates, which depends on index order), and a re-sort by
// the (src, dst) dedup key (relabeling can change the within-pair order a
// cold run would produce). Probabilities travel with their candidates —
// they are pure functions of the (unchanged) endpoint tables.
IncrementalPairEntry RemapPairEntry(const IncrementalPairEntry& old_entry,
                                    const std::vector<int>& prev_to_new) {
  struct Item {
    JoinCandidate cand;
    double prob;
  };
  std::vector<Item> items;
  items.reserve(old_entry.candidates.size());
  for (size_t k = 0; k < old_entry.candidates.size(); ++k) {
    JoinCandidate cand = old_entry.candidates[k];
    cand.src.table = prev_to_new[size_t(cand.src.table)];
    cand.dst.table = prev_to_new[size_t(cand.dst.table)];
    if (cand.one_to_one && cand.dst < cand.src) {
      std::swap(cand.src, cand.dst);
      std::swap(cand.left_containment, cand.right_containment);
    }
    items.push_back(Item{std::move(cand), old_entry.probabilities[k]});
  }
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    if (!(a.cand.src == b.cand.src)) return a.cand.src < b.cand.src;
    return a.cand.dst < b.cand.dst;
  });
  IncrementalPairEntry entry;
  entry.candidates.reserve(items.size());
  entry.probabilities.reserve(items.size());
  for (Item& item : items) {
    entry.candidates.push_back(std::move(item.cand));
    entry.probabilities.push_back(item.prob);
  }
  return entry;
}

}  // namespace

AutoBiResult RunIncrementalPipeline(const LocalModel& model,
                                    const AutoBiOptions& options,
                                    const std::vector<Table>& tables,
                                    const RunContext* ctx,
                                    IncrementalState* state) {
  AutoBiResult result;
  result.timing.threads = ResolveThreads(options.threads);
  const int threads = options.candidates.threads != 0
                          ? options.candidates.threads
                          : options.threads;
  const size_t n = tables.size();

  const uint64_t fp = SolveKeyFingerprint(options, ctx);
  const bool delta = state->valid && state->options_fp == fp;
  result.incremental.used = delta;

  // --- Diff stage (folded into the UCC timing bucket, like the content
  // hashing cold candidate generation performs). One hash pass per table;
  // everything after is sized by what actually changed.
  Timer ucc_timer;
  std::vector<TableSnapshot> next(n);
  ParallelFor(
      n, [&](size_t i) { next[i] = SnapshotTable(tables[i]); }, threads);
  SchemaDiff diff;
  if (delta) {
    diff = DiffSchema(state->snapshots, next, tables);
  } else {
    // Cold rebuild through the same code path: every table is new.
    diff.changes.assign(n, TableChange{TableChangeKind::kAdded, -1});
  }

  // --- Stage 1: profiles + UCCs. Unchanged/renamed tables reuse (profiles
  // and UCCs are name-free); appended tables merge the cached profile
  // forward over the delta rows and re-run only the (profile-pruned) UCC
  // lattice; everything else is profiled from scratch.
  std::vector<TableProfile> profiles(n);
  std::vector<std::vector<Ucc>> uccs(n);
  std::atomic<bool> ucc_stopped{false};
  std::atomic<size_t> reprofiled{0};
  std::atomic<size_t> merged{0};
  ParallelFor(
      n,
      [&](size_t i) {
        const TableChange& ch = diff.changes[i];
        if (ch.kind == TableChangeKind::kUnchanged ||
            ch.kind == TableChangeKind::kRenamed) {
          profiles[i] = state->profiles[size_t(ch.prev_index)];
          uccs[i] = state->uccs[size_t(ch.prev_index)];
          return;
        }
        // Item-boundary stop poll, mirroring GenerateCandidates: remaining
        // tables fall back to metadata-only profiles and the stage is
        // marked degraded (the run will not commit state).
        if (ctx != nullptr && ctx->StopRequested()) {
          ucc_stopped.store(true, std::memory_order_relaxed);
          profiles[i] = MetadataOnlyProfile(tables[i]);
          return;
        }
        if (ch.kind == TableChangeKind::kAppended) {
          profiles[i] = MergeAppendedTableProfile(
              state->profiles[size_t(ch.prev_index)], tables[i]);
          // UCCs are not mergeable (one duplicate delta row can kill a key);
          // re-run the lattice, which is profile-pruned and lazily builds
          // only the views arity >= 2 candidates touch.
          uccs[i] = DiscoverUccs(tables[i], profiles[i], options.candidates.ucc);
          merged.fetch_add(1, std::memory_order_relaxed);
        } else {
          TableKeyView view(tables[i]);
          profiles[i] = ProfileTable(tables[i], view);
          uccs[i] =
              DiscoverUccs(tables[i], profiles[i], options.candidates.ucc, &view);
          reprofiled.fetch_add(1, std::memory_order_relaxed);
        }
      },
      threads);
  if (ucc_stopped.load(std::memory_order_relaxed)) {
    result.degradation.ucc.MarkDegraded(
        "run stopped during profiling/UCC; remaining tables metadata-only");
  }
  result.incremental.tables_reprofiled =
      reprofiled.load(std::memory_order_relaxed);
  result.incremental.tables_delta_merged =
      merged.load(std::memory_order_relaxed);
  result.timing.ucc = ucc_timer.Seconds();

  // --- Stage 2+3 prelude: plan the unordered pairs. A pair's cached
  // candidates + scores are reusable only when BOTH endpoints are fully
  // unchanged (scores and the metadata fallback read table/column names, so
  // a rename invalidates them even though its profile transferred).
  std::vector<int> prev_to_new(state->snapshots.size(), -1);
  if (delta) {
    for (size_t i = 0; i < n; ++i) {
      if (diff.changes[i].prev_index >= 0) {
        prev_to_new[size_t(diff.changes[i].prev_index)] = int(i);
      }
    }
  }
  struct PairPlan {
    int i;
    int j;
    bool reuse;
  };
  std::vector<PairPlan> plans;
  plans.reserve(n * (n - 1) / 2);
  for (int i = 0; i < int(n); ++i) {
    for (int j = i + 1; j < int(n); ++j) {
      bool reuse = delta &&
                   diff.changes[size_t(i)].kind == TableChangeKind::kUnchanged &&
                   diff.changes[size_t(j)].kind == TableChangeKind::kUnchanged;
      plans.push_back(PairPlan{i, j, reuse});
    }
  }

  // --- Stage 2: IND scans for the pairs that need recomputation, fanned out
  // like DiscoverInds (the (i, j) scan ordered before (j, i), matching the
  // cold ti-major enumeration within each unordered pair).
  Timer ind_timer;
  IndOptions ind_options = options.candidates.ind;
  if (ind_options.threads == 0) ind_options.threads = threads;
  CompositeKeyCache composite_cache;
  // Re-seed referenced key sets for content-unchanged tables (renames keep
  // the cells, and sets are name-free). Rescans of pairs touching a changed
  // table then only rebuild the changed side's sets.
  if (delta) {
    for (const auto& [key, set] : state->key_sets) {
      int new_index = prev_to_new[size_t(key.first)];
      if (new_index < 0) continue;
      TableChangeKind kind = diff.changes[size_t(new_index)].kind;
      if (kind != TableChangeKind::kUnchanged &&
          kind != TableChangeKind::kRenamed) {
        continue;
      }
      composite_cache.Seed(new_index, key.second, set);
    }
  }
  std::vector<size_t> compute;
  for (size_t k = 0; k < plans.size(); ++k) {
    if (!plans[k].reuse) compute.push_back(k);
  }
  struct PairScans {
    IndPairScan fwd;
    IndPairScan rev;
  };
  std::vector<PairScans> scans(compute.size());
  std::atomic<bool> ind_stopped{false};
  ParallelFor(
      compute.size(),
      [&](size_t k) {
        const PairPlan& pl = plans[compute[k]];
        if (ctx != nullptr && ctx->StopRequested()) {
          ind_stopped.store(true, std::memory_order_relaxed);
          return;
        }
        scans[k].fwd = ScanTablePair(tables, profiles, uccs, ind_options,
                                     &composite_cache, pl.i, pl.j);
        scans[k].rev = ScanTablePair(tables, profiles, uccs, ind_options,
                                     &composite_cache, pl.j, pl.i);
      },
      ind_options.threads);
  if (ind_stopped.load(std::memory_order_relaxed)) {
    result.degradation.ind.MarkDegraded(
        "run stopped during IND discovery; remaining pairs skipped");
  }
  // Work counters for the scans this run actually performed (reused pairs
  // contribute nothing — that is the point of the delta path). Pair-local
  // blocking counters land in ind_stats.blocking via ScanTablePair.
  for (const PairScans& sc : scans) {
    result.ind_stats.Add(sc.fwd.stats);
    result.ind_stats.Add(sc.rev.stats);
  }

  // Candidate conversion + metadata fallback, serial per pair in pair
  // order. Candidate (src, dst) keys determine their unordered table pair
  // even after 1:1 canonical swaps, so per-pair dedup maps partition the
  // cold run's global map exactly.
  std::vector<char> probed(n, 1);
  for (size_t i = 0; i < n; ++i) {
    probed[i] = tables[i].num_rows() > 0;
  }
  std::vector<IncrementalPairEntry> entries(plans.size());
  size_t next_scan = 0;
  for (size_t k = 0; k < plans.size(); ++k) {
    const PairPlan& pl = plans[k];
    if (pl.reuse) {
      int pi = diff.changes[size_t(pl.i)].prev_index;
      int pj = diff.changes[size_t(pl.j)].prev_index;
      auto key = std::make_pair(std::min(pi, pj), std::max(pi, pj));
      entries[k] = RemapPairEntry(state->pairs.at(key), prev_to_new);
      ++result.incremental.pairs_reused;
      continue;
    }
    const PairScans& sc = scans[next_scan++];
    CandidateMap dedup;
    AddIndCandidates(sc.fwd.inds, tables, profiles, options.candidates,
                     &composite_cache, &dedup);
    AddIndCandidates(sc.rev.inds, tables, profiles, options.candidates,
                     &composite_cache, &dedup);
    if (options.candidates.metadata_fallback_for_empty_tables) {
      AddMetadataFallbackCandidates(tables, probed, pl.i, pl.j, &dedup);
      AddMetadataFallbackCandidates(tables, probed, pl.j, pl.i, &dedup);
    }
    entries[k].candidates.reserve(dedup.size());
    for (auto& [cand_key, cand] : dedup) {
      (void)cand_key;
      entries[k].candidates.push_back(std::move(cand));
    }
    ++result.incremental.pairs_rescored;
  }

  // Global assembly: merge every pair's (sorted, disjoint-keyed) candidates
  // into the cold run's global dedup order, then apply the same candidate
  // budget / fault-point truncation to the sorted whole.
  struct Origin {
    size_t plan;
    size_t idx;  // Position within entries[plan].candidates.
  };
  std::vector<JoinCandidate> candidates;
  std::vector<Origin> origins;
  {
    size_t total = 0;
    for (const IncrementalPairEntry& e : entries) total += e.candidates.size();
    candidates.reserve(total);
    origins.reserve(total);
    for (size_t k = 0; k < entries.size(); ++k) {
      for (size_t c = 0; c < entries[k].candidates.size(); ++c) {
        candidates.push_back(entries[k].candidates[c]);
        origins.push_back(Origin{k, c});
      }
    }
    std::vector<size_t> order(candidates.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      const JoinCandidate& ca = candidates[a];
      const JoinCandidate& cb = candidates[b];
      if (!(ca.src == cb.src)) return ca.src < cb.src;
      return ca.dst < cb.dst;
    });
    std::vector<JoinCandidate> sorted_cands;
    std::vector<Origin> sorted_origins;
    sorted_cands.reserve(candidates.size());
    sorted_origins.reserve(origins.size());
    for (size_t idx : order) {
      sorted_cands.push_back(std::move(candidates[idx]));
      sorted_origins.push_back(origins[idx]);
    }
    candidates = std::move(sorted_cands);
    origins = std::move(sorted_origins);
  }
  if (ctx != nullptr && ctx->budgets.max_candidate_pairs > 0 &&
      candidates.size() > ctx->budgets.max_candidate_pairs) {
    size_t dropped = candidates.size() - ctx->budgets.max_candidate_pairs;
    candidates.resize(ctx->budgets.max_candidate_pairs);
    origins.resize(candidates.size());
    result.degradation.ind.MarkDegraded(
        StrFormat("candidate-pair budget hit: dropped %zu of %zu pairs",
                  dropped, dropped + candidates.size()));
  }
  if (FaultPoints::Global().Fire("candidates.exhausted") &&
      !candidates.empty()) {
    double keep = FaultPoints::Global().Fraction("candidates.exhausted");
    size_t kept = static_cast<size_t>(keep * double(candidates.size()));
    candidates.resize(kept);
    origins.resize(kept);
    result.degradation.ind.MarkDegraded(
        "injected resource exhaustion in candidate generation");
  }
  result.timing.ind = ind_timer.Seconds();

  // --- Stage 3: local inference. Reused pairs carry their cached scores;
  // only candidates from rescored pairs go through the featurizer. The
  // surviving (candidate, probability) pairs equal cold's truncate-then-
  // score output because scores are pure per-candidate functions.
  Timer li_timer;
  bool schema_only = options.mode == AutoBiMode::kSchemaOnly;
  std::vector<double> probabilities(candidates.size(), 0.0);
  std::vector<size_t> need;
  std::vector<JoinCandidate> to_score;
  for (size_t i = 0; i < candidates.size(); ++i) {
    const IncrementalPairEntry& e = entries[origins[i].plan];
    if (!e.probabilities.empty()) {
      probabilities[i] = e.probabilities[origins[i].idx];
    } else {
      need.push_back(i);
      to_score.push_back(candidates[i]);
    }
  }
  std::vector<double> fresh = ScoreCandidates(
      tables, profiles, to_score, model, schema_only, options.threads, ctx);
  for (size_t k = 0; k < need.size(); ++k) {
    probabilities[need[k]] = fresh[k];
  }
  result.timing.local_inference = li_timer.Seconds();
  result.graph = BuildJoinGraphFromScores(
      n, candidates, probabilities, &result.degradation.local_inference);

  // Backfill the freshly computed scores into their pair entries for the
  // state commit (only a healthy run commits, and a healthy run scored
  // every candidate — nothing truncated or skipped).
  for (size_t i = 0; i < candidates.size(); ++i) {
    IncrementalPairEntry& e = entries[origins[i].plan];
    if (e.probabilities.empty()) {
      e.probabilities.resize(e.candidates.size(), kSkippedCandidateScore);
    }
  }
  for (size_t i = 0; i < candidates.size(); ++i) {
    entries[origins[i].plan].probabilities[origins[i].idx] = probabilities[i];
  }

  // --- Stage 4: global prediction. A structurally identical graph licenses
  // wholesale reuse of the previous solve (the solve is a deterministic
  // function of the graph and the fingerprinted options); anything else —
  // including a stop trip, which cold handles inside RunGlobalPredict —
  // runs the exact cold stage-4 code.
  if (!(ctx != nullptr && ctx->StopRequested()) && delta &&
      state->graph.StructurallyEqual(result.graph)) {
    Timer global_timer;
    result.model = state->model;
    result.backbone_edges = state->backbone_edges;
    result.recall_edges = state->recall_edges;
    result.solver_stats = state->solver_stats;
    result.partition = state->partition;
    result.incremental.warm_start_used = true;
    result.timing.global_predict = global_timer.Seconds();
  } else {
    RunGlobalPredict(options, ctx, &result);
  }

  // --- Commit. Only a healthy run may become the next diff baseline:
  // degraded runs carry partial profiles/candidates that would poison every
  // later reuse. The previous healthy state stays valid as a baseline.
  if (!result.degradation.Any()) {
    state->valid = true;
    state->options_fp = fp;
    state->snapshots = std::move(next);
    state->profiles = std::move(profiles);
    state->uccs = std::move(uccs);
    state->pairs.clear();
    for (size_t k = 0; k < plans.size(); ++k) {
      state->pairs.emplace(std::make_pair(plans[k].i, plans[k].j),
                           std::move(entries[k]));
    }
    state->key_sets.clear();
    for (auto& [key, set] : composite_cache.Entries()) {
      state->key_sets.emplace(std::move(key), std::move(set));
    }
    state->graph = result.graph;
    state->model = result.model;
    state->backbone_edges = result.backbone_edges;
    state->recall_edges = result.recall_edges;
    state->solver_stats = result.solver_stats;
    state->partition = result.partition;
  }
  return result;
}

}  // namespace autobi
