#include "core/auto_bi.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/check.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "graph/ems.h"
#include "graph/kmca.h"

namespace autobi {

AutoBi::AutoBi(const LocalModel* model, AutoBiOptions options)
    : model_(model), options_(std::move(options)) {
  AUTOBI_CHECK(model_ != nullptr);
}

BiModel EdgesToModel(const JoinGraph& graph, const std::vector<int>& edges) {
  BiModel model;
  std::set<int> used_pairs;
  for (int id : edges) {
    const JoinEdge& e = graph.edge(id);
    if (e.one_to_one) {
      if (used_pairs.count(e.pair_id)) continue;
      used_pairs.insert(e.pair_id);
    }
    Join join;
    join.from = ColumnRef{e.src, e.src_columns};
    join.to = ColumnRef{e.dst, e.dst_columns};
    join.kind = e.one_to_one ? JoinKind::kOneToOne : JoinKind::kNToOne;
    model.joins.push_back(join.Normalized());
  }
  return model;
}

AutoBiResult AutoBi::Predict(const std::vector<Table>& tables) const {
  AutoBiResult result;
  result.timing.threads = ResolveThreads(options_.threads);

  // Stage 1+2: UCC and IND discovery (candidate generation). The top-level
  // thread setting flows into candidate generation unless the caller pinned
  // a stage-specific count.
  CandidateGenOptions cand_options = options_.candidates;
  if (cand_options.threads == 0) cand_options.threads = options_.threads;
  CandidateSet candidates = GenerateCandidates(tables, cand_options);
  result.timing.ucc = candidates.ucc_seconds;
  result.timing.ind = candidates.ind_seconds;

  // Stage 3: local inference — featurize and score each candidate with the
  // calibrated classifiers (Algorithm 1).
  bool schema_only = options_.mode == AutoBiMode::kSchemaOnly;
  result.graph = BuildJoinGraph(tables, candidates, *model_, schema_only,
                                &result.timing.local_inference,
                                options_.threads);
  const JoinGraph& graph = result.graph;

  // Stage 4: global prediction.
  Timer global_timer;
  if (options_.lc_only) {
    // Ablation: keep every edge with calibrated probability >= 0.5, no graph
    // optimization (the "LC-only" bar of Figure 8).
    std::vector<int> kept;
    for (const JoinEdge& e : graph.edges()) {
      if (e.probability >= 0.5) kept.push_back(e.id);
    }
    result.model = EdgesToModel(graph, kept);
    result.backbone_edges = kept;
    result.timing.global_predict = global_timer.Seconds();
    return result;
  }

  double penalty =
      -std::log(JoinGraph::ClampProbability(options_.penalty_probability));

  if (options_.use_precision_mode) {
    // Precision mode: the most probable k-snowflakes under FK-once
    // (k-MCA-CC, Algorithm 3).
    KmcaCcOptions solver = options_.solver;
    solver.penalty_weight = penalty;
    solver.enforce_fk_once = options_.enforce_fk_once;
    Timer kmca_timer;
    KmcaResult backbone = SolveKmcaCc(graph, solver, &result.solver_stats);
    result.kmca_cc_seconds = kmca_timer.Seconds();
    result.backbone_edges = backbone.edge_ids;
  } else {
    // Ablation "no-precision-mode": recall mode growing from nothing.
    result.backbone_edges.clear();
  }

  if (options_.mode != AutoBiMode::kPrecisionOnly) {
    // Recall mode: grow extra confident joins on top of the backbone (EMS).
    EmsOptions ems;
    ems.tau = options_.tau;
    result.recall_edges = SolveEmsGreedy(graph, result.backbone_edges, ems);
  }

  std::vector<int> all_edges = result.backbone_edges;
  all_edges.insert(all_edges.end(), result.recall_edges.begin(),
                   result.recall_edges.end());
  std::sort(all_edges.begin(), all_edges.end());
  result.model = EdgesToModel(graph, all_edges);
  result.timing.global_predict = global_timer.Seconds();
  return result;
}

}  // namespace autobi
