#include "core/auto_bi.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <exception>
#include <memory>
#include <set>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "common/strings.h"
#include "common/timer.h"
#include "core/incremental.h"
#include "core/predict_cache.h"
#include "graph/ems.h"
#include "graph/kmca.h"
#include "profile/sketch.h"

namespace autobi {

AutoBi::AutoBi(const LocalModel* model, AutoBiOptions options)
    : model_(model), options_(std::move(options)) {
  // invariant: constructing a predictor without a trained model is a
  // programmer error, not an input error.
  AUTOBI_CHECK(model_ != nullptr);
}

BiModel EdgesToModel(const JoinGraph& graph, const std::vector<int>& edges) {
  BiModel model;
  std::set<int> used_pairs;
  for (int id : edges) {
    const JoinEdge& e = graph.edge(id);
    if (e.one_to_one) {
      if (used_pairs.count(e.pair_id)) continue;
      used_pairs.insert(e.pair_id);
    }
    Join join;
    join.from = ColumnRef{e.src, e.src_columns};
    join.to = ColumnRef{e.dst, e.dst_columns};
    join.kind = e.one_to_one ? JoinKind::kOneToOne : JoinKind::kNToOne;
    model.joins.push_back(join.Normalized());
  }
  return model;
}

namespace {

uint64_t MixU64(uint64_t h, uint64_t v) { return SplitMix64(h ^ v); }

uint64_t MixDouble(uint64_t h, double d) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  return MixU64(h, bits);
}

}  // namespace

uint64_t SolveKeyFingerprint(const AutoBiOptions& o, const RunContext* ctx) {
  uint64_t h = MixU64(0xA07B1BEEFCAFE001ULL, uint64_t(o.mode));
  h = MixDouble(h, o.penalty_probability);
  h = MixDouble(h, o.tau);
  h = MixU64(h, (uint64_t(o.enforce_fk_once) << 2) |
                    (uint64_t(o.use_precision_mode) << 1) |
                    uint64_t(o.lc_only));
  const CandidateGenOptions& c = o.candidates;
  h = MixU64(h, c.ucc.max_arity);
  h = MixU64(h, c.ucc.max_candidates);
  h = MixDouble(h, c.ucc.min_distinct_ratio);
  h = MixDouble(h, c.ind.min_containment);
  h = MixU64(h, c.ind.min_distinct);
  h = MixDouble(h, c.ind.min_referenced_distinct_ratio);
  h = MixU64(h, c.ind.max_arity);
  h = MixU64(h, c.ind.max_composite_probes);
  h = MixU64(h, uint64_t(c.ind.blocking.enabled));
  h = MixU64(h, c.ind.blocking.bottom_probes);
  h = MixU64(h, c.ind.blocking.heavy_probes);
  h = MixU64(h, c.ind.blocking.probe_all_below);
  h = MixDouble(h, c.one_to_one_distinct_ratio);
  h = MixDouble(h, c.one_to_one_min_containment);
  h = MixU64(h, uint64_t(c.metadata_fallback_for_empty_tables));
  h = MixU64(h, uint64_t(o.solver.max_one_mca_calls));
  if (ctx != nullptr) {
    h = MixU64(h, ctx->budgets.max_rows_per_table);
    h = MixU64(h, ctx->budgets.max_cells_per_table);
    h = MixU64(h, ctx->budgets.max_candidate_pairs);
    h = MixU64(h, uint64_t(ctx->budgets.max_one_mca_calls));
  }
  return h;
}

void RunGlobalPredict(const AutoBiOptions& options, const RunContext* ctx,
                      AutoBiResult* out) {
  AutoBiResult& result = *out;
  const JoinGraph& graph = result.graph;
  Timer global_timer;
  if (ctx != nullptr && ctx->StopRequested()) {
    // Stage-boundary trip: an empty model is always feasible; return it
    // rather than starting a solve we are not allowed to finish.
    result.degradation.global_predict.MarkDegraded(
        "run stopped before global solve; empty model returned");
    result.timing.global_predict = global_timer.Seconds();
    return;
  }
  if (options.lc_only) {
    // Ablation: keep every edge with calibrated probability >= 0.5, no graph
    // optimization (the "LC-only" bar of Figure 8).
    std::vector<int> kept;
    for (const JoinEdge& e : graph.edges()) {
      if (e.probability >= 0.5) kept.push_back(e.id);
    }
    result.model = EdgesToModel(graph, kept);
    result.backbone_edges = kept;
    result.timing.global_predict = global_timer.Seconds();
    return;
  }

  double penalty =
      -std::log(JoinGraph::ClampProbability(options.penalty_probability));

  if (options.use_precision_mode) {
    // Precision mode: the most probable k-snowflakes under FK-once
    // (k-MCA-CC, Algorithm 3). The RunContext 1-MCA budget tightens (never
    // loosens) the solver's own call budget; on exhaustion the solver
    // returns its greedy feasible fallback and we record the degradation.
    KmcaCcOptions solver = options.solver;
    solver.penalty_weight = penalty;
    solver.enforce_fk_once = options.enforce_fk_once;
    if (ctx != nullptr && ctx->budgets.max_one_mca_calls > 0) {
      solver.max_one_mca_calls =
          std::min(solver.max_one_mca_calls, ctx->budgets.max_one_mca_calls);
    }
    // Partition into connected components. Cost and FK-once are separable
    // across components, so with 2+ solvable components each is solved
    // independently (in parallel) and the selections stitched in component
    // order. With 0-1 solvable components the flat solve runs unchanged —
    // it is the historical path and the two are NOT guaranteed bit-identical
    // on cost ties (per-component lexicographic tie-breaks compare local
    // subsequences, not the global id sequence), so single-island inputs
    // keep their exact pre-partition outputs.
    std::vector<GraphComponent> components = PartitionJoinGraph(graph);
    std::vector<const GraphComponent*> solvable;
    result.partition.components = components.size();
    for (const GraphComponent& c : components) {
      if (c.edge_ids.empty()) continue;
      solvable.push_back(&c);
      result.partition.largest_component_edges = std::max(
          result.partition.largest_component_edges, c.edge_ids.size());
    }
    Timer kmca_timer;
    if (solvable.size() <= 1) {
      KmcaResult backbone = SolveKmcaCc(graph, solver, &result.solver_stats);
      result.backbone_edges = backbone.edge_ids;
    } else {
      result.partition.used = true;
      result.partition.components_solved = solvable.size();
      result.partition.component_health.resize(solvable.size());
      // Each component gets the FULL 1-MCA budget: a trip degrades that one
      // component to its greedy feasible fallback while the others keep
      // their exact solves (the flat path would degrade the whole model).
      KmcaCcOptions comp_solver = solver;
      comp_solver.threads = 1;  // Components are the unit of parallelism.
      struct CompSolve {
        KmcaResult backbone;
        KmcaCcStats stats;
        bool skipped = false;
      };
      std::vector<CompSolve> solves = ParallelMap(
          solvable.size(),
          [&](size_t i) {
            CompSolve s;
            // Component-boundary stop poll: a tripped run leaves remaining
            // components unsolved (empty backbone there, marked below).
            if (ctx != nullptr && ctx->StopRequested()) {
              s.skipped = true;
              return s;
            }
            JoinGraph local = BuildComponentGraph(graph, *solvable[i]);
            s.backbone = SolveKmcaCc(local, comp_solver, &s.stats);
            return s;
          },
          options.threads);
      // Stitch serially in component order; map local edge ids back through
      // the component's ascending edge-id list.
      size_t skipped = 0;
      for (size_t i = 0; i < solves.size(); ++i) {
        const CompSolve& s = solves[i];
        StageHealth& health = result.partition.component_health[i];
        if (s.skipped) {
          ++skipped;
          health.MarkDegraded("run stopped before component solve");
          continue;
        }
        for (int local_id : s.backbone.edge_ids) {
          result.backbone_edges.push_back(
              solvable[i]->edge_ids[size_t(local_id)]);
        }
        result.solver_stats.one_mca_calls += s.stats.one_mca_calls;
        result.solver_stats.nodes += s.stats.nodes;
        result.solver_stats.pruned += s.stats.pruned;
        result.solver_stats.memo_hits += s.stats.memo_hits;
        result.solver_stats.waves += s.stats.waves;
        if (s.stats.budget_exhausted) {
          result.solver_stats.budget_exhausted = true;
          health.MarkDegraded(
              "1-MCA call budget exhausted; greedy feasible backbone for "
              "this component");
        }
      }
      if (skipped > 0) {
        result.degradation.global_predict.MarkDegraded(StrFormat(
            "run stopped during partitioned solve; %zu of %zu components "
            "unsolved",
            skipped, solves.size()));
      }
    }
    result.kmca_cc_seconds = kmca_timer.Seconds();
    if (result.solver_stats.budget_exhausted) {
      result.degradation.global_predict.MarkDegraded(
          result.partition.used
              ? "1-MCA call budget exhausted; greedy feasible backbone in "
                "some components"
              : "1-MCA call budget exhausted; greedy feasible backbone");
    }
  } else {
    // Ablation "no-precision-mode": recall mode growing from nothing.
    result.backbone_edges.clear();
  }

  if (options.mode != AutoBiMode::kPrecisionOnly) {
    if (ctx != nullptr && ctx->StopRequested()) {
      // The backbone alone is a feasible model; skip recall growth.
      result.degradation.global_predict.MarkDegraded(
          "run stopped before recall mode; backbone-only model");
    } else {
      // Recall mode: grow extra confident joins on top of the backbone
      // (EMS).
      EmsOptions ems;
      ems.tau = options.tau;
      result.recall_edges = SolveEmsGreedy(graph, result.backbone_edges, ems);
    }
  }

  std::vector<int> all_edges = result.backbone_edges;
  all_edges.insert(all_edges.end(), result.recall_edges.begin(),
                   result.recall_edges.end());
  std::sort(all_edges.begin(), all_edges.end());
  result.model = EdgesToModel(graph, all_edges);
  result.timing.global_predict = global_timer.Seconds();
}

namespace {

// The pipeline proper. May throw (pool-propagated worker exceptions,
// injected parallel-task faults); the public entry point converts those to
// kInternal.
AutoBiResult RunPipeline(const LocalModel& model, const AutoBiOptions& options,
                         const std::vector<Table>& tables,
                         const RunContext* ctx) {
  AutoBiResult result;
  result.timing.threads = ResolveThreads(options.threads);

  // Stage 1+2: UCC and IND discovery (candidate generation). The top-level
  // thread setting flows into candidate generation unless the caller pinned
  // a stage-specific count.
  CandidateGenOptions cand_options = options.candidates;
  if (cand_options.threads == 0) cand_options.threads = options.threads;
  if (cand_options.cache == nullptr) cand_options.cache = options.cache;
  CandidateSet candidates = GenerateCandidates(tables, cand_options, ctx);
  result.timing.ucc = candidates.ucc_seconds;
  result.timing.ind = candidates.ind_seconds;
  result.degradation.ucc = candidates.ucc_health;
  result.degradation.ind = candidates.ind_health;
  result.ind_stats = candidates.ind_stats;

  // Stage 3: local inference — featurize and score each candidate with the
  // calibrated classifiers (Algorithm 1).
  bool schema_only = options.mode == AutoBiMode::kSchemaOnly;
  result.graph = BuildJoinGraph(tables, candidates, model, schema_only,
                                &result.timing.local_inference,
                                options.threads, ctx,
                                &result.degradation.local_inference);

  // Stage 4: global prediction.
  RunGlobalPredict(options, ctx, &result);
  return result;
}

}  // namespace

StatusOr<AutoBiResult> AutoBi::Predict(const std::vector<Table>& tables,
                                       const RunContext* ctx) const {
  for (size_t i = 0; i < tables.size(); ++i) {
    if (!tables[i].Validate()) {
      return Status::InvalidInput(
          StrFormat("table %zu ('%s') is malformed (ragged columns)", i,
                    tables[i].name().c_str()));
    }
  }
  try {
    // Cross-request solve memo: a byte-identical (tables, options, budgets)
    // submission returns the cached healthy result without running the
    // pipeline. Skipped when the context already tripped (the pipeline then
    // owes the caller its degraded partial-model semantics, not a full
    // cached answer).
    PredictCache* cache = options_.cache;
    const bool memo_usable =
        cache != nullptr && (ctx == nullptr || !ctx->StopRequested());
    uint64_t solve_key = 0;
    if (memo_usable) {
      solve_key =
          MixU64(TablesContentHash(tables), SolveKeyFingerprint(options_, ctx));
      if (std::shared_ptr<const PredictCache::SolveEntry> entry =
              cache->FindSolve(solve_key)) {
        AutoBiResult result;
        result.timing.threads = ResolveThreads(options_.threads);
        result.model = entry->model;
        result.graph = entry->graph;
        result.backbone_edges = entry->backbone_edges;
        result.recall_edges = entry->recall_edges;
        result.solver_stats = entry->solver_stats;
        result.ind_stats = entry->ind_stats;
        result.partition = entry->partition;
        return result;
      }
    }
    AutoBiResult result = RunPipeline(*model_, options_, tables, ctx);
    if (memo_usable && !result.degradation.Any()) {
      auto entry = std::make_shared<PredictCache::SolveEntry>();
      entry->model = result.model;
      entry->graph = result.graph;
      entry->backbone_edges = result.backbone_edges;
      entry->recall_edges = result.recall_edges;
      entry->solver_stats = result.solver_stats;
      entry->ind_stats = result.ind_stats;
      entry->partition = result.partition;
      cache->InsertSolve(solve_key, std::move(entry));
    }
    return result;
  } catch (const std::exception& e) {
    // Worker exceptions propagate out of the pool from the lowest-indexed
    // failing iteration; service callers get a Status, never a throw.
    return Status::Internal(
        StrFormat("prediction pipeline failed: %s", e.what()));
  }
}

StatusOr<AutoBiResult> AutoBi::PredictIncremental(
    const std::vector<Table>& tables, const RunContext* ctx,
    IncrementalState* state) const {
  for (size_t i = 0; i < tables.size(); ++i) {
    if (!tables[i].Validate()) {
      return Status::InvalidInput(
          StrFormat("table %zu ('%s') is malformed (ragged columns)", i,
                    tables[i].name().c_str()));
    }
  }
  // Fallback screen: conditions under which the incremental engine cannot
  // reproduce the plain pipeline bit-identically. A context that already
  // tripped owes degraded partial-model semantics from the very first stage;
  // a table over the value-probe budget keeps a metadata-only profile in the
  // cold path, which no cached profile may stand in for. Both invalidate the
  // state (the run about to happen produces nothing reusable).
  bool fallback = ctx != nullptr && ctx->StopRequested();
  if (!fallback && ctx != nullptr) {
    for (const Table& t : tables) {
      if (OverTableBudget(t, ctx->budgets)) {
        fallback = true;
        break;
      }
    }
  }
  if (fallback) {
    state->valid = false;
    return Predict(tables, ctx);
  }
  try {
    AutoBiResult result =
        RunIncrementalPipeline(*model_, options_, tables, ctx, state);
    // Populate — but never consult — the cross-request solve memo. A memo
    // hit here would silently replace the delta path (zeroing the
    // observability counters callers rely on), while populating keeps plain
    // Predict calls over the same bytes instant. The key reuses the
    // snapshot hashes the engine just committed, so no extra pass over the
    // cell bytes is needed.
    if (options_.cache != nullptr && !result.degradation.Any()) {
      std::vector<uint64_t> table_hashes;
      table_hashes.reserve(state->snapshots.size());
      for (const TableSnapshot& snap : state->snapshots) {
        table_hashes.push_back(snap.table_hash);
      }
      uint64_t solve_key = MixU64(TablesContentHashFromHashes(table_hashes),
                                  SolveKeyFingerprint(options_, ctx));
      auto entry = std::make_shared<PredictCache::SolveEntry>();
      entry->model = result.model;
      entry->graph = result.graph;
      entry->backbone_edges = result.backbone_edges;
      entry->recall_edges = result.recall_edges;
      entry->solver_stats = result.solver_stats;
      entry->ind_stats = result.ind_stats;
      entry->partition = result.partition;
      options_.cache->InsertSolve(solve_key, std::move(entry));
    }
    return result;
  } catch (const std::exception& e) {
    // The engine mutates the state only at its final healthy commit, so the
    // state still describes the previous healthy run — no invalidation.
    return Status::Internal(
        StrFormat("prediction pipeline failed: %s", e.what()));
  }
}

AutoBiResult AutoBi::Predict(const std::vector<Table>& tables) const {
  StatusOr<AutoBiResult> result = Predict(tables, nullptr);
  // invariant: legacy callers feed trusted (synthetic/test) tables; a
  // Status error here is a harness bug.
  AUTOBI_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  return std::move(result).value();
}

}  // namespace autobi
