#include "core/auto_bi.h"

#include <algorithm>
#include <cmath>
#include <exception>
#include <set>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "common/strings.h"
#include "common/timer.h"
#include "graph/ems.h"
#include "graph/kmca.h"

namespace autobi {

AutoBi::AutoBi(const LocalModel* model, AutoBiOptions options)
    : model_(model), options_(std::move(options)) {
  // invariant: constructing a predictor without a trained model is a
  // programmer error, not an input error.
  AUTOBI_CHECK(model_ != nullptr);
}

BiModel EdgesToModel(const JoinGraph& graph, const std::vector<int>& edges) {
  BiModel model;
  std::set<int> used_pairs;
  for (int id : edges) {
    const JoinEdge& e = graph.edge(id);
    if (e.one_to_one) {
      if (used_pairs.count(e.pair_id)) continue;
      used_pairs.insert(e.pair_id);
    }
    Join join;
    join.from = ColumnRef{e.src, e.src_columns};
    join.to = ColumnRef{e.dst, e.dst_columns};
    join.kind = e.one_to_one ? JoinKind::kOneToOne : JoinKind::kNToOne;
    model.joins.push_back(join.Normalized());
  }
  return model;
}

namespace {

// The pipeline proper. May throw (pool-propagated worker exceptions,
// injected parallel-task faults); the public entry point converts those to
// kInternal.
AutoBiResult RunPipeline(const LocalModel& model, const AutoBiOptions& options,
                         const std::vector<Table>& tables,
                         const RunContext* ctx) {
  AutoBiResult result;
  result.timing.threads = ResolveThreads(options.threads);

  // Stage 1+2: UCC and IND discovery (candidate generation). The top-level
  // thread setting flows into candidate generation unless the caller pinned
  // a stage-specific count.
  CandidateGenOptions cand_options = options.candidates;
  if (cand_options.threads == 0) cand_options.threads = options.threads;
  CandidateSet candidates = GenerateCandidates(tables, cand_options, ctx);
  result.timing.ucc = candidates.ucc_seconds;
  result.timing.ind = candidates.ind_seconds;
  result.degradation.ucc = candidates.ucc_health;
  result.degradation.ind = candidates.ind_health;

  // Stage 3: local inference — featurize and score each candidate with the
  // calibrated classifiers (Algorithm 1).
  bool schema_only = options.mode == AutoBiMode::kSchemaOnly;
  result.graph = BuildJoinGraph(tables, candidates, model, schema_only,
                                &result.timing.local_inference,
                                options.threads, ctx,
                                &result.degradation.local_inference);
  const JoinGraph& graph = result.graph;

  // Stage 4: global prediction.
  Timer global_timer;
  if (ctx != nullptr && ctx->StopRequested()) {
    // Stage-boundary trip: an empty model is always feasible; return it
    // rather than starting a solve we are not allowed to finish.
    result.degradation.global_predict.MarkDegraded(
        "run stopped before global solve; empty model returned");
    result.timing.global_predict = global_timer.Seconds();
    return result;
  }
  if (options.lc_only) {
    // Ablation: keep every edge with calibrated probability >= 0.5, no graph
    // optimization (the "LC-only" bar of Figure 8).
    std::vector<int> kept;
    for (const JoinEdge& e : graph.edges()) {
      if (e.probability >= 0.5) kept.push_back(e.id);
    }
    result.model = EdgesToModel(graph, kept);
    result.backbone_edges = kept;
    result.timing.global_predict = global_timer.Seconds();
    return result;
  }

  double penalty =
      -std::log(JoinGraph::ClampProbability(options.penalty_probability));

  if (options.use_precision_mode) {
    // Precision mode: the most probable k-snowflakes under FK-once
    // (k-MCA-CC, Algorithm 3). The RunContext 1-MCA budget tightens (never
    // loosens) the solver's own call budget; on exhaustion the solver
    // returns its greedy feasible fallback and we record the degradation.
    KmcaCcOptions solver = options.solver;
    solver.penalty_weight = penalty;
    solver.enforce_fk_once = options.enforce_fk_once;
    if (ctx != nullptr && ctx->budgets.max_one_mca_calls > 0) {
      solver.max_one_mca_calls =
          std::min(solver.max_one_mca_calls, ctx->budgets.max_one_mca_calls);
    }
    Timer kmca_timer;
    KmcaResult backbone = SolveKmcaCc(graph, solver, &result.solver_stats);
    result.kmca_cc_seconds = kmca_timer.Seconds();
    result.backbone_edges = backbone.edge_ids;
    if (result.solver_stats.budget_exhausted) {
      result.degradation.global_predict.MarkDegraded(
          "1-MCA call budget exhausted; greedy feasible backbone");
    }
  } else {
    // Ablation "no-precision-mode": recall mode growing from nothing.
    result.backbone_edges.clear();
  }

  if (options.mode != AutoBiMode::kPrecisionOnly) {
    if (ctx != nullptr && ctx->StopRequested()) {
      // The backbone alone is a feasible model; skip recall growth.
      result.degradation.global_predict.MarkDegraded(
          "run stopped before recall mode; backbone-only model");
    } else {
      // Recall mode: grow extra confident joins on top of the backbone
      // (EMS).
      EmsOptions ems;
      ems.tau = options.tau;
      result.recall_edges = SolveEmsGreedy(graph, result.backbone_edges, ems);
    }
  }

  std::vector<int> all_edges = result.backbone_edges;
  all_edges.insert(all_edges.end(), result.recall_edges.begin(),
                   result.recall_edges.end());
  std::sort(all_edges.begin(), all_edges.end());
  result.model = EdgesToModel(graph, all_edges);
  result.timing.global_predict = global_timer.Seconds();
  return result;
}

}  // namespace

StatusOr<AutoBiResult> AutoBi::Predict(const std::vector<Table>& tables,
                                       const RunContext* ctx) const {
  for (size_t i = 0; i < tables.size(); ++i) {
    if (!tables[i].Validate()) {
      return Status::InvalidInput(
          StrFormat("table %zu ('%s') is malformed (ragged columns)", i,
                    tables[i].name().c_str()));
    }
  }
  try {
    return RunPipeline(*model_, options_, tables, ctx);
  } catch (const std::exception& e) {
    // Worker exceptions propagate out of the pool from the lowest-indexed
    // failing iteration; service callers get a Status, never a throw.
    return Status::Internal(
        StrFormat("prediction pipeline failed: %s", e.what()));
  }
}

AutoBiResult AutoBi::Predict(const std::vector<Table>& tables) const {
  StatusOr<AutoBiResult> result = Predict(tables, nullptr);
  // invariant: legacy callers feed trusted (synthetic/test) tables; a
  // Status error here is a harness bug.
  AUTOBI_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  return std::move(result).value();
}

}  // namespace autobi
