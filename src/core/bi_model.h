#ifndef AUTOBI_CORE_BI_MODEL_H_
#define AUTOBI_CORE_BI_MODEL_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "table/table.h"

namespace autobi {

// Kind of join relationship in a BI model. Unlike classic FK detection,
// real BI models freely mix N:1 (FK -> PK) and 1:1 joins (Section 2).
enum class JoinKind { kNToOne, kOneToOne };

// One join relationship of a BI model (Definition 1): a pair of column lists
// across two tables. For kNToOne, `from` is the N (FK) side and `to` the 1
// (PK) side. For kOneToOne the orientation is not meaningful; use
// Normalized() for canonical comparisons.
struct Join {
  ColumnRef from;
  ColumnRef to;
  JoinKind kind = JoinKind::kNToOne;

  // Canonical form: 1:1 joins are oriented with the smaller (table, columns)
  // endpoint first so that equality is orientation-insensitive.
  Join Normalized() const;

  bool operator==(const Join& o) const;
};

// A BI model: the set of join relationships over a table set.
struct BiModel {
  std::vector<Join> joins;

  // True if an equivalent join (normalized comparison) is present.
  bool Contains(const Join& join) const;
};

// The shape of a ground-truth schema graph (Table 7's "case type").
enum class SchemaType { kStar, kSnowflake, kConstellation, kOther };

const char* SchemaTypeName(SchemaType type);

// One test or training case: input tables plus the user-specified
// ground-truth model (what we extract from each harvested .pbix file).
struct BiCase {
  std::string name;
  std::vector<Table> tables;
  BiModel ground_truth;
  SchemaType schema_type = SchemaType::kOther;
};

// Renders a join as "Fact(emp_id) -> Dim(emp_id) [N:1]" for diagnostics.
std::string JoinToString(const std::vector<Table>& tables, const Join& join);

// Structural validity of a model against its table set: every join endpoint
// names an in-range table, a non-empty in-range column list, and two
// distinct tables. Exporters and the fault-injection harness gate on this
// before dereferencing any reference (kInvalidInput on violation).
Status ValidateBiModel(const std::vector<Table>& tables, const BiModel& model);

}  // namespace autobi

#endif  // AUTOBI_CORE_BI_MODEL_H_
