#ifndef AUTOBI_CORE_MODEL_EXPORT_H_
#define AUTOBI_CORE_MODEL_EXPORT_H_

#include <string>
#include <vector>

#include "core/bi_model.h"

namespace autobi {

// Exporters that turn a predicted BI model into artifacts downstream tools
// consume: Graphviz DOT (schema diagrams), SQL DDL (FOREIGN KEY clauses),
// and a line-oriented JSON document.

// Graphviz digraph: tables as nodes, N:1 joins as directed edges (FK -> PK),
// 1:1 joins as bidirectional dashed edges. Column pairs label the edges.
std::string ExportDot(const std::vector<Table>& tables, const BiModel& model);

// ALTER TABLE ... ADD FOREIGN KEY statements for every N:1 join (1:1 joins
// are emitted as comments, since SQL has no first-class 1:1 constraint).
std::string ExportSqlDdl(const std::vector<Table>& tables,
                         const BiModel& model);

// A compact JSON document:
// {"tables":[...names...],"joins":[{"from":...,"to":...,"kind":...}]}.
std::string ExportJson(const std::vector<Table>& tables,
                       const BiModel& model);

}  // namespace autobi

#endif  // AUTOBI_CORE_MODEL_EXPORT_H_
