#ifndef AUTOBI_CORE_MODEL_EXPORT_H_
#define AUTOBI_CORE_MODEL_EXPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/bi_model.h"

namespace autobi {

// Exporters that turn a predicted BI model into artifacts downstream tools
// consume: Graphviz DOT (schema diagrams), SQL DDL (FOREIGN KEY clauses),
// and a line-oriented JSON document.
//
// A model can arrive from an untrusted file (case manifests, external
// callers), so every exporter validates it against the table set first
// (ValidateBiModel) and returns kInvalidInput instead of indexing out of
// range.

// Graphviz digraph: tables as nodes, N:1 joins as directed edges (FK -> PK),
// 1:1 joins as bidirectional dashed edges. Column pairs label the edges.
StatusOr<std::string> ExportDot(const std::vector<Table>& tables,
                                const BiModel& model);

// ALTER TABLE ... ADD FOREIGN KEY statements for every N:1 join (1:1 joins
// are emitted as comments, since SQL has no first-class 1:1 constraint).
StatusOr<std::string> ExportSqlDdl(const std::vector<Table>& tables,
                                   const BiModel& model);

// A compact JSON document:
// {"tables":[...names...],"joins":[{"from":...,"to":...,"kind":...}]}.
StatusOr<std::string> ExportJson(const std::vector<Table>& tables,
                                 const BiModel& model);

// Renders the model in the given format ("dot", "sql" or "json") and writes
// it to `path` durably (WriteFileAtomic: temp file + fsync + atomic rename),
// so a crash mid-export never leaves a truncated artifact behind.
Status ExportToFile(const std::vector<Table>& tables, const BiModel& model,
                    const std::string& format, const std::string& path);

}  // namespace autobi

#endif  // AUTOBI_CORE_MODEL_EXPORT_H_
