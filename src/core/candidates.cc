#include "core/candidates.h"

#include <atomic>
#include <cstring>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/parallel.h"
#include "common/strings.h"
#include "common/timer.h"
#include "core/predict_cache.h"
#include "fuzz/faultpoints.h"
#include "profile/sketch.h"
#include "table/key_view.h"
#include "text/similarity.h"
#include "text/tokenize.h"

namespace autobi {

namespace {

double MeanDistinctRatio(const TableProfile& profile,
                         const std::vector<int>& columns) {
  double sum = 0.0;
  for (int c : columns) sum += profile.columns[size_t(c)].distinct_ratio;
  return sum / static_cast<double>(columns.size());
}

}  // namespace

uint64_t UccOptionsFingerprint(const UccOptions& ucc) {
  uint64_t h = SplitMix64(ucc.max_arity);
  h = SplitMix64(h ^ ucc.max_candidates);
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(ucc.min_distinct_ratio));
  std::memcpy(&bits, &ucc.min_distinct_ratio, sizeof(bits));
  return SplitMix64(h ^ bits);
}

bool OverTableBudget(const Table& table, const RunContext::Budgets& budgets) {
  if (budgets.max_rows_per_table > 0 &&
      table.num_rows() > budgets.max_rows_per_table) {
    return true;
  }
  if (budgets.max_cells_per_table > 0 &&
      table.num_rows() * table.num_columns() > budgets.max_cells_per_table) {
    return true;
  }
  return false;
}

void AddIndCandidates(const std::vector<Ind>& inds,
                      const std::vector<Table>& tables,
                      const std::vector<TableProfile>& profiles,
                      const CandidateGenOptions& options,
                      CompositeKeyCache* composite_cache,
                      CandidateMap* dedup) {
  for (const Ind& ind : inds) {
    JoinCandidate cand;
    cand.src = ind.dependent;
    cand.dst = ind.referenced;
    cand.left_containment = ind.containment;
    // Reverse containment: cheap via profiles for unary, exact probe for
    // composite INDs (which are rare).
    if (!ind.IsComposite()) {
      cand.right_containment =
          Containment(profiles[size_t(cand.dst.table)]
                          .columns[size_t(cand.dst.columns[0])],
                      profiles[size_t(cand.src.table)]
                          .columns[size_t(cand.src.columns[0])]);
    } else {
      std::shared_ptr<const CompositeKeyCache::HashSet> referenced =
          composite_cache->Get(tables[size_t(cand.src.table)], cand.src.table,
                               cand.src.columns);
      cand.right_containment = CompositeContainment(
          tables[size_t(cand.dst.table)], cand.dst.columns, *referenced);
    }

    double src_distinct =
        MeanDistinctRatio(profiles[size_t(cand.src.table)], cand.src.columns);
    double dst_distinct =
        MeanDistinctRatio(profiles[size_t(cand.dst.table)], cand.dst.columns);
    cand.one_to_one =
        src_distinct >= options.one_to_one_distinct_ratio &&
        dst_distinct >= options.one_to_one_distinct_ratio &&
        std::min(cand.left_containment, cand.right_containment) >=
            options.one_to_one_min_containment;

    // Canonical orientation for 1:1 candidates: both IND directions fold
    // into one candidate keyed from the lower endpoint.
    if (cand.one_to_one && cand.dst < cand.src) {
      std::swap(cand.src, cand.dst);
      std::swap(cand.left_containment, cand.right_containment);
    }
    auto key = std::make_pair(cand.src, cand.dst);
    auto it = dedup->find(key);
    if (it == dedup->end()) {
      dedup->emplace(key, cand);
    } else if (cand.one_to_one && !it->second.one_to_one) {
      it->second = cand;  // Prefer the 1:1 interpretation when detected.
    }
  }
}

void AddMetadataFallbackCandidates(const std::vector<Table>& tables,
                                   const std::vector<char>& probed, int ti,
                                   int tj, CandidateMap* dedup) {
  if (ti == tj) return;
  if (probed[size_t(ti)] && probed[size_t(tj)]) return;
  for (int a = 0; a < int(tables[size_t(ti)].num_columns()); ++a) {
    const std::string& src = tables[size_t(ti)].column(size_t(a)).name();
    std::string src_norm = NormalizeIdentifier(src);
    for (int b = 0; b < int(tables[size_t(tj)].num_columns()); ++b) {
      const std::string& dst = tables[size_t(tj)].column(size_t(b)).name();
      std::string aug = tables[size_t(tj)].name() + " " + dst;
      bool name_hit =
          EditSimilarity(src_norm, NormalizeIdentifier(dst)) >= 0.5 ||
          TokenContainment(TokenizeIdentifier(src),
                           TokenizeIdentifier(aug)) >= 0.99;
      bool key_shaped = b == 0 && (EndsWith(ToLower(src_norm), "id") ||
                                   EndsWith(ToLower(src_norm), "key") ||
                                   EndsWith(ToLower(src_norm), "code"));
      if (!name_hit && !key_shaped) continue;
      JoinCandidate cand;
      cand.src = ColumnRef{ti, {a}};
      cand.dst = ColumnRef{tj, {b}};
      auto key = std::make_pair(cand.src, cand.dst);
      if (!dedup->count(key)) dedup->emplace(key, cand);
    }
  }
}

CandidateSet GenerateCandidates(const std::vector<Table>& tables,
                                const CandidateGenOptions& options,
                                const RunContext* ctx) {
  CandidateSet out;

  // Admission under RunContext table budgets: over-budget tables are
  // excluded from value probing up front (deterministically — counted, not
  // timed) and handled exactly like empty DDL tables downstream.
  std::vector<char> admitted(tables.size(), 1);
  if (ctx != nullptr) {
    for (size_t i = 0; i < tables.size(); ++i) {
      if (OverTableBudget(tables[i], ctx->budgets)) {
        admitted[i] = 0;
        out.ucc_health.MarkDegraded(StrFormat(
            "table '%s' over row/cell budget; metadata-only profile",
            tables[i].name().c_str()));
      }
    }
  }

  // UCC stage (includes profiling, which UCC pruning needs first). Each
  // table's profile + UCC lattice search is independent, so tables fan out
  // across the pool; slot-per-table writes keep the output order fixed.
  //
  // Before any scanning, every admitted table is content-hashed (one linear
  // pass over its bytes — roughly 10x cheaper than profiling it). The hash
  // serves two layers of reuse, both byte-identical to recomputation:
  //   1. in-run dedup: a table identical to an earlier one in the same case
  //      is profiled once and copied (slot-per-table output stays intact);
  //   2. the cross-request PredictCache (options.cache), which lets a
  //      re-uploaded unchanged table skip profiling + UCC entirely.
  Timer ucc_timer;
  out.profiles.resize(tables.size());
  out.uccs.resize(tables.size());
  const uint64_t ucc_fp = UccOptionsFingerprint(options.ucc);
  std::vector<uint64_t> table_keys(tables.size(), 0);
  ParallelFor(
      tables.size(),
      [&](size_t i) {
        if (admitted[i]) {
          table_keys[i] = SplitMix64(TableContentHash(tables[i]) ^ ucc_fp);
        }
      },
      options.threads);
  // rep[i] = lowest index with the same content key (serial, index order).
  std::vector<size_t> rep(tables.size());
  {
    std::unordered_map<uint64_t, size_t> first_by_key;
    first_by_key.reserve(tables.size());
    for (size_t i = 0; i < tables.size(); ++i) {
      if (!admitted[i]) {
        rep[i] = i;
        continue;
      }
      auto [it, inserted] = first_by_key.emplace(table_keys[i], i);
      rep[i] = inserted ? i : it->second;
    }
  }
  // Cross-request cache lookups, serially in index order for representative
  // tables only (hit/miss counters stay deterministic).
  std::vector<std::shared_ptr<const PredictCache::TableEntry>> cached(
      tables.size());
  if (options.cache != nullptr) {
    for (size_t i = 0; i < tables.size(); ++i) {
      if (admitted[i] && rep[i] == i) {
        cached[i] = options.cache->FindTable(table_keys[i]);
        if (cached[i] != nullptr) ++out.profile_cache_hits;
      }
    }
  }
  std::atomic<bool> ucc_stopped{false};
  std::vector<char> profiled(tables.size(), 0);
  ParallelFor(
      tables.size(),
      [&](size_t i) {
        if (admitted[i] && rep[i] != i) return;  // Copied from rep[i] below.
        if (cached[i] != nullptr) {
          out.profiles[i] = cached[i]->profile;
          out.uccs[i] = cached[i]->uccs;
          profiled[i] = 1;
          return;
        }
        // Item-boundary stop poll: once the deadline passes or the run is
        // cancelled, remaining tables fall back to metadata-only profiles.
        if (!admitted[i] || (ctx != nullptr && ctx->StopRequested())) {
          if (admitted[i]) ucc_stopped.store(true, std::memory_order_relaxed);
          out.profiles[i] = MetadataOnlyProfile(tables[i]);
          return;
        }
        // One key view per table feeds both profiling and the UCC lattice
        // scan (arity >= 2 candidates), so canonical keys are rendered and
        // hashed exactly once per cell.
        TableKeyView view(tables[i]);
        out.profiles[i] = ProfileTable(tables[i], view);
        out.uccs[i] =
            DiscoverUccs(tables[i], out.profiles[i], options.ucc, &view);
        profiled[i] = 1;
      },
      options.threads);
  // Serial epilogue in index order: copy duplicate slots from their
  // representative and publish freshly profiled tables to the cache.
  for (size_t i = 0; i < tables.size(); ++i) {
    if (admitted[i] && rep[i] != i) {
      out.profiles[i] = out.profiles[rep[i]];
      out.uccs[i] = out.uccs[rep[i]];
      profiled[i] = profiled[rep[i]];
      ++out.profile_dedup_hits;
      continue;
    }
    if (options.cache != nullptr && profiled[i] && cached[i] == nullptr) {
      auto entry = std::make_shared<PredictCache::TableEntry>();
      entry->profile = out.profiles[i];
      entry->uccs = out.uccs[i];
      options.cache->InsertTable(table_keys[i], std::move(entry));
    }
  }
  if (ucc_stopped.load(std::memory_order_relaxed)) {
    out.ucc_health.MarkDegraded(
        "run stopped during profiling/UCC; remaining tables metadata-only");
  }
  out.ucc_seconds = ucc_timer.Seconds();

  // IND stage. The composite-key cache is shared between discovery and the
  // reverse-containment probes below, so each referenced tuple-hash set is
  // built at most once per (table, key-columns) for the whole stage.
  Timer ind_timer;
  IndOptions ind_options = options.ind;
  if (ind_options.threads == 0) ind_options.threads = options.threads;
  CompositeKeyCache composite_cache;
  std::vector<Ind> inds = DiscoverInds(tables, out.profiles, out.uccs,
                                       ind_options, &out.ind_stats,
                                       &composite_cache, ctx);
  if (ctx != nullptr && ctx->StopRequested()) {
    // Conservative: the stop may have tripped after the last pair finished,
    // but once it is set any remaining per-pair scans returned empty.
    out.ind_health.MarkDegraded(
        "run stopped during IND discovery; remaining pairs skipped");
  }

  // Convert INDs to deduplicated candidates.
  CandidateMap dedup;
  AddIndCandidates(inds, tables, out.profiles, options, &composite_cache,
                   &dedup);
  // Metadata fallback: for table pairs where a side could not be value
  // probed (no rows in DDL-only input, or excluded by a RunContext table
  // budget), screen candidate pairs by name instead so the schema-only
  // classifier can score them.
  if (options.metadata_fallback_for_empty_tables) {
    std::vector<char> probed(tables.size(), 1);
    for (size_t i = 0; i < tables.size(); ++i) {
      probed[i] = admitted[i] && tables[i].num_rows() > 0;
    }
    for (int ti = 0; ti < int(tables.size()); ++ti) {
      for (int tj = 0; tj < int(tables.size()); ++tj) {
        AddMetadataFallbackCandidates(tables, probed, ti, tj, &dedup);
      }
    }
  }

  out.candidates.reserve(dedup.size());
  for (auto& [key, cand] : dedup) {
    (void)key;
    out.candidates.push_back(std::move(cand));
  }
  // Candidate-pair budget: deterministic truncation of the sorted dedup
  // order (std::map iteration order), so the same inputs always keep the
  // same prefix at any thread count.
  if (ctx != nullptr && ctx->budgets.max_candidate_pairs > 0 &&
      out.candidates.size() > ctx->budgets.max_candidate_pairs) {
    size_t dropped = out.candidates.size() - ctx->budgets.max_candidate_pairs;
    out.candidates.resize(ctx->budgets.max_candidate_pairs);
    out.ind_health.MarkDegraded(StrFormat(
        "candidate-pair budget hit: dropped %zu of %zu pairs", dropped,
        dropped + out.candidates.size()));
  }
  // Fault point: simulated resource exhaustion of the candidate stage, for
  // the end-to-end fault-injection campaign. Drops a deterministic suffix
  // and marks the stage degraded exactly like a real budget trip.
  if (FaultPoints::Global().Fire("candidates.exhausted") &&
      !out.candidates.empty()) {
    double keep = FaultPoints::Global().Fraction("candidates.exhausted");
    size_t kept = static_cast<size_t>(keep * double(out.candidates.size()));
    out.candidates.resize(kept);
    out.ind_health.MarkDegraded(
        "injected resource exhaustion in candidate generation");
  }
  // Fold in the sets built by reverse-containment probing above.
  out.ind_stats.composite_sets_built = composite_cache.builds();
  out.ind_seconds = ind_timer.Seconds();
  return out;
}

}  // namespace autobi
