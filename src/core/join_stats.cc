#include "core/join_stats.h"

#include <algorithm>
#include <unordered_map>

#include "common/strings.h"

namespace autobi {

namespace {

// Canonical tuple key for the join columns at row r; false if any is null.
bool TupleKey(const Table& table, const std::vector<int>& columns, size_t r,
              std::string* out) {
  out->clear();
  std::string cell;
  for (int c : columns) {
    if (!table.column(size_t(c)).KeyAt(r, &cell)) return false;
    for (char ch : cell) {
      if (ch == '|' || ch == '\\') out->push_back('\\');
      out->push_back(ch);
    }
    out->push_back('|');
  }
  return true;
}

}  // namespace

std::string JoinStats::ToString() const {
  return StrFormat(
      "left_rows=%zu matched=%zu (%.0f%%) output=%zu max_fanout=%zu "
      "left_distinct=%zu right_distinct=%zu%s",
      left_rows, matched_rows, MatchRate() * 100.0, output_rows, max_fanout,
      left_distinct, right_distinct,
      LooksLikeCleanNToOne() ? " [clean N:1]" : "");
}

JoinStats ComputeJoinStats(const std::vector<Table>& tables,
                           const Join& join) {
  JoinStats stats;
  const Table& left = tables[size_t(join.from.table)];
  const Table& right = tables[size_t(join.to.table)];

  // Build the PK-side multiplicity map.
  std::unordered_map<std::string, size_t> right_counts;
  std::string key;
  for (size_t r = 0; r < right.num_rows(); ++r) {
    if (TupleKey(right, join.to.columns, r, &key)) ++right_counts[key];
  }
  stats.right_distinct = right_counts.size();

  std::unordered_map<std::string, char> left_seen;
  for (size_t r = 0; r < left.num_rows(); ++r) {
    if (!TupleKey(left, join.from.columns, r, &key)) continue;
    ++stats.left_rows;
    left_seen.emplace(key, 1);
    auto it = right_counts.find(key);
    if (it != right_counts.end()) {
      ++stats.matched_rows;
      stats.output_rows += it->second;
      stats.max_fanout = std::max(stats.max_fanout, it->second);
    }
  }
  stats.left_distinct = left_seen.size();
  return stats;
}

}  // namespace autobi
