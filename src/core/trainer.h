#ifndef AUTOBI_CORE_TRAINER_H_
#define AUTOBI_CORE_TRAINER_H_

#include <vector>

#include "core/bi_model.h"
#include "core/candidates.h"
#include "core/local_model.h"
#include "ml/random_forest.h"

namespace autobi {

struct TrainerOptions {
  CandidateGenOptions candidates;
  ForestOptions forest;
  // Train separate N:1 / 1:1 classifiers (Appendix A). Disabled by the
  // "no-N-1/1-1-seperation" ablation of Figure 8.
  bool split_one_to_one = true;
  // Apply label transitivity (Appendix A): columns connected through chains
  // of ground-truth joins are positive pairs even without a direct join.
  // Disabled by the "no-label-transitivity" ablation.
  bool label_transitivity = true;
  CalibrationMethod calibration = CalibrationMethod::kPlatt;
  // Fraction of examples held out for calibrator fitting and reporting.
  double calibration_holdout = 0.25;
  uint64_t seed = 7;
};

// Offline-training telemetry.
struct TrainerReport {
  size_t num_cases = 0;
  size_t n1_examples = 0;
  size_t n1_positives = 0;
  size_t one_examples = 0;
  size_t one_positives = 0;
  // Holdout quality of the calibrated full-feature classifiers.
  double n1_auc = 0.5;
  double one_auc = 0.5;
  double n1_calibration_error = 0.0;
  double one_calibration_error = 0.0;
};

// The offline component of Figure 2: harvest (tables, ground-truth joins)
// pairs from the corpus, label candidates (with transitivity), featurize,
// fit the four forests, and calibrate scores into probabilities.
LocalModel TrainLocalModel(const std::vector<BiCase>& corpus,
                           const TrainerOptions& options = {},
                           TrainerReport* report = nullptr);

// Labels one case's candidates against its ground truth, applying label
// transitivity when requested. Exposed for tests.
std::vector<int> LabelCandidates(const BiCase& bi_case,
                                 const std::vector<JoinCandidate>& candidates,
                                 bool label_transitivity);

}  // namespace autobi

#endif  // AUTOBI_CORE_TRAINER_H_
