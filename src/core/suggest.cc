#include "core/suggest.h"

#include <algorithm>
#include <map>

#include "common/check.h"
#include "graph/ems.h"
#include "graph/kmca_cc.h"

namespace autobi {

std::vector<std::vector<JoinSuggestion>> SuggestJoins(
    const std::vector<Table>& tables, const LocalModel& model, size_t top_k,
    const AutoBiOptions& options) {
  AutoBi auto_bi(&model, options);
  AutoBiResult result = auto_bi.Predict(tables);

  // Group scored edges by their source column set; 1:1 pairs contribute one
  // suggestion per orientation's source (each side may "own" the pick).
  std::map<std::pair<int, std::vector<int>>, std::vector<JoinSuggestion>>
      groups;
  for (const JoinEdge& e : result.graph.edges()) {
    JoinSuggestion s;
    s.join.from = ColumnRef{e.src, e.src_columns};
    s.join.to = ColumnRef{e.dst, e.dst_columns};
    s.join.kind = e.one_to_one ? JoinKind::kOneToOne : JoinKind::kNToOne;
    s.join = s.join.Normalized();
    s.probability = e.probability;
    s.chosen_by_auto_bi = result.model.Contains(s.join);
    groups[{e.src, e.src_columns}].push_back(std::move(s));
  }

  std::vector<std::vector<JoinSuggestion>> out;
  for (auto& [key, suggestions] : groups) {
    (void)key;
    std::sort(suggestions.begin(), suggestions.end(),
              [](const JoinSuggestion& a, const JoinSuggestion& b) {
                if (a.probability != b.probability) {
                  return a.probability > b.probability;
                }
                return a.chosen_by_auto_bi && !b.chosen_by_auto_bi;
              });
    if (suggestions.size() > top_k) suggestions.resize(top_k);
    out.push_back(std::move(suggestions));
  }
  std::sort(out.begin(), out.end(),
            [](const std::vector<JoinSuggestion>& a,
               const std::vector<JoinSuggestion>& b) {
              return a.front().probability > b.front().probability;
            });
  return out;
}

std::vector<Join> PredictJoinsForNewTable(const std::vector<Table>& tables,
                                          const BiModel& confirmed,
                                          const LocalModel& model,
                                          const AutoBiOptions& options) {
  // invariant: documented API precondition (the new table is tables.back()).
  AUTOBI_CHECK(!tables.empty());
  int new_table = int(tables.size()) - 1;

  CandidateSet candidates = GenerateCandidates(tables, options.candidates);
  bool schema_only = options.mode == AutoBiMode::kSchemaOnly;
  JoinGraph graph =
      BuildJoinGraph(tables, candidates, model, schema_only, nullptr);

  // Force the confirmed joins: give their edges probability ~1 (weight ~0)
  // so the global solve keeps them — and, crucially, lets them occupy
  // in-degrees and FK-once slots the new table's candidates must respect.
  constexpr double kConfirmedProbability = 1.0 - 1e-6;
  JoinGraph forced(graph.num_vertices());
  std::vector<char> is_confirmed_edge;
  auto matches_confirmed = [&](const JoinEdge& e) {
    Join as_join;
    as_join.from = ColumnRef{e.src, e.src_columns};
    as_join.to = ColumnRef{e.dst, e.dst_columns};
    as_join.kind = e.one_to_one ? JoinKind::kOneToOne : JoinKind::kNToOne;
    return confirmed.Contains(as_join.Normalized());
  };
  std::vector<char> covered(confirmed.joins.size(), 0);
  for (const JoinEdge& e : graph.edges()) {
    bool conf = matches_confirmed(e);
    if (conf) {
      for (size_t i = 0; i < confirmed.joins.size(); ++i) {
        Join as_join{ColumnRef{e.src, e.src_columns},
                     ColumnRef{e.dst, e.dst_columns},
                     e.one_to_one ? JoinKind::kOneToOne : JoinKind::kNToOne};
        if (confirmed.joins[i] == as_join) covered[i] = 1;
      }
    }
    forced.AddEdge(e.src, e.dst, e.src_columns, e.dst_columns,
                   conf ? kConfirmedProbability : e.probability,
                   e.one_to_one, e.pair_id);
    is_confirmed_edge.push_back(conf ? 1 : 0);
  }
  // Confirmed joins with no surviving candidate edge (e.g. user-specified
  // joins the IND pass would not re-derive) are injected directly.
  for (size_t i = 0; i < confirmed.joins.size(); ++i) {
    if (covered[i]) continue;
    const Join& j = confirmed.joins[i];
    forced.AddEdge(j.from.table, j.to.table, j.from.columns, j.to.columns,
                   kConfirmedProbability,
                   j.kind == JoinKind::kOneToOne, -1);
    is_confirmed_edge.push_back(1);
  }

  KmcaCcOptions solver = options.solver;
  solver.penalty_weight =
      -std::log(JoinGraph::ClampProbability(options.penalty_probability));
  solver.enforce_fk_once = options.enforce_fk_once;
  KmcaResult backbone = SolveKmcaCc(forced, solver);
  EmsOptions ems;
  ems.tau = options.tau;
  std::vector<int> extra = SolveEmsGreedy(forced, backbone.edge_ids, ems);

  std::vector<int> all = backbone.edge_ids;
  all.insert(all.end(), extra.begin(), extra.end());
  BiModel predicted = EdgesToModel(forced, all);

  std::vector<Join> out;
  for (const Join& j : predicted.joins) {
    if (j.from.table == new_table || j.to.table == new_table) {
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace autobi
