#include "core/local_model.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/check.h"

namespace autobi {

double LocalModel::Calibrate(int index, double raw) const {
  switch (calibration_) {
    case CalibrationMethod::kPlatt:
      return platt_[index].fitted() ? platt_[index].Calibrate(raw) : raw;
    case CalibrationMethod::kIsotonic:
      return isotonic_[index].fitted() ? isotonic_[index].Calibrate(raw)
                                       : raw;
    case CalibrationMethod::kNone:
      return raw;
  }
  return raw;
}

double LocalModel::Score(const FeatureContext& ctx, const JoinCandidate& cand,
                         bool schema_only) const {
  // With the N:1/1:1 split disabled (the "no-N-1/1-1-separation" ablation),
  // every candidate goes through the N:1 classifier. Untrained variants
  // (e.g. a corpus without 1:1 joins) fall back to the N:1 classifier, and
  // ultimately to an uninformed 0.5.
  bool use_one = split_one_to_one_ && cand.one_to_one;
  if (use_one) {
    const RandomForest& forest = schema_only ? one_schema_ : one_full_;
    if (forest.trained()) {
      std::vector<double> f =
          featurizer_.FeaturizeOneToOne(ctx, cand, schema_only);
      return Calibrate(schema_only ? kOneSchema : kOneFull,
                       forest.PredictProba(f));
    }
  }
  const RandomForest& forest = schema_only ? n1_schema_ : n1_full_;
  if (!forest.trained()) return 0.5;
  std::vector<double> f = featurizer_.FeaturizeN1(ctx, cand, schema_only);
  return Calibrate(schema_only ? kN1Schema : kN1Full,
                   forest.PredictProba(f));
}

namespace {

std::vector<std::pair<std::string, double>> RankedImportance(
    const RandomForest& forest, const std::vector<std::string>& names) {
  std::vector<double> imp = forest.FeatureImportance(names.size());
  std::vector<std::pair<std::string, double>> out;
  out.reserve(names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    out.emplace_back(names[i], imp[i]);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

}  // namespace

std::vector<std::pair<std::string, double>> LocalModel::N1FeatureImportance()
    const {
  return RankedImportance(n1_full_, Featurizer::N1FeatureNames(false));
}

std::vector<std::pair<std::string, double>>
LocalModel::OneToOneFeatureImportance() const {
  return RankedImportance(one_full_, Featurizer::OneToOneFeatureNames(false));
}

void LocalModel::Save(std::ostream& os) const {
  os << "localmodel 1\n";
  os << (split_one_to_one_ ? 1 : 0) << " " << static_cast<int>(calibration_)
     << "\n";
  n1_full_.Save(os);
  n1_schema_.Save(os);
  one_full_.Save(os);
  one_schema_.Save(os);
  for (const auto& c : platt_) c.Save(os);
  for (const auto& c : isotonic_) c.Save(os);
  frequency_.Save(os);
}

bool LocalModel::Load(std::istream& is) {
  std::string tag;
  int version = 0;
  if (!(is >> tag >> version) || tag != "localmodel" || version != 1) {
    return false;
  }
  int split = 1, cal = 0;
  if (!(is >> split >> cal)) return false;
  split_one_to_one_ = (split != 0);
  calibration_ = static_cast<CalibrationMethod>(cal);
  if (!n1_full_.Load(is) || !n1_schema_.Load(is) || !one_full_.Load(is) ||
      !one_schema_.Load(is)) {
    return false;
  }
  for (auto& c : platt_) {
    if (!c.Load(is)) return false;
  }
  for (auto& c : isotonic_) {
    if (!c.Load(is)) return false;
  }
  return frequency_.Load(is);
}

bool LocalModel::SaveToFile(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  os.precision(17);
  Save(os);
  return static_cast<bool>(os);
}

bool LocalModel::LoadFromFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) return false;
  return Load(is);
}

}  // namespace autobi
