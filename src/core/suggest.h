#ifndef AUTOBI_CORE_SUGGEST_H_
#define AUTOBI_CORE_SUGGEST_H_

#include <vector>

#include "core/auto_bi.h"

namespace autobi {

// Interactive-workflow APIs on top of the Auto-BI predictor, mirroring how
// self-service tools actually consume join prediction: ranked suggestions a
// user confirms one by one, and incremental re-prediction when a table is
// added to an existing (confirmed) model.

// One ranked join suggestion for a specific FK-side column.
struct JoinSuggestion {
  Join join;
  double probability = 0.0;
  // True if this is the alternative Auto-BI's global solution selected.
  bool chosen_by_auto_bi = false;
};

// For every FK-side column with at least one candidate, the top-k
// alternatives ranked by calibrated probability. The globally-selected
// alternative (if any) is flagged, so a UI can show "suggested" vs "other
// options". Suggestions are grouped per source column and sorted by their
// best probability, strongest first.
std::vector<std::vector<JoinSuggestion>> SuggestJoins(
    const std::vector<Table>& tables, const LocalModel& model,
    size_t top_k = 3, const AutoBiOptions& options = {});

// Incremental prediction: the user has a confirmed model over `tables` and
// appends one new table. Predicts only the joins involving the new table,
// holding `confirmed` fixed (confirmed joins are forced into the backbone
// with probability ~1, so the global solve respects them). Returns joins
// that involve the new table (its index is tables.size() - 1).
std::vector<Join> PredictJoinsForNewTable(const std::vector<Table>& tables,
                                          const BiModel& confirmed,
                                          const LocalModel& model,
                                          const AutoBiOptions& options = {});

}  // namespace autobi

#endif  // AUTOBI_CORE_SUGGEST_H_
