#ifndef AUTOBI_CORE_CASE_IO_H_
#define AUTOBI_CORE_CASE_IO_H_

#include <string>

#include "core/bi_model.h"

namespace autobi {

// On-disk persistence for BI cases: tables as one CSV per table plus a
// `case.manifest` recording the case name, schema type and ground-truth
// joins. This is the local analogue of the paper's harvested-model files —
// it lets users keep benchmark cases, share them, and re-run methods
// without regeneration.
//
// Layout:
//   <dir>/case.manifest
//   <dir>/<table_name>.csv        (one per table)

// Writes the case. The directory must already exist; files are overwritten.
bool SaveCase(const BiCase& bi_case, const std::string& dir,
              std::string* error);

// Reads a case previously written by SaveCase.
bool LoadCase(const std::string& dir, BiCase* bi_case, std::string* error);

}  // namespace autobi

#endif  // AUTOBI_CORE_CASE_IO_H_
