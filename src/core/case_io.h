#ifndef AUTOBI_CORE_CASE_IO_H_
#define AUTOBI_CORE_CASE_IO_H_

#include <string>

#include "common/status.h"
#include "core/bi_model.h"

namespace autobi {

// On-disk persistence for BI cases: tables as one CSV per table plus a
// `case.manifest` recording the case name, schema type and ground-truth
// joins. This is the local analogue of the paper's harvested-model files —
// it lets users keep benchmark cases, share them, and re-run methods
// without regeneration.
//
// Layout:
//   <dir>/case.manifest
//   <dir>/<table_name>.csv        (one per table)
//
// Both directions are untrusted-input surfaces (a case directory may come
// from anywhere): errors come back as a typed Status — kInternal for I/O
// failures, kInvalidInput for malformed manifests/CSVs — never a crash.

// Writes the case. The directory must already exist; files are overwritten.
Status SaveCase(const BiCase& bi_case, const std::string& dir);

// Reads a case previously written by SaveCase.
StatusOr<BiCase> LoadCase(const std::string& dir);

}  // namespace autobi

#endif  // AUTOBI_CORE_CASE_IO_H_
