#ifndef AUTOBI_CORE_LOCAL_MODEL_H_
#define AUTOBI_CORE_LOCAL_MODEL_H_

#include <iosfwd>
#include <string>

#include "features/featurizer.h"
#include "ml/calibration.h"
#include "ml/random_forest.h"

namespace autobi {

// Which calibration technique maps raw classifier scores to probabilities.
enum class CalibrationMethod { kPlatt, kIsotonic, kNone };

// The trained local join-prediction models of Section 4.2: separate N:1 and
// 1:1 classifiers (Appendix A), each in a full-feature and a schema-only
// variant (the latter powers Auto-BI-S), plus per-classifier calibrators and
// the corpus name-frequency table.
class LocalModel {
 public:
  // Calibrated joinability probability of a candidate (Algorithm 1, Line 4).
  // `schema_only` selects the metadata-only variant.
  double Score(const FeatureContext& ctx, const JoinCandidate& cand,
               bool schema_only) const;

  bool trained() const { return n1_full_.trained(); }

  // --- Accessors used by the Trainer (which owns fitting).
  RandomForest& n1_full() { return n1_full_; }
  RandomForest& n1_schema() { return n1_schema_; }
  RandomForest& one_full() { return one_full_; }
  RandomForest& one_schema() { return one_schema_; }
  PlattCalibrator& platt(int index) { return platt_[index]; }
  IsotonicCalibrator& isotonic(int index) { return isotonic_[index]; }
  NameFrequency& frequency() { return frequency_; }
  const NameFrequency& frequency() const { return frequency_; }

  void set_split_one_to_one(bool v) { split_one_to_one_ = v; }
  bool split_one_to_one() const { return split_one_to_one_; }
  void set_calibration(CalibrationMethod m) { calibration_ = m; }
  CalibrationMethod calibration() const { return calibration_; }

  // Feature importances of the N:1 / 1:1 full-feature classifiers, paired
  // with feature names (for the Appendix-B feature-importance report).
  std::vector<std::pair<std::string, double>> N1FeatureImportance() const;
  std::vector<std::pair<std::string, double>> OneToOneFeatureImportance()
      const;

  // Classifier indices for the calibrator arrays.
  static constexpr int kN1Full = 0;
  static constexpr int kN1Schema = 1;
  static constexpr int kOneFull = 2;
  static constexpr int kOneSchema = 3;

  void Save(std::ostream& os) const;
  bool Load(std::istream& is);
  bool SaveToFile(const std::string& path) const;
  bool LoadFromFile(const std::string& path);

 private:
  double Calibrate(int index, double raw) const;

  RandomForest n1_full_, n1_schema_, one_full_, one_schema_;
  PlattCalibrator platt_[4];
  IsotonicCalibrator isotonic_[4];
  NameFrequency frequency_;
  Featurizer featurizer_;
  bool split_one_to_one_ = true;
  CalibrationMethod calibration_ = CalibrationMethod::kPlatt;
};

}  // namespace autobi

#endif  // AUTOBI_CORE_LOCAL_MODEL_H_
