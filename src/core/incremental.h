#ifndef AUTOBI_CORE_INCREMENTAL_H_
#define AUTOBI_CORE_INCREMENTAL_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/run_context.h"
#include "core/auto_bi.h"
#include "core/bi_model.h"
#include "core/local_model.h"
#include "core/schema_diff.h"
#include "graph/join_graph.h"
#include "graph/kmca_cc.h"
#include "profile/column_profile.h"
#include "profile/ind.h"
#include "profile/ucc.h"

namespace autobi {

// The incremental re-prediction engine behind AutoBi::PredictIncremental
// (ROADMAP item 3; the repeated-inference regime of Tursio's production
// framing). An IncrementalState carries everything a healthy run computed
// that a subsequent run over a slightly-mutated table set can reuse:
//
//   - per-table snapshots (hash summaries) to diff the next submission
//     against (core/schema_diff.h);
//   - per-table profiles + UCCs (name-free, so they also survive renames;
//     appended tables merge their profiles forward via
//     MergeAppendedTableProfile instead of rescanning old rows);
//   - per-unordered-pair candidate lists with their calibrated scores
//     (name-dependent — reused only when both endpoint tables are fully
//     unchanged);
//   - the join graph and the global solve outputs (reused wholesale when
//     the new graph is structurally identical — the warm start).
//
// Contract: RunIncrementalPipeline output is bit-identical to RunPipeline
// (a cold AutoBi::Predict) on the same tables for every result field except
// timing and result.incremental. Degraded runs (deadline/cancel trips,
// injected faults) never update the state; the next call rebuilds.

// Cached candidates + scores of one unordered table pair, in the pair's
// dedup-map order ((src, dst) ascending), table indices in the state's own
// (previous-run) index space.
struct IncrementalPairEntry {
  std::vector<JoinCandidate> candidates;
  std::vector<double> probabilities;
};

struct IncrementalState {
  // False until the first healthy run commits; invalidated by option/budget
  // fingerprint changes and by fallback paths that bypass the engine.
  bool valid = false;
  // SolveKeyFingerprint of the run that produced this state: any mismatch
  // (options or deterministic budgets changed) forces a cold rebuild.
  uint64_t options_fp = 0;
  std::vector<TableSnapshot> snapshots;
  std::vector<TableProfile> profiles;
  std::vector<std::vector<Ucc>> uccs;
  // Keyed by unordered pair {i < j} over the state's table indices.
  std::map<std::pair<int, int>, IncrementalPairEntry> pairs;
  // Referenced-side composite key sets from the previous run, keyed by
  // (state table index, key columns). Sets are pure functions of the table
  // cells, so they re-seed the next run's CompositeKeyCache for every
  // hash-proven-unchanged (or merely renamed) table: pair rescans then only
  // build sets for tables whose content actually changed.
  std::map<CompositeKeyCache::Key,
           std::shared_ptr<const CompositeKeyCache::HashSet>>
      key_sets;
  JoinGraph graph;
  BiModel model;
  std::vector<int> backbone_edges;
  std::vector<int> recall_edges;
  KmcaCcStats solver_stats;
  // Partitioned-solve telemetry of the committed solve: a warm-started run
  // reuses the solve wholesale, so it must replay these too (they are a
  // deterministic function of the graph it reused).
  PartitionStats partition;
};

// Runs the delta-aware pipeline: diffs `tables` against `*state`, reuses
// everything the diff proves still valid, recomputes the rest, and commits
// the new state if (and only if) the run finished healthy. An invalid state
// or fingerprint mismatch degenerates to a cold rebuild through the same
// code path. May throw like RunPipeline (pool-propagated worker exceptions);
// the state is only mutated by the final healthy commit, so a throw leaves
// it describing the previous healthy run.
//
// Callers must pre-screen the fallback conditions the engine does not
// replicate (RunContext already stopped at entry; tables over the
// row/cell value-probe budget) — AutoBi::PredictIncremental does.
AutoBiResult RunIncrementalPipeline(const LocalModel& model,
                                    const AutoBiOptions& options,
                                    const std::vector<Table>& tables,
                                    const RunContext* ctx,
                                    IncrementalState* state);

}  // namespace autobi

#endif  // AUTOBI_CORE_INCREMENTAL_H_
