#include "core/predict_cache.h"

#include <utility>

namespace autobi {

template <typename T>
std::shared_ptr<const T> PredictCache::Find(const Shard<T>& shard,
                                            uint64_t key) const {
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    ++const_cast<Shard<T>&>(shard).misses;
    return nullptr;
  }
  ++const_cast<Shard<T>&>(shard).hits;
  return it->second;
}

template <typename T>
void PredictCache::Insert(Shard<T>& shard, size_t capacity, uint64_t key,
                          std::shared_ptr<const T> entry) {
  auto [it, inserted] = shard.map.emplace(key, std::move(entry));
  if (!inserted) return;  // First writer wins; entries are deterministic.
  shard.insertion_order.push_back(key);
  // FIFO eviction keeps the shard bounded. The queue can hold keys already
  // evicted-and-reinserted; erase lazily until the map is under capacity.
  size_t scan = 0;
  while (capacity > 0 && shard.map.size() > capacity &&
         scan < shard.insertion_order.size()) {
    uint64_t victim = shard.insertion_order[scan++];
    if (victim != key && shard.map.erase(victim) > 0) ++evictions_;
  }
  if (scan > 0) {
    shard.insertion_order.erase(shard.insertion_order.begin(),
                                shard.insertion_order.begin() + long(scan));
    shard.insertion_order.push_back(key);
  }
}

std::shared_ptr<const PredictCache::TableEntry> PredictCache::FindTable(
    uint64_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return Find(tables_, key);
}

void PredictCache::InsertTable(uint64_t key,
                               std::shared_ptr<const TableEntry> entry) {
  std::lock_guard<std::mutex> lock(mu_);
  Insert(tables_, options_.max_table_entries, key, std::move(entry));
}

std::shared_ptr<const PredictCache::SolveEntry> PredictCache::FindSolve(
    uint64_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return Find(solves_, key);
}

void PredictCache::InsertSolve(uint64_t key,
                               std::shared_ptr<const SolveEntry> entry) {
  std::lock_guard<std::mutex> lock(mu_);
  Insert(solves_, options_.max_solve_entries, key, std::move(entry));
}

PredictCache::Stats PredictCache::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.table_hits = tables_.hits;
  s.table_misses = tables_.misses;
  s.solve_hits = solves_.hits;
  s.solve_misses = solves_.misses;
  s.table_entries = tables_.map.size();
  s.solve_entries = solves_.map.size();
  s.evictions = evictions_;
  return s;
}

void PredictCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  tables_.map.clear();
  tables_.insertion_order.clear();
  solves_.map.clear();
  solves_.insertion_order.clear();
}

}  // namespace autobi
