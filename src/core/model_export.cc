#include "core/model_export.h"

#include "common/fs.h"
#include "common/strings.h"

namespace autobi {

namespace {

// Escapes a string for double-quoted DOT/JSON contexts.
std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string ColumnList(const std::vector<Table>& tables,
                       const ColumnRef& ref, const char* sep = ", ") {
  std::string out;
  const Table& t = tables[size_t(ref.table)];
  for (size_t i = 0; i < ref.columns.size(); ++i) {
    if (i > 0) out += sep;
    out += t.column(size_t(ref.columns[i])).name();
  }
  return out;
}

}  // namespace

StatusOr<std::string> ExportDot(const std::vector<Table>& tables,
                                const BiModel& model) {
  AUTOBI_RETURN_IF_ERROR(
      ValidateBiModel(tables, model).WithContext("export DOT"));
  std::string out = "digraph bi_model {\n  rankdir=LR;\n  node [shape=box];\n";
  for (const Table& t : tables) {
    out += StrFormat("  \"%s\";\n", Escape(t.name()).c_str());
  }
  for (const Join& join : model.joins) {
    const std::string& from = tables[size_t(join.from.table)].name();
    const std::string& to = tables[size_t(join.to.table)].name();
    std::string label = Escape(ColumnList(tables, join.from) + " -> " +
                               ColumnList(tables, join.to));
    if (join.kind == JoinKind::kOneToOne) {
      out += StrFormat(
          "  \"%s\" -> \"%s\" [dir=both, style=dashed, label=\"%s\"];\n",
          Escape(from).c_str(), Escape(to).c_str(), label.c_str());
    } else {
      out += StrFormat("  \"%s\" -> \"%s\" [label=\"%s\"];\n",
                       Escape(from).c_str(), Escape(to).c_str(),
                       label.c_str());
    }
  }
  out += "}\n";
  return out;
}

StatusOr<std::string> ExportSqlDdl(const std::vector<Table>& tables,
                                   const BiModel& model) {
  AUTOBI_RETURN_IF_ERROR(
      ValidateBiModel(tables, model).WithContext("export SQL DDL"));
  std::string out;
  for (const Join& join : model.joins) {
    const std::string& from = tables[size_t(join.from.table)].name();
    const std::string& to = tables[size_t(join.to.table)].name();
    if (join.kind == JoinKind::kOneToOne) {
      out += StrFormat("-- 1:1 relationship: %s(%s) <-> %s(%s)\n",
                       from.c_str(),
                       ColumnList(tables, join.from).c_str(), to.c_str(),
                       ColumnList(tables, join.to).c_str());
      continue;
    }
    out += StrFormat(
        "ALTER TABLE \"%s\" ADD FOREIGN KEY (%s) REFERENCES \"%s\" (%s);\n",
        from.c_str(), ColumnList(tables, join.from).c_str(), to.c_str(),
        ColumnList(tables, join.to).c_str());
  }
  return out;
}

StatusOr<std::string> ExportJson(const std::vector<Table>& tables,
                                 const BiModel& model) {
  AUTOBI_RETURN_IF_ERROR(
      ValidateBiModel(tables, model).WithContext("export JSON"));
  std::string out = "{\n  \"tables\": [";
  for (size_t i = 0; i < tables.size(); ++i) {
    if (i > 0) out += ", ";
    out += StrFormat("\"%s\"", Escape(tables[i].name()).c_str());
  }
  out += "],\n  \"joins\": [\n";
  for (size_t i = 0; i < model.joins.size(); ++i) {
    const Join& join = model.joins[i];
    out += StrFormat(
        "    {\"from_table\": \"%s\", \"from_columns\": \"%s\", "
        "\"to_table\": \"%s\", \"to_columns\": \"%s\", \"kind\": \"%s\"}%s\n",
        Escape(tables[size_t(join.from.table)].name()).c_str(),
        Escape(ColumnList(tables, join.from, ",")).c_str(),
        Escape(tables[size_t(join.to.table)].name()).c_str(),
        Escape(ColumnList(tables, join.to, ",")).c_str(),
        join.kind == JoinKind::kOneToOne ? "1:1" : "N:1",
        i + 1 < model.joins.size() ? "," : "");
  }
  out += "  ]\n}\n";
  return out;
}

Status ExportToFile(const std::vector<Table>& tables, const BiModel& model,
                    const std::string& format, const std::string& path) {
  StatusOr<std::string> rendered =
      format == "dot"    ? ExportDot(tables, model)
      : format == "sql"  ? ExportSqlDdl(tables, model)
      : format == "json" ? ExportJson(tables, model)
                         : StatusOr<std::string>(Status::InvalidInput(
                               "unknown export format: " + format));
  AUTOBI_RETURN_IF_ERROR(rendered.status());
  return WriteFileAtomic(path, *rendered).WithContext("export to " + path);
}

}  // namespace autobi
