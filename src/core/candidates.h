#ifndef AUTOBI_CORE_CANDIDATES_H_
#define AUTOBI_CORE_CANDIDATES_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/run_context.h"
#include "features/featurizer.h"
#include "profile/ind.h"
#include "profile/ucc.h"
#include "table/table.h"

namespace autobi {

class PredictCache;

struct CandidateGenOptions {
  UccOptions ucc;
  IndOptions ind;
  // A candidate is 1:1-shaped when both endpoints have distinct ratio at
  // least this and are mutually contained (Appendix A, "separate N-1 and 1-1
  // classifiers").
  double one_to_one_distinct_ratio = 0.95;
  double one_to_one_min_containment = 0.9;
  // When a table pair has no data to probe (e.g. tables parsed from DDL, or
  // tables excluded from value probing by a RunContext row/cell budget),
  // fall back to metadata-screened candidates so schema-only prediction
  // still works (extension beyond the paper).
  bool metadata_fallback_for_empty_tables = true;
  // Worker threads for profiling/UCC (per table) and IND discovery (per
  // table pair). ResolveThreads semantics: 0 = AUTOBI_THREADS/hardware,
  // 1 = serial. Also the default for ind.threads when that is 0. The
  // candidate set produced is identical at any thread count.
  int threads = 0;
  // Optional cross-request profile cache (core/predict_cache.h), shared by
  // the serving layer across sessions. When set, tables whose content hash
  // (⊕ the UccOptions fingerprint) matches a cached entry reuse its
  // profile + UCCs instead of re-scanning; fresh entries are inserted after
  // profiling. A hit is byte-identical to recomputation, so results are
  // unchanged with or without the cache. Not owned; must outlive the call.
  PredictCache* cache = nullptr;
};

// Output of the candidate-generation stage (UCC + IND discovery, the first
// two latency components of Figure 5(b)).
struct CandidateSet {
  std::vector<TableProfile> profiles;
  std::vector<std::vector<Ucc>> uccs;
  std::vector<JoinCandidate> candidates;
  // Stage latencies in seconds.
  double ucc_seconds = 0.0;
  double ind_seconds = 0.0;
  // Observability counters of the IND stage (screens hit, exact checks run,
  // composite sets built/truncated); includes the reverse-containment
  // composite sets built by candidate conversion.
  IndStats ind_stats;
  // Degradation markers (RunContext budgets / deadline / cancellation; see
  // ARCHITECTURE.md). Healthy runs leave both untouched.
  StageHealth ucc_health;
  StageHealth ind_health;
  // Profiling-stage cache observability: tables whose profile + UCCs came
  // from the cross-request PredictCache, and tables deduplicated against an
  // identical table earlier in the same case (content-hash equality).
  size_t profile_cache_hits = 0;
  size_t profile_dedup_hits = 0;
};

// Profiles the tables, discovers UCCs and approximate INDs, and converts
// them into deduplicated join candidates. N:1 candidates keep the FK->PK
// direction of their IND; 1:1-shaped pairs are emitted once (from the
// lower-indexed table) with one_to_one = true.
//
// If `ctx` is non-null, the stage honours its budgets and deadline/cancel
// flag: tables over the row/cell budget keep metadata-only profiles (and
// flow through the same name-based fallback as empty DDL tables), the
// deduplicated candidate list is truncated to max_candidate_pairs in its
// deterministic sorted order, and a tripped deadline/cancel skips remaining
// per-table / per-pair work. Whatever degrades is recorded in
// ucc_health/ind_health; a null or untripped context yields byte-identical
// output to a context-free run.
CandidateSet GenerateCandidates(const std::vector<Table>& tables,
                                const CandidateGenOptions& options = {},
                                const RunContext* ctx = nullptr);

// --- Pair-local building blocks of candidate conversion, exposed so the
// incremental engine (core/incremental.h) can regenerate just the candidates
// of changed table pairs and splice them into cached ones. Each helper is a
// pure pair-local function: (src, dst) keys determine the table pair even
// after 1:1 canonical reorientation, so merging per-pair maps reproduces the
// full-run dedup map exactly.

// The deduplicated candidate map of candidate generation, ordered by
// (src, dst) — std::map iteration order IS the deterministic candidate order
// the budget truncation and scoring stages see.
using CandidateMap = std::map<std::pair<ColumnRef, ColumnRef>, JoinCandidate>;

// Converts discovered INDs into deduplicated candidates in `dedup`: reverse
// containment (profile-based for unary, exact probe through
// `composite_cache` for composite), 1:1 detection + canonical orientation,
// prefer-1:1 replacement on key collision. Byte-identical to the conversion
// loop inside GenerateCandidates over the same INDs.
void AddIndCandidates(const std::vector<Ind>& inds,
                      const std::vector<Table>& tables,
                      const std::vector<TableProfile>& profiles,
                      const CandidateGenOptions& options,
                      CompositeKeyCache* composite_cache, CandidateMap* dedup);

// Metadata-screened fallback candidates of the ordered pair (ti -> tj), added
// only when at least one side was not value-probed (probed[t] = table t has
// rows and was admitted under the RunContext table budgets). No-op when both
// sides were probed, matching GenerateCandidates' fallback loop.
void AddMetadataFallbackCandidates(const std::vector<Table>& tables,
                                   const std::vector<char>& probed, int ti,
                                   int tj, CandidateMap* dedup);

// Everything profiling depends on besides the table bytes, folded into the
// profile-cache key so an options change can never serve a stale entry.
uint64_t UccOptionsFingerprint(const UccOptions& ucc);

// True when a RunContext row/cell budget excludes `table` from value probing
// (the admission predicate of GenerateCandidates).
bool OverTableBudget(const Table& table, const RunContext::Budgets& budgets);

}  // namespace autobi

#endif  // AUTOBI_CORE_CANDIDATES_H_
