#include "core/trainer.h"

#include <map>
#include <numeric>

#include "common/rng.h"
#include "ml/metrics.h"

namespace autobi {

namespace {

// Union-find over ColumnRefs for label transitivity.
class RefUnion {
 public:
  int Intern(const ColumnRef& ref) {
    auto it = ids_.find(ref);
    if (it != ids_.end()) return it->second;
    int id = static_cast<int>(parent_.size());
    ids_.emplace(ref, id);
    parent_.push_back(id);
    return id;
  }
  int Lookup(const ColumnRef& ref) const {
    auto it = ids_.find(ref);
    return it == ids_.end() ? -1 : it->second;
  }
  int Find(int x) {
    while (parent_[size_t(x)] != x) {
      parent_[size_t(x)] = parent_[size_t(parent_[size_t(x)])];
      x = parent_[size_t(x)];
    }
    return x;
  }
  void Union(int a, int b) { parent_[size_t(Find(a))] = Find(b); }

 private:
  std::map<ColumnRef, int> ids_;
  std::vector<int> parent_;
};

}  // namespace

std::vector<int> LabelCandidates(const BiCase& bi_case,
                                 const std::vector<JoinCandidate>& candidates,
                                 bool label_transitivity) {
  // Transitive closure of join-connected column refs.
  RefUnion uf;
  for (const Join& j : bi_case.ground_truth.joins) {
    uf.Union(uf.Intern(j.from), uf.Intern(j.to));
  }

  std::vector<int> labels(candidates.size(), 0);
  for (size_t i = 0; i < candidates.size(); ++i) {
    const JoinCandidate& c = candidates[i];
    Join as_join;
    as_join.from = c.src;
    as_join.to = c.dst;
    as_join.kind = c.one_to_one ? JoinKind::kOneToOne : JoinKind::kNToOne;
    if (bi_case.ground_truth.Contains(as_join)) {
      labels[i] = 1;
      continue;
    }
    // A candidate whose kind disagrees with the ground truth still counts as
    // a positive join pair for classifier training (the joined columns are
    // the same).
    as_join.kind = c.one_to_one ? JoinKind::kNToOne : JoinKind::kOneToOne;
    if (bi_case.ground_truth.Contains(as_join) ||
        (as_join.kind == JoinKind::kNToOne &&
         bi_case.ground_truth.Contains(
             Join{as_join.to, as_join.from, JoinKind::kNToOne}))) {
      labels[i] = 1;
      continue;
    }
    if (label_transitivity) {
      int a = uf.Lookup(c.src);
      int b = uf.Lookup(c.dst);
      if (a >= 0 && b >= 0 && uf.Find(a) == uf.Find(b)) labels[i] = 1;
    }
  }
  return labels;
}

namespace {

struct FitResult {
  double auc = 0.5;
  double ece = 0.0;
};

// Fits a forest + calibrator pair on `data`; reports holdout quality.
FitResult FitClassifier(const Dataset& data, const TrainerOptions& options,
                        Rng& rng, RandomForest* forest,
                        PlattCalibrator* platt, IsotonicCalibrator* isotonic,
                        CalibrationMethod method) {
  FitResult result;
  if (data.num_rows() < 10 || data.num_positives() == 0 ||
      data.num_positives() == data.num_rows()) {
    // Degenerate dataset (e.g. a corpus without 1:1 joins): leave the
    // classifier untrained; LocalModel::Score falls back gracefully.
    return result;
  }
  Dataset train, holdout;
  data.Split(1.0 - options.calibration_holdout, rng, &train, &holdout);
  if (train.num_rows() == 0 || holdout.num_rows() == 0 ||
      train.num_positives() == 0 ||
      train.num_positives() == train.num_rows()) {
    train = data;
    holdout = data;  // Tiny data: calibrate in-sample rather than not at all.
  }
  forest->Fit(train, options.forest, rng);

  std::vector<double> raw(holdout.num_rows());
  std::vector<int> labels(holdout.num_rows());
  for (size_t i = 0; i < holdout.num_rows(); ++i) {
    raw[i] = forest->PredictProba(holdout.Row(i));
    labels[i] = holdout.Label(i);
  }
  platt->Fit(raw, labels);
  isotonic->Fit(raw, labels);

  std::vector<double> calibrated(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    switch (method) {
      case CalibrationMethod::kPlatt:
        calibrated[i] = platt->Calibrate(raw[i]);
        break;
      case CalibrationMethod::kIsotonic:
        calibrated[i] = isotonic->Calibrate(raw[i]);
        break;
      case CalibrationMethod::kNone:
        calibrated[i] = raw[i];
        break;
    }
  }
  result.auc = RocAuc(calibrated, labels);
  result.ece = ExpectedCalibrationError(calibrated, labels);
  return result;
}

}  // namespace

LocalModel TrainLocalModel(const std::vector<BiCase>& corpus,
                           const TrainerOptions& options,
                           TrainerReport* report) {
  LocalModel model;
  model.set_split_one_to_one(options.split_one_to_one);
  model.set_calibration(options.calibration);
  Featurizer featurizer;

  // Pass 1: corpus name frequencies (needed before featurization so the
  // Col_frequency feature is populated).
  for (const BiCase& bi_case : corpus) {
    for (const Table& t : bi_case.tables) {
      for (const Column& c : t.columns()) {
        model.frequency().Observe(c.name());
      }
    }
  }

  // Pass 2: candidates -> labels -> features.
  Dataset n1_full(Featurizer::N1FeatureNames(false));
  Dataset n1_schema(Featurizer::N1FeatureNames(true));
  Dataset one_full(Featurizer::OneToOneFeatureNames(false));
  Dataset one_schema(Featurizer::OneToOneFeatureNames(true));
  for (const BiCase& bi_case : corpus) {
    CandidateSet cands = GenerateCandidates(bi_case.tables,
                                            options.candidates);
    std::vector<int> labels =
        LabelCandidates(bi_case, cands.candidates, options.label_transitivity);
    FeatureContext ctx;
    ctx.tables = &bi_case.tables;
    ctx.profiles = &cands.profiles;
    ctx.frequency = &model.frequency();
    for (size_t i = 0; i < cands.candidates.size(); ++i) {
      const JoinCandidate& c = cands.candidates[i];
      if (options.split_one_to_one && c.one_to_one) {
        one_full.Add(featurizer.FeaturizeOneToOne(ctx, c, false), labels[i]);
        one_schema.Add(featurizer.FeaturizeOneToOne(ctx, c, true), labels[i]);
      } else {
        n1_full.Add(featurizer.FeaturizeN1(ctx, c, false), labels[i]);
        n1_schema.Add(featurizer.FeaturizeN1(ctx, c, true), labels[i]);
      }
    }
  }

  Rng rng(options.seed);
  FitResult n1 = FitClassifier(
      n1_full, options, rng, &model.n1_full(),
      &model.platt(LocalModel::kN1Full), &model.isotonic(LocalModel::kN1Full),
      options.calibration);
  FitClassifier(n1_schema, options, rng, &model.n1_schema(),
                &model.platt(LocalModel::kN1Schema),
                &model.isotonic(LocalModel::kN1Schema), options.calibration);
  FitResult one = FitClassifier(
      one_full, options, rng, &model.one_full(),
      &model.platt(LocalModel::kOneFull),
      &model.isotonic(LocalModel::kOneFull), options.calibration);
  FitClassifier(one_schema, options, rng, &model.one_schema(),
                &model.platt(LocalModel::kOneSchema),
                &model.isotonic(LocalModel::kOneSchema), options.calibration);

  if (report != nullptr) {
    report->num_cases = corpus.size();
    report->n1_examples = n1_full.num_rows();
    report->n1_positives = n1_full.num_positives();
    report->one_examples = one_full.num_rows();
    report->one_positives = one_full.num_positives();
    report->n1_auc = n1.auc;
    report->one_auc = one.auc;
    report->n1_calibration_error = n1.ece;
    report->one_calibration_error = one.ece;
  }
  return model;
}

}  // namespace autobi
