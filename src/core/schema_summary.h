#ifndef AUTOBI_CORE_SCHEMA_SUMMARY_H_
#define AUTOBI_CORE_SCHEMA_SUMMARY_H_

#include <string>
#include <vector>

#include "core/bi_model.h"

namespace autobi {

// Schema summarization over a (predicted or ground-truth) BI model, in the
// spirit of Yang et al. [57], which the paper invokes to explain why Auto-BI
// works on OLTP schemas: tables cluster around a few "hub" tables
// (Customers, Security, Trade in TPC-E). The summary classifies tables as
// fact-like / hub / dimension / isolated and reports per-cluster membership.

enum class TableRole {
  kFact,       // Only outgoing joins (references others, nothing refers to it).
  kHub,        // Referenced by 2+ tables (the spoke center).
  kDimension,  // Referenced by exactly one table.
  kIsolated,   // No joins at all.
};

const char* TableRoleName(TableRole role);

struct TableSummary {
  int table = -1;
  TableRole role = TableRole::kIsolated;
  int in_degree = 0;   // Joins referencing this table.
  int out_degree = 0;  // Joins this table makes to others.
  int cluster = -1;    // Weakly-connected component id.
};

struct SchemaSummary {
  std::vector<TableSummary> tables;
  int num_clusters = 0;

  // Index of every fact-like table (candidate analysis entry points).
  std::vector<int> FactTables() const;
  // Index of every hub (in-degree >= 2).
  std::vector<int> HubTables() const;
};

// Summarizes the schema graph induced by `model` over `tables`. 1:1 joins
// count toward connectivity but not toward in/out degrees (both sides are
// peers of one logical entity).
SchemaSummary SummarizeSchema(const std::vector<Table>& tables,
                              const BiModel& model);

// Multi-line human-readable report.
std::string RenderSchemaSummary(const std::vector<Table>& tables,
                                const SchemaSummary& summary);

}  // namespace autobi

#endif  // AUTOBI_CORE_SCHEMA_SUMMARY_H_
