#ifndef AUTOBI_CORE_JOIN_STATS_H_
#define AUTOBI_CORE_JOIN_STATS_H_

#include <string>

#include "core/bi_model.h"

namespace autobi {

// Executes a predicted join (hash join on the canonical key) and reports
// cardinality statistics — the ground-level validation a user performs
// before trusting a suggested relationship. A healthy N:1 join has match
// rate ~1 on the FK side and max fan-out 1 (each FK row meets exactly one
// PK row); fan-out > 1 means the "one" side is not actually unique on the
// join key.
struct JoinStats {
  // FK-side rows with a non-null key.
  size_t left_rows = 0;
  // Distinct keys on each side.
  size_t left_distinct = 0;
  size_t right_distinct = 0;
  // FK-side rows that found at least one match.
  size_t matched_rows = 0;
  // Total joined output rows.
  size_t output_rows = 0;
  // Max matches for any single FK-side row (1 == clean N:1).
  size_t max_fanout = 0;

  double MatchRate() const {
    return left_rows == 0 ? 0.0
                          : double(matched_rows) / double(left_rows);
  }
  bool LooksLikeCleanNToOne() const {
    return max_fanout <= 1 && MatchRate() >= 0.95;
  }

  std::string ToString() const;
};

// Computes the stats for `join` over `tables`. Composite keys join on the
// concatenated canonical tuple. O(left_rows + right_rows).
JoinStats ComputeJoinStats(const std::vector<Table>& tables,
                           const Join& join);

}  // namespace autobi

#endif  // AUTOBI_CORE_JOIN_STATS_H_
