#include "core/schema_summary.h"

#include <numeric>

#include "common/strings.h"

namespace autobi {

const char* TableRoleName(TableRole role) {
  switch (role) {
    case TableRole::kFact:
      return "fact";
    case TableRole::kHub:
      return "hub";
    case TableRole::kDimension:
      return "dimension";
    case TableRole::kIsolated:
      return "isolated";
  }
  return "?";
}

std::vector<int> SchemaSummary::FactTables() const {
  std::vector<int> out;
  for (const TableSummary& t : tables) {
    if (t.role == TableRole::kFact) out.push_back(t.table);
  }
  return out;
}

std::vector<int> SchemaSummary::HubTables() const {
  std::vector<int> out;
  for (const TableSummary& t : tables) {
    if (t.role == TableRole::kHub) out.push_back(t.table);
  }
  return out;
}

SchemaSummary SummarizeSchema(const std::vector<Table>& tables,
                              const BiModel& model) {
  int n = int(tables.size());
  SchemaSummary summary;
  summary.tables.resize(size_t(n));
  for (int i = 0; i < n; ++i) summary.tables[size_t(i)].table = i;

  // Degrees + union-find connectivity.
  std::vector<int> parent(static_cast<size_t>(n));
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](int x) {
    while (parent[size_t(x)] != x) {
      parent[size_t(x)] = parent[size_t(parent[size_t(x)])];
      x = parent[size_t(x)];
    }
    return x;
  };
  std::vector<char> joined(size_t(n), 0);
  for (const Join& j : model.joins) {
    joined[size_t(j.from.table)] = 1;
    joined[size_t(j.to.table)] = 1;
    parent[size_t(find(j.from.table))] = find(j.to.table);
    if (j.kind == JoinKind::kNToOne) {
      ++summary.tables[size_t(j.from.table)].out_degree;
      ++summary.tables[size_t(j.to.table)].in_degree;
    }
  }

  // Cluster ids (dense, joined components only; isolated tables get their
  // own singleton clusters).
  std::vector<int> cluster_of_root(size_t(n), -1);
  int next_cluster = 0;
  for (int i = 0; i < n; ++i) {
    int root = find(i);
    if (cluster_of_root[size_t(root)] < 0) {
      cluster_of_root[size_t(root)] = next_cluster++;
    }
    summary.tables[size_t(i)].cluster = cluster_of_root[size_t(root)];
  }
  summary.num_clusters = next_cluster;

  for (int i = 0; i < n; ++i) {
    TableSummary& t = summary.tables[size_t(i)];
    if (!joined[size_t(i)]) {
      t.role = TableRole::kIsolated;
    } else if (t.in_degree >= 2) {
      t.role = TableRole::kHub;
    } else if (t.in_degree == 0) {
      t.role = TableRole::kFact;
    } else {
      t.role = TableRole::kDimension;
    }
  }
  return summary;
}

std::string RenderSchemaSummary(const std::vector<Table>& tables,
                                const SchemaSummary& summary) {
  std::string out =
      StrFormat("Schema summary: %zu tables, %d cluster(s)\n",
                tables.size(), summary.num_clusters);
  for (int c = 0; c < summary.num_clusters; ++c) {
    std::vector<std::string> members;
    for (const TableSummary& t : summary.tables) {
      if (t.cluster != c) continue;
      members.push_back(StrFormat("%s(%s in=%d out=%d)",
                                  tables[size_t(t.table)].name().c_str(),
                                  TableRoleName(t.role), t.in_degree,
                                  t.out_degree));
    }
    out += StrFormat("  cluster %d: %s\n", c,
                     JoinStrings(members, ", ").c_str());
  }
  return out;
}

}  // namespace autobi
