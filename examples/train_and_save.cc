// The offline component of Figure 2 as a standalone tool: trains the local
// join classifiers on a synthetic corpus, reports holdout quality and the
// Appendix-B feature-importance ranking, and saves the model for reuse
// (e.g. by csv_autobi --model).
//
//   train_and_save [output_path] [num_training_cases]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/trainer.h"
#include "synth/corpus.h"

int main(int argc, char** argv) {
  using namespace autobi;
  std::string output = argc > 1 ? argv[1] : "autobi_model.txt";
  size_t cases = argc > 2 ? size_t(std::atoi(argv[2])) : 150;

  CorpusOptions corpus_options;
  corpus_options.training_cases = cases;
  std::printf("Building training corpus (%zu cases)...\n", cases);
  std::vector<BiCase> corpus = BuildTrainingCorpus(corpus_options);
  CorpusStats stats = ComputeCorpusStats(corpus);
  std::printf("  avg %.1f tables/case, %.1f joins/case, %.0f rows/table\n",
              stats.tables_avg, stats.edges_avg, stats.rows_avg);

  TrainerOptions options;
  TrainerReport report;
  std::printf("Training N:1 and 1:1 classifiers + calibration...\n");
  LocalModel model = TrainLocalModel(corpus, options, &report);

  std::printf("\nTraining report:\n");
  std::printf("  N:1 classifier: %zu examples (%zu positive), holdout AUC "
              "%.3f, calibration error %.3f\n",
              report.n1_examples, report.n1_positives, report.n1_auc,
              report.n1_calibration_error);
  std::printf("  1:1 classifier: %zu examples (%zu positive), holdout AUC "
              "%.3f\n",
              report.one_examples, report.one_positives, report.one_auc);

  std::printf("\nTop N:1 features by importance (Appendix B):\n");
  auto n1_imp = model.N1FeatureImportance();
  for (size_t i = 0; i < n1_imp.size() && i < 10; ++i) {
    std::printf("  %2zu. %-28s %.3f\n", i + 1, n1_imp[i].first.c_str(),
                n1_imp[i].second);
  }
  std::printf("\nTop 1:1 features by importance:\n");
  auto one_imp = model.OneToOneFeatureImportance();
  for (size_t i = 0; i < one_imp.size() && i < 10; ++i) {
    std::printf("  %2zu. %-28s %.3f\n", i + 1, one_imp[i].first.c_str(),
                one_imp[i].second);
  }

  if (!model.SaveToFile(output)) {
    std::fprintf(stderr, "error: cannot write %s\n", output.c_str());
    return 1;
  }
  std::printf("\nModel saved to %s\n", output.c_str());
  return 0;
}
