// csv_autobi: predict the BI model for your own CSV files.
//
//   csv_autobi [--model FILE] [--format text|dot|sql|json] a.csv b.csv ...
//
// Loads a trained local model from --model if given (see train_and_save);
// otherwise trains a default model on the built-in synthetic corpus (takes a
// few seconds, then caches to ./autobi_default_model.txt). The predicted
// join graph is printed in the requested format.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <fstream>
#include <sstream>

#include "core/auto_bi.h"
#include "core/model_export.h"
#include "core/trainer.h"
#include "synth/corpus.h"
#include "table/csv.h"
#include "table/sql_ddl.h"

namespace {

autobi::LocalModel LoadOrTrainModel(const std::string& path) {
  autobi::LocalModel model;
  if (!path.empty()) {
    if (!model.LoadFromFile(path)) {
      std::fprintf(stderr, "error: cannot load model from %s\n",
                   path.c_str());
      std::exit(1);
    }
    return model;
  }
  const char* kCache = "autobi_default_model.txt";
  if (model.LoadFromFile(kCache)) return model;
  std::fprintf(stderr, "training default model (first run only)...\n");
  autobi::CorpusOptions corpus;
  corpus.training_cases = 120;
  model = autobi::TrainLocalModel(autobi::BuildTrainingCorpus(corpus));
  model.SaveToFile(kCache);
  return model;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace autobi;
  std::string model_path;
  std::string format = "text";
  std::string ddl_path;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--model") == 0 && i + 1 < argc) {
      model_path = argv[++i];
    } else if (std::strcmp(argv[i], "--format") == 0 && i + 1 < argc) {
      format = argv[++i];
    } else if (std::strcmp(argv[i], "--ddl") == 0 && i + 1 < argc) {
      ddl_path = argv[++i];
    } else {
      files.push_back(argv[i]);
    }
  }
  if (ddl_path.empty() && files.size() < 2) {
    std::fprintf(stderr,
                 "usage: csv_autobi [--model FILE] "
                 "[--format text|dot|sql|json] a.csv b.csv ...\n"
                 "       csv_autobi --ddl schema.sql    "
                 "(schema-only prediction from CREATE TABLE DDL)\n");
    return 2;
  }

  std::vector<Table> tables;
  bool schema_only = !ddl_path.empty();
  if (schema_only) {
    std::ifstream in(ddl_path);
    if (!in) {
      std::fprintf(stderr, "error: cannot open %s\n", ddl_path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    StatusOr<DdlSchema> schema = ParseSqlDdl(buf.str());
    if (!schema.ok()) {
      std::fprintf(stderr, "error parsing DDL: %s\n",
                   schema.status().ToString().c_str());
      return 1;
    }
    tables = std::move(schema.value().tables);
    std::fprintf(stderr, "parsed %zu tables from DDL (schema-only mode)\n",
                 tables.size());
  } else {
    for (const std::string& path : files) {
      StatusOr<Table> t = ReadCsvFile(path);
      if (!t.ok()) {
        std::fprintf(stderr, "error reading %s: %s\n", path.c_str(),
                     t.status().ToString().c_str());
        return 1;
      }
      std::fprintf(stderr, "loaded %s: %zu rows, %zu columns\n",
                   t.value().name().c_str(), t.value().num_rows(),
                   t.value().num_columns());
      tables.push_back(std::move(t).value());
    }
  }

  LocalModel model = LoadOrTrainModel(model_path);
  AutoBiOptions options;
  if (schema_only) options.mode = AutoBiMode::kSchemaOnly;
  AutoBi auto_bi(&model, options);
  StatusOr<AutoBiResult> predicted = auto_bi.Predict(tables, nullptr);
  if (!predicted.ok()) {
    std::fprintf(stderr, "prediction failed: %s\n",
                 predicted.status().ToString().c_str());
    return 1;
  }
  const AutoBiResult& result = predicted.value();

  auto print_export = [&](StatusOr<std::string> rendered) {
    if (!rendered.ok()) {
      std::fprintf(stderr, "export failed: %s\n",
                   rendered.status().ToString().c_str());
      std::exit(1);
    }
    std::printf("%s", rendered.value().c_str());
  };
  if (format == "dot") {
    print_export(ExportDot(tables, result.model));
  } else if (format == "sql") {
    print_export(ExportSqlDdl(tables, result.model));
  } else if (format == "json") {
    print_export(ExportJson(tables, result.model));
  } else {
    std::printf("Predicted BI model (%zu joins):\n",
                result.model.joins.size());
    for (const Join& join : result.model.joins) {
      std::printf("  %s\n", JoinToString(tables, join).c_str());
    }
  }
  std::fprintf(stderr,
               "latency: ucc %.3fs ind %.3fs inference %.3fs global %.3fs\n",
               result.timing.ucc, result.timing.ind,
               result.timing.local_inference, result.timing.global_predict);
  return 0;
}
