// eval_case: run every method on a BI case saved on disk and print a
// Table-5-style quality/latency comparison for that single case.
//
//   eval_case <case_dir>           # a directory written by SaveCase
//   eval_case --export <case_dir>  # generate + save a demo case, then exit
//
// The case directory layout is documented in core/case_io.h (one CSV per
// table + case.manifest with the ground-truth joins).

#include <cstdio>
#include <cstring>
#include <filesystem>

#include "baselines/fk_baselines.h"
#include "baselines/ml_fk.h"
#include "common/rng.h"
#include "core/case_io.h"
#include "core/trainer.h"
#include "eval/harness.h"
#include "eval/report.h"
#include "synth/bi_generator.h"
#include "synth/corpus.h"

int main(int argc, char** argv) {
  using namespace autobi;

  if (argc >= 3 && std::strcmp(argv[1], "--export") == 0) {
    std::filesystem::create_directories(argv[2]);
    Rng rng(123);
    BiGenOptions gen;
    gen.num_tables = 7;
    BiCase demo = GenerateBiCase(gen, rng);
    Status saved = SaveCase(demo, argv[2]);
    if (!saved.ok()) {
      std::fprintf(stderr, "error: %s\n", saved.ToString().c_str());
      return 1;
    }
    std::printf("wrote demo case '%s' (%zu tables, %zu joins) to %s\n",
                demo.name.c_str(), demo.tables.size(),
                demo.ground_truth.joins.size(), argv[2]);
    return 0;
  }
  if (argc != 2) {
    std::fprintf(stderr,
                 "usage: eval_case <case_dir>\n"
                 "       eval_case --export <case_dir>\n");
    return 2;
  }

  StatusOr<BiCase> loaded = LoadCase(argv[1]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error loading case: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  BiCase bi_case = std::move(loaded).value();
  std::printf("case '%s': %zu tables, %zu ground-truth joins\n",
              bi_case.name.c_str(), bi_case.tables.size(),
              bi_case.ground_truth.joins.size());

  std::fprintf(stderr, "training models (cached after first run)...\n");
  CorpusOptions corpus_options;
  corpus_options.training_cases = 120;
  LocalModel model;
  if (!model.LoadFromFile("autobi_default_model.txt")) {
    model = TrainLocalModel(BuildTrainingCorpus(corpus_options));
    model.SaveToFile("autobi_default_model.txt");
  }
  MlFkModel mlfk;
  if (!mlfk.LoadFromFile("autobi_default_mlfk.txt")) {
    mlfk.Train(BuildTrainingCorpus(corpus_options));
    mlfk.SaveToFile("autobi_default_mlfk.txt");
  }

  std::vector<std::unique_ptr<JoinPredictor>> methods;
  AutoBiOptions p_only;
  p_only.mode = AutoBiMode::kPrecisionOnly;
  methods.push_back(
      std::make_unique<AutoBiPredictor>("Auto-BI-P", &model, p_only));
  methods.push_back(
      std::make_unique<AutoBiPredictor>("Auto-BI", &model, AutoBiOptions{}));
  methods.push_back(std::make_unique<SystemX>());
  methods.push_back(std::make_unique<McFk>());
  methods.push_back(std::make_unique<FastFk>());
  methods.push_back(std::make_unique<HoPf>());
  methods.push_back(std::make_unique<MlFkRostin>(&mlfk));

  TablePrinter table(
      {"Method", "P_edge", "R_edge", "F_edge", "case OK?", "latency"});
  for (const auto& method : methods) {
    MethodResults r = RunMethod(*method, {bi_case});
    const CaseResult& cr = r.cases[0];
    table.AddRow({method->name(), Fmt3(cr.metrics.precision),
                  Fmt3(cr.metrics.recall), Fmt3(cr.metrics.f1),
                  cr.metrics.case_correct ? "yes" : "no",
                  FmtSeconds(cr.timing.Total())});
  }
  table.Print();
  return 0;
}
