// Walks through the paper's Figure 4 story on a generated constellation
// schema (two fact tables sharing dimensions):
//   1. precision mode (k-MCA-CC) finds the k-snowflake "backbone",
//   2. recall mode (EMS) grows the shared-dimension joins the arborescence
//      cannot contain,
//   3. ablations show what each stage contributes.

#include <cstdio>

#include "common/rng.h"
#include "core/auto_bi.h"
#include "core/trainer.h"
#include "eval/metrics.h"
#include "synth/bi_generator.h"
#include "synth/corpus.h"

int main() {
  using namespace autobi;

  CorpusOptions corpus_options;
  corpus_options.seed = 2024;
  corpus_options.training_cases = 80;
  std::printf("Training local model on %zu synthetic BI cases...\n",
              corpus_options.training_cases);
  LocalModel model = TrainLocalModel(BuildTrainingCorpus(corpus_options));

  // Find a constellation case (multiple facts -> shared dims).
  Rng rng(31337);
  BiGenOptions gen;
  gen.num_tables = 10;
  BiCase bi_case = GenerateBiCase(gen, rng);
  while (bi_case.schema_type != SchemaType::kConstellation) {
    bi_case = GenerateBiCase(gen, rng);
  }
  std::printf("\nCase '%s': %zu tables, %zu ground-truth joins\n",
              bi_case.name.c_str(), bi_case.tables.size(),
              bi_case.ground_truth.joins.size());

  AutoBi auto_bi(&model, AutoBiOptions{});
  AutoBiResult r = auto_bi.Predict(bi_case.tables);

  std::printf("\n--- Precision mode: k-MCA-CC backbone (%zu edges, "
              "k = %d snowflakes, %ld 1-MCA calls) ---\n",
              r.backbone_edges.size(),
              int(bi_case.tables.size()) - int(r.backbone_edges.size()),
              r.solver_stats.one_mca_calls);
  for (int id : r.backbone_edges) {
    const JoinEdge& e = r.graph.edge(id);
    std::printf("  P=%.2f %s -> %s\n", e.probability,
                bi_case.tables[size_t(e.src)].name().c_str(),
                bi_case.tables[size_t(e.dst)].name().c_str());
  }

  std::printf("\n--- Recall mode: EMS additions (%zu edges beyond the "
              "backbone) ---\n",
              r.recall_edges.size());
  for (int id : r.recall_edges) {
    const JoinEdge& e = r.graph.edge(id);
    std::printf("  P=%.2f %s -> %s   (shared dim / extra join)\n",
                e.probability, bi_case.tables[size_t(e.src)].name().c_str(),
                bi_case.tables[size_t(e.dst)].name().c_str());
  }

  // Quality of each stage.
  auto report = [&](const char* label, const AutoBiOptions& options) {
    AutoBi variant(&model, options);
    EdgeMetrics m = EvaluateCase(bi_case, variant.Predict(bi_case.tables).model);
    std::printf("  %-22s P=%.3f R=%.3f F1=%.3f\n", label, m.precision,
                m.recall, m.f1);
  };
  std::printf("\n--- Stage contributions ---\n");
  AutoBiOptions p_only;
  p_only.mode = AutoBiMode::kPrecisionOnly;
  report("precision mode only", p_only);
  report("full Auto-BI", AutoBiOptions{});
  AutoBiOptions lc;
  lc.lc_only = true;
  report("LC-only (no graph)", lc);
  return 0;
}
