// Predicts the TPC-H join graph from data alone and compares it with the
// specification's ground truth, then emits the schema as Graphviz DOT and
// SQL DDL (the artifacts a BI tool would consume).

#include <cstdio>

#include "common/rng.h"
#include "core/auto_bi.h"
#include "core/model_export.h"
#include "core/trainer.h"
#include "eval/metrics.h"
#include "synth/corpus.h"
#include "synth/tpc.h"

int main() {
  using namespace autobi;

  CorpusOptions corpus_options;
  corpus_options.seed = 77;
  corpus_options.training_cases = 80;
  std::printf("Training local model...\n");
  LocalModel model = TrainLocalModel(BuildTrainingCorpus(corpus_options));

  Rng rng(1);
  BiCase tpch = GenerateTpcH(/*scale=*/0.3, rng);
  std::printf("\nTPC-H: %zu tables\n", tpch.tables.size());
  for (const Table& t : tpch.tables) {
    std::printf("  %-10s %6zu rows, %2zu columns\n", t.name().c_str(),
                t.num_rows(), t.num_columns());
  }

  AutoBi auto_bi(&model, AutoBiOptions{});
  AutoBiResult r = auto_bi.Predict(tpch.tables);
  EdgeMetrics m = EvaluateCase(tpch, r.model);

  std::printf("\nPredicted joins vs. TPC-H spec (P=%.2f R=%.2f F1=%.2f):\n",
              m.precision, m.recall, m.f1);
  for (const Join& join : r.model.joins) {
    bool correct = EvaluateCase(tpch, BiModel{{join}}).correct > 0;
    std::printf("  [%s] %s\n", correct ? "spec " : "extra",
                JoinToString(tpch.tables, join).c_str());
  }
  std::printf("\nSpec joins missed:\n");
  for (const Join& truth : tpch.ground_truth.joins) {
    bool found = false;
    for (const Join& join : r.model.joins) {
      BiCase single;
      single.tables = tpch.tables;
      single.ground_truth.joins = {truth};
      // Borrow the evaluator's equivalence logic for the comparison.
      if (EvaluateCase(single, BiModel{{join}}).correct > 0) found = true;
    }
    if (!found) {
      std::printf("  %s\n", JoinToString(tpch.tables, truth).c_str());
    }
  }

  std::printf("\n--- Graphviz DOT ---\n%s",
              ExportDot(tpch.tables, r.model).value_or("").c_str());
  std::printf("\n--- SQL DDL ---\n%s",
              ExportSqlDdl(tpch.tables, r.model).value_or("").c_str());
  return 0;
}
