// autobi_client: a small NDJSON client for the autobi_serve daemon.
//
//   autobi_client --socket /tmp/autobi.sock --demo      guided demo schema
//   autobi_client --socket /tmp/autobi.sock             raw passthrough:
//       reads one JSON request per stdin line, prints each response line
//   autobi_client --socket /tmp/autobi.sock --shutdown  stop the daemon
//
// Transient failures are retried with capped exponential backoff plus
// deterministic jitter (--max_retries, default 5): a refused connect (the
// daemon is still booting or training) and RESOURCE_EXHAUSTED responses
// (the AdmissionGate shed the request; SERVING.md "Troubleshooting" says to
// retry with backoff, so the client does).
//
// See SERVING.md for the protocol the demo walks through: create_session ->
// upload_table x3 -> predict -> get_model -> diff -> close_session;
// --publish LABEL adds publish_model -> list_models before the close.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "serve/json.h"

namespace {

int g_max_retries = 5;

// Deterministic jitter: a splitmix-style mix of the attempt number, so two
// runs back off identically (reproducible demos) while different attempts
// do not synchronize on exact powers of two.
unsigned JitterMs(int attempt) {
  uint64_t z = uint64_t(attempt) + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return unsigned((z ^ (z >> 31)) % 25);
}

// Capped exponential backoff: 50ms, 100ms, 200ms, ... capped at 2s, plus
// up to 25ms of jitter.
void BackoffSleep(int attempt) {
  long ms = 50L << (attempt < 6 ? attempt : 6);
  if (ms > 2000) ms = 2000;
  ms += JitterMs(attempt);
  ::usleep(useconds_t(ms) * 1000);
}

int ConnectUnix(const std::string& path) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    std::fprintf(stderr, "autobi_client: socket path too long\n");
    return -1;
  }
  for (int attempt = 0;; ++attempt) {
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      std::perror("autobi_client: socket");
      return -1;
    }
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size());
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      return fd;
    }
    int err = errno;
    ::close(fd);
    // ECONNREFUSED / ENOENT are what a daemon that is still booting (or
    // still training its model) looks like; everything else is permanent.
    bool transient = err == ECONNREFUSED || err == ENOENT;
    if (!transient || attempt >= g_max_retries) {
      std::fprintf(stderr, "autobi_client: cannot connect to %s: %s\n",
                   path.c_str(), std::strerror(err));
      return -1;
    }
    std::fprintf(stderr,
                 "autobi_client: connect to %s failed (%s), retry %d/%d\n",
                 path.c_str(), std::strerror(err), attempt + 1,
                 g_max_retries);
    BackoffSleep(attempt);
  }
}

// Sends one request line and reads exactly one response line.
bool RoundTrip(int fd, const std::string& line, std::string* response) {
  std::string out = line;
  out.push_back('\n');
  size_t off = 0;
  while (off < out.size()) {
    ssize_t w = ::write(fd, out.data() + off, out.size() - off);
    if (w <= 0) return false;
    off += size_t(w);
  }
  response->clear();
  char c;
  while (true) {
    ssize_t n = ::read(fd, &c, 1);
    if (n <= 0) return false;
    if (c == '\n') return true;
    response->push_back(c);
  }
}

bool IsResourceExhausted(const std::string& response) {
  autobi::StatusOr<autobi::Json> parsed = autobi::ParseJson(response);
  if (!parsed.ok()) return false;
  const autobi::Json* error = parsed->Find("error");
  const autobi::Json* code = error != nullptr ? error->Find("code") : nullptr;
  return code != nullptr && code->is_string() &&
         code->AsString() == "RESOURCE_EXHAUSTED";
}

// RoundTrip plus retry-on-shed: a RESOURCE_EXHAUSTED response means the
// admission gate was full, not that the request was wrong — back off and
// resend. Still exactly one final response per request (the shed responses
// are consumed here), so the passthrough contract holds.
bool RoundTripWithRetry(int fd, const std::string& request,
                        std::string* response) {
  for (int attempt = 0;; ++attempt) {
    if (!RoundTrip(fd, request, response)) return false;
    if (!IsResourceExhausted(*response) || attempt >= g_max_retries) {
      return true;
    }
    std::fprintf(stderr,
                 "autobi_client: admission rejected the request, retry "
                 "%d/%d\n",
                 attempt + 1, g_max_retries);
    BackoffSleep(attempt);
  }
}

// Sends, prints both sides, and fails loudly on an error response.
bool Step(int fd, const std::string& request) {
  std::printf(">> %s\n", request.c_str());
  std::string response;
  if (!RoundTripWithRetry(fd, request, &response)) {
    std::fprintf(stderr, "autobi_client: connection lost\n");
    return false;
  }
  std::printf("<< %s\n\n", response.c_str());
  autobi::StatusOr<autobi::Json> parsed = autobi::ParseJson(response);
  if (!parsed.ok()) return false;
  const autobi::Json* ok = parsed->Find("ok");
  return ok != nullptr && ok->is_bool() && ok->AsBool();
}

// A deterministic star schema big enough for confident join discovery:
// orders references customers and products by id.
std::string CustomersCsv() {
  std::string csv = "cust_id,cust_name,region\n";
  const char* regions[] = {"east", "west", "north", "south"};
  for (int i = 0; i < 60; ++i) {
    csv += std::to_string(1000 + i) + ",customer_" + std::to_string(i) + "," +
           regions[i % 4] + "\n";
  }
  return csv;
}

std::string ProductsCsv() {
  std::string csv = "product_id,product_name,unit_price\n";
  for (int i = 0; i < 40; ++i) {
    csv += std::to_string(500 + i) + ",product_" + std::to_string(i) + "," +
           std::to_string(5 + (i * 7) % 90) + ".5\n";
  }
  return csv;
}

std::string OrdersCsv() {
  std::string csv = "order_id,cust_id,product_id,quantity\n";
  for (int i = 0; i < 240; ++i) {
    csv += std::to_string(i + 1) + "," + std::to_string(1000 + (i * 13) % 60) +
           "," + std::to_string(500 + (i * 17) % 40) + "," +
           std::to_string(1 + i % 9) + "\n";
  }
  return csv;
}

std::string UploadRequest(int id, const std::string& name,
                          const std::string& csv) {
  autobi::Json req = autobi::Json::MakeObject();
  req.Set("verb", autobi::Json::MakeString("upload_table"));
  req.Set("id", autobi::Json::MakeInt(id));
  req.Set("session", autobi::Json::MakeString("s1"));
  req.Set("name", autobi::Json::MakeString(name));
  req.Set("csv", autobi::Json::MakeString(csv));
  return req.Write();
}

std::string PublishRequest(int id, const std::string& label) {
  autobi::Json req = autobi::Json::MakeObject();
  req.Set("verb", autobi::Json::MakeString("publish_model"));
  req.Set("id", autobi::Json::MakeInt(id));
  req.Set("session", autobi::Json::MakeString("s1"));
  req.Set("label", autobi::Json::MakeString(label));
  return req.Write();
}

int RunDemo(int fd, const std::string& publish_label) {
  // The demo assumes a fresh daemon (session ids start at s1).
  if (!Step(fd, R"({"verb":"create_session","id":1})")) return 1;
  if (!Step(fd, UploadRequest(2, "customers", CustomersCsv()))) return 1;
  if (!Step(fd, UploadRequest(3, "products", ProductsCsv()))) return 1;
  if (!Step(fd, UploadRequest(4, "orders", OrdersCsv()))) return 1;
  if (!Step(fd, R"({"verb":"predict","id":5,"session":"s1","tier":"standard"})")) {
    return 1;
  }
  if (!Step(fd, R"({"verb":"get_model","id":6,"session":"s1","format":"dot"})")) {
    return 1;
  }
  if (!Step(fd, R"({"verb":"diff","id":7,"session":"s1"})")) return 1;
  if (!publish_label.empty()) {
    if (!Step(fd, PublishRequest(8, publish_label))) return 1;
    if (!Step(fd, R"({"verb":"list_models","id":9})")) return 1;
  }
  if (!Step(fd, R"({"verb":"close_session","id":10,"session":"s1"})")) return 1;
  std::printf("demo complete: the predicted join graph is in the get_model "
              "response above\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string publish_label;
  bool demo = false;
  bool shutdown = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (arg == "--demo") {
      demo = true;
    } else if (arg == "--publish" && i + 1 < argc) {
      publish_label = argv[++i];
    } else if (arg == "--max_retries" && i + 1 < argc) {
      char* end = nullptr;
      long v = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || v < 0) {
        std::fprintf(stderr, "autobi_client: bad --max_retries\n");
        return 2;
      }
      g_max_retries = int(v);
    } else if (arg == "--shutdown") {
      shutdown = true;
    } else {
      std::fprintf(stderr,
                   "usage: autobi_client --socket PATH [--demo [--publish "
                   "LABEL] | --shutdown] [--max_retries N]\n");
      return 2;
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "autobi_client: --socket PATH is required\n");
    return 2;
  }
  int fd = ConnectUnix(socket_path);
  if (fd < 0) return 1;

  int rc = 0;
  if (demo) {
    rc = RunDemo(fd, publish_label);
  } else if (shutdown) {
    rc = Step(fd, R"({"verb":"shutdown"})") ? 0 : 1;
  } else {
    // Raw passthrough: one request per stdin line, one (post-retry)
    // response per output line.
    std::string line;
    std::string response;
    while (std::getline(std::cin, line)) {
      if (line.empty()) continue;
      if (!RoundTripWithRetry(fd, line, &response)) {
        std::fprintf(stderr, "autobi_client: connection lost\n");
        rc = 1;
        break;
      }
      std::printf("%s\n", response.c_str());
    }
  }
  ::close(fd);
  return rc;
}
