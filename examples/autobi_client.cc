// autobi_client: a small NDJSON client for the autobi_serve daemon.
//
//   autobi_client --socket /tmp/autobi.sock --demo      guided demo schema
//   autobi_client --socket /tmp/autobi.sock             raw passthrough:
//       reads one JSON request per stdin line, prints each response line
//   autobi_client --socket /tmp/autobi.sock --shutdown  stop the daemon
//
// See SERVING.md for the protocol the demo walks through: create_session ->
// upload_table x3 -> predict -> get_model -> diff -> close_session.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "serve/json.h"

namespace {

int ConnectUnix(const std::string& path) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    std::fprintf(stderr, "autobi_client: socket path too long\n");
    return -1;
  }
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("autobi_client: socket");
    return -1;
  }
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size());
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    std::fprintf(stderr, "autobi_client: cannot connect to %s: %s\n",
                 path.c_str(), std::strerror(errno));
    ::close(fd);
    return -1;
  }
  return fd;
}

// Sends one request line and reads exactly one response line.
bool RoundTrip(int fd, const std::string& line, std::string* response) {
  std::string out = line;
  out.push_back('\n');
  size_t off = 0;
  while (off < out.size()) {
    ssize_t w = ::write(fd, out.data() + off, out.size() - off);
    if (w <= 0) return false;
    off += size_t(w);
  }
  response->clear();
  char c;
  while (true) {
    ssize_t n = ::read(fd, &c, 1);
    if (n <= 0) return false;
    if (c == '\n') return true;
    response->push_back(c);
  }
}

// Sends, prints both sides, and fails loudly on an error response.
bool Step(int fd, const std::string& request) {
  std::printf(">> %s\n", request.c_str());
  std::string response;
  if (!RoundTrip(fd, request, &response)) {
    std::fprintf(stderr, "autobi_client: connection lost\n");
    return false;
  }
  std::printf("<< %s\n\n", response.c_str());
  autobi::StatusOr<autobi::Json> parsed = autobi::ParseJson(response);
  if (!parsed.ok()) return false;
  const autobi::Json* ok = parsed->Find("ok");
  return ok != nullptr && ok->is_bool() && ok->AsBool();
}

// A deterministic star schema big enough for confident join discovery:
// orders references customers and products by id.
std::string CustomersCsv() {
  std::string csv = "cust_id,cust_name,region\n";
  const char* regions[] = {"east", "west", "north", "south"};
  for (int i = 0; i < 60; ++i) {
    csv += std::to_string(1000 + i) + ",customer_" + std::to_string(i) + "," +
           regions[i % 4] + "\n";
  }
  return csv;
}

std::string ProductsCsv() {
  std::string csv = "product_id,product_name,unit_price\n";
  for (int i = 0; i < 40; ++i) {
    csv += std::to_string(500 + i) + ",product_" + std::to_string(i) + "," +
           std::to_string(5 + (i * 7) % 90) + ".5\n";
  }
  return csv;
}

std::string OrdersCsv() {
  std::string csv = "order_id,cust_id,product_id,quantity\n";
  for (int i = 0; i < 240; ++i) {
    csv += std::to_string(i + 1) + "," + std::to_string(1000 + (i * 13) % 60) +
           "," + std::to_string(500 + (i * 17) % 40) + "," +
           std::to_string(1 + i % 9) + "\n";
  }
  return csv;
}

std::string UploadRequest(int id, const std::string& name,
                          const std::string& csv) {
  autobi::Json req = autobi::Json::MakeObject();
  req.Set("verb", autobi::Json::MakeString("upload_table"));
  req.Set("id", autobi::Json::MakeInt(id));
  req.Set("session", autobi::Json::MakeString("s1"));
  req.Set("name", autobi::Json::MakeString(name));
  req.Set("csv", autobi::Json::MakeString(csv));
  return req.Write();
}

int RunDemo(int fd) {
  // The demo assumes a fresh daemon (session ids start at s1).
  if (!Step(fd, R"({"verb":"create_session","id":1})")) return 1;
  if (!Step(fd, UploadRequest(2, "customers", CustomersCsv()))) return 1;
  if (!Step(fd, UploadRequest(3, "products", ProductsCsv()))) return 1;
  if (!Step(fd, UploadRequest(4, "orders", OrdersCsv()))) return 1;
  if (!Step(fd, R"({"verb":"predict","id":5,"session":"s1","tier":"standard"})")) {
    return 1;
  }
  if (!Step(fd, R"({"verb":"get_model","id":6,"session":"s1","format":"dot"})")) {
    return 1;
  }
  if (!Step(fd, R"({"verb":"diff","id":7,"session":"s1"})")) return 1;
  if (!Step(fd, R"({"verb":"close_session","id":8,"session":"s1"})")) return 1;
  std::printf("demo complete: the predicted join graph is in the get_model "
              "response above\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  bool demo = false;
  bool shutdown = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (arg == "--demo") {
      demo = true;
    } else if (arg == "--shutdown") {
      shutdown = true;
    } else {
      std::fprintf(stderr,
                   "usage: autobi_client --socket PATH [--demo|--shutdown]\n");
      return 2;
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "autobi_client: --socket PATH is required\n");
    return 2;
  }
  int fd = ConnectUnix(socket_path);
  if (fd < 0) return 1;

  int rc = 0;
  if (demo) {
    rc = RunDemo(fd);
  } else if (shutdown) {
    rc = Step(fd, R"({"verb":"shutdown"})") ? 0 : 1;
  } else {
    // Raw passthrough: one request per stdin line.
    std::string line;
    std::string response;
    while (std::getline(std::cin, line)) {
      if (line.empty()) continue;
      if (!RoundTrip(fd, line, &response)) {
        std::fprintf(stderr, "autobi_client: connection lost\n");
        rc = 1;
        break;
      }
      std::printf("%s\n", response.c_str());
    }
  }
  ::close(fd);
  return rc;
}
