// Shows the inspection APIs on a predicted model: per-join explanations
// (probability, stage, evidence) and the schema summary (fact/hub/dimension
// roles + clusters — the hub-and-spoke structure the paper credits for
// Auto-BI's surprise effectiveness on OLTP schemas like TPC-E).

#include <cstdio>

#include "common/rng.h"
#include "core/explain.h"
#include "core/schema_summary.h"
#include "core/trainer.h"
#include "synth/corpus.h"
#include "synth/tpc.h"

int main() {
  using namespace autobi;

  CorpusOptions corpus_options;
  corpus_options.seed = 404;
  corpus_options.training_cases = 80;
  std::printf("Training local model...\n");
  LocalModel model = TrainLocalModel(BuildTrainingCorpus(corpus_options));

  Rng rng(8);
  BiCase tpce = GenerateTpcE(/*scale=*/0.2, rng);
  std::printf("Predicting the TPC-E join graph (%zu tables)...\n",
              tpce.tables.size());
  AutoBi auto_bi(&model, AutoBiOptions{});
  AutoBiResult result = auto_bi.Predict(tpce.tables);

  std::printf("\n--- Join explanations (%zu joins) ---\n",
              result.model.joins.size());
  for (const JoinExplanation& ex : ExplainPrediction(tpce.tables, result)) {
    std::printf("%s\n", ex.ToString(tpce.tables).c_str());
  }

  std::printf("\n--- Schema summary of the predicted model ---\n");
  SchemaSummary summary = SummarizeSchema(tpce.tables, result.model);
  std::printf("%s", RenderSchemaSummary(tpce.tables, summary).c_str());

  std::printf("\nHub tables (the paper's TPC-E observation — clusters join "
              "through a few central tables):\n");
  for (int t : summary.HubTables()) {
    std::printf("  %s (referenced by %d tables)\n",
                tpce.tables[size_t(t)].name().c_str(),
                summary.tables[size_t(t)].in_degree);
  }
  return 0;
}
