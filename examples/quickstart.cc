// Quickstart: train a local model on a synthetic corpus, then predict the
// BI model of an unseen case and compare against its ground truth.
//
// This is the smallest end-to-end tour of the public API:
//   1. build a training corpus (stand-in for harvested .pbix models),
//   2. TrainLocalModel() — the offline component of Figure 2,
//   3. AutoBi::Predict() — the online component (k-MCA-CC + recall mode),
//   4. EvaluateCase() — edge-level precision/recall.

#include <cstdio>

#include "common/rng.h"
#include "core/auto_bi.h"
#include "core/trainer.h"
#include "eval/metrics.h"
#include "synth/bi_generator.h"
#include "synth/corpus.h"

int main() {
  using namespace autobi;

  // 1. Training corpus (disjoint seed from the test case below).
  CorpusOptions corpus_options;
  corpus_options.seed = 1234;
  corpus_options.training_cases = 60;
  std::printf("Building training corpus (%zu cases)...\n",
              corpus_options.training_cases);
  std::vector<BiCase> corpus = BuildTrainingCorpus(corpus_options);

  // 2. Offline training: candidates -> labels -> features -> forests ->
  // calibration.
  TrainerOptions trainer_options;
  TrainerReport report;
  std::printf("Training local classifiers...\n");
  LocalModel model = TrainLocalModel(corpus, trainer_options, &report);
  std::printf("  N:1 classifier: %zu examples (%zu positive), AUC %.3f\n",
              report.n1_examples, report.n1_positives, report.n1_auc);
  std::printf("  1:1 classifier: %zu examples (%zu positive), AUC %.3f\n",
              report.one_examples, report.one_positives, report.one_auc);

  // 3. Predict an unseen BI case.
  Rng rng(999);
  BiGenOptions gen;
  gen.num_tables = 8;
  BiCase test_case = GenerateBiCase(gen, rng);
  std::printf("\nTest case '%s' (%zu tables, %zu ground-truth joins):\n",
              test_case.name.c_str(), test_case.tables.size(),
              test_case.ground_truth.joins.size());
  for (const Table& t : test_case.tables) {
    std::printf("  - %-28s %5zu rows, %2zu columns\n", t.name().c_str(),
                t.num_rows(), t.num_columns());
  }

  AutoBi auto_bi(&model, AutoBiOptions{});
  AutoBiResult result = auto_bi.Predict(test_case.tables);

  std::printf("\nPredicted joins (%zu):\n", result.model.joins.size());
  for (const Join& join : result.model.joins) {
    std::printf("  %s\n", JoinToString(test_case.tables, join).c_str());
  }
  std::printf("\nGround truth (%zu):\n", test_case.ground_truth.joins.size());
  for (const Join& join : test_case.ground_truth.joins) {
    std::printf("  %s\n", JoinToString(test_case.tables, join).c_str());
  }

  // 4. Score it.
  EdgeMetrics metrics = EvaluateCase(test_case, result.model);
  std::printf(
      "\nEdge-level: precision %.3f  recall %.3f  F1 %.3f  (case %s)\n",
      metrics.precision, metrics.recall, metrics.f1,
      metrics.case_correct ? "correct" : "has errors");
  std::printf(
      "Latency: UCC %.3fs  IND %.3fs  local-inference %.3fs  global %.3fs\n",
      result.timing.ucc, result.timing.ind, result.timing.local_inference,
      result.timing.global_predict);
  std::printf("k-MCA-CC: %ld 1-MCA calls, %ld branch nodes\n",
              result.solver_stats.one_mca_calls, result.solver_stats.nodes);
  return 0;
}
