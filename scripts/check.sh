#!/usr/bin/env bash
# Data-race check for the parallel pipeline: build with ThreadSanitizer and
# run the concurrency-sensitive suites (pool semantics + cross-thread-count
# determinism, plus the core pipeline tests that exercise every parallel
# stage, plus the 1-vs-8-thread solver determinism sweep for the
# wave-parallel k-MCA-CC branch-and-bound). Any TSan report fails the run
# (halt_on_error).
#
# Usage: scripts/check.sh [build-dir]     (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

# --- Service-layer lint (always on; no build needed). New code must use
# Status/StatusOr on fallible paths, not bool+out-param errors, and must
# never call std::abort() outside the AUTOBI_CHECK machinery itself.
lint_fail=0
if grep -rnE 'bool [A-Za-z_]+\([^)]*std::string\* *error' src/*/*.h; then
  echo "check.sh: LINT FAIL — bool+std::string* error out-param signature;" \
       "use Status/StatusOr (common/status.h) instead." >&2
  lint_fail=1
fi
if grep -rn 'std::abort()' src --include='*.cc' --include='*.h' \
    | grep -v 'src/common/check.h'; then
  echo "check.sh: LINT FAIL — bare std::abort() outside common/check.h;" \
       "use AUTOBI_CHECK for invariants or return a Status." >&2
  lint_fail=1
fi
[[ "$lint_fail" == "0" ]] || exit 1
echo "check.sh: service-layer lint clean."

cmake -B "$BUILD_DIR" -S . -DAUTOBI_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j --target autobi_parallel_tests autobi_core_tests \
  autobi_fuzz_tests

export TSAN_OPTIONS="halt_on_error=1${TSAN_OPTIONS:+:$TSAN_OPTIONS}"
# Force multi-threaded execution even on small machines so races are reachable.
export AUTOBI_THREADS="${AUTOBI_THREADS:-4}"

"$BUILD_DIR/tests/autobi_parallel_tests"
"$BUILD_DIR/tests/autobi_core_tests"

# Solver determinism under TSan: the wave-parallel branch-and-bound must be
# byte-identical (results and stats) at 1, 2, and 8 threads, with the
# parallel relaxation phase actually racing real pool workers. Runs the
# explicit-threads sweep, then the whole suite again under the forced
# AUTOBI_THREADS=1 and =8 environment overrides.
"$BUILD_DIR/tests/autobi_fuzz_tests" --gtest_filter='SolverDeterminismTest.*'
AUTOBI_THREADS=1 "$BUILD_DIR/tests/autobi_fuzz_tests" \
  --gtest_filter='SolverDeterminismTest.*'
AUTOBI_THREADS=8 "$BUILD_DIR/tests/autobi_fuzz_tests" \
  --gtest_filter='SolverDeterminismTest.*'

echo "check.sh: ThreadSanitizer clean (pipeline + solver determinism)."

# Opt-in perf smoke (AUTOBI_BENCH_SMOKE=1): refresh the BENCH_*.json perf
# trajectory after the sanitizer gate passes.
if [[ "${AUTOBI_BENCH_SMOKE:-0}" == "1" ]]; then
  scripts/bench_smoke.sh
fi

# Opt-in fuzz smoke (AUTOBI_FUZZ_SMOKE=1): run the differential/metamorphic
# harness under the same sanitizer build — corpus replay, the bounded gtest
# campaign, and a fresh randomized campaign against the checked-in corpus.
if [[ "${AUTOBI_FUZZ_SMOKE:-0}" == "1" ]]; then
  cmake --build "$BUILD_DIR" -j --target autobi_fuzz autobi_fuzz_tests
  "$BUILD_DIR/tests/autobi_fuzz_tests" --gtest_filter='FuzzSmoke.*'
  "$BUILD_DIR/src/fuzz/autobi_fuzz" --seed 1 --cases 1500 --max_edges 14 \
    --corpus tests/corpus --no_write
  echo "check.sh: fuzz smoke clean."
fi

# Opt-in fault-injection smoke (AUTOBI_FAULT_SMOKE=1): build the end-to-end
# fault campaign under ASan/UBSan and run it. Every case must yield a
# well-formed Status or a validator-passing (possibly degraded) model — no
# crash, hang, or leak (leaks are ASan-fatal by default).
if [[ "${AUTOBI_FAULT_SMOKE:-0}" == "1" ]]; then
  ASAN_BUILD_DIR="${AUTOBI_ASAN_BUILD_DIR:-build-asan}"
  cmake -B "$ASAN_BUILD_DIR" -S . -DAUTOBI_SANITIZE=address,undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build "$ASAN_BUILD_DIR" -j --target autobi_faultfuzz
  UBSAN_OPTIONS="halt_on_error=1${UBSAN_OPTIONS:+:$UBSAN_OPTIONS}" \
    "$ASAN_BUILD_DIR/src/fuzz/autobi_faultfuzz" --seed 1 --cases 500
  echo "check.sh: fault-injection smoke clean (ASan/UBSan)."
fi
