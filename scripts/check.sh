#!/usr/bin/env bash
# Data-race check for the parallel pipeline: build with ThreadSanitizer and
# run the concurrency-sensitive suites (pool semantics + cross-thread-count
# determinism, plus the core pipeline tests that exercise every parallel
# stage, plus the 1-vs-8-thread solver determinism sweep for the
# wave-parallel k-MCA-CC branch-and-bound). Any TSan report fails the run
# (halt_on_error).
#
# Usage: scripts/check.sh [build-dir]     (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

# --- Service-layer lint (always on; no build needed). New code must use
# Status/StatusOr on fallible paths, not bool+out-param errors, and must
# never call std::abort() outside the AUTOBI_CHECK machinery itself.
lint_fail=0
if grep -rnE 'bool [A-Za-z_]+\([^)]*std::string\* *error' src/*/*.h; then
  echo "check.sh: LINT FAIL — bool+std::string* error out-param signature;" \
       "use Status/StatusOr (common/status.h) instead." >&2
  lint_fail=1
fi
if grep -rn 'std::abort()' src --include='*.cc' --include='*.h' \
    | grep -v 'src/common/check.h'; then
  echo "check.sh: LINT FAIL — bare std::abort() outside common/check.h;" \
       "use AUTOBI_CHECK for invariants or return a Status." >&2
  lint_fail=1
fi
[[ "$lint_fail" == "0" ]] || exit 1
echo "check.sh: service-layer lint clean."

# --- Docs lint (always on; no build needed). Two rules:
#   1. Every src/<subsystem>/ directory must be named in the ARCHITECTURE.md
#      module map, so the map cannot silently go stale.
#   2. Relative *.md links in top-level markdown must resolve to real files.
docs_fail=0
for dir in src/*/; do
  name="$(basename "$dir")"
  if ! grep -q "src/$name" ARCHITECTURE.md; then
    echo "check.sh: DOCS FAIL — src/$name/ is not mentioned in" \
         "ARCHITECTURE.md; add it to the module map." >&2
    docs_fail=1
  fi
done
while IFS=: read -r file link; do
  target="${link%%#*}"
  [[ -z "$target" ]] && continue
  if [[ ! -e "$(dirname "$file")/$target" ]]; then
    echo "check.sh: DOCS FAIL — dead link '$link' in $file." >&2
    docs_fail=1
  fi
done < <(grep -oHE '\]\([^)]+\.md[^)]*\)' ./*.md \
           | sed -E 's/\]\(([^)]*)\)/\1/' \
           | grep -vE ':(https?|mailto)' || true)
[[ "$docs_fail" == "0" ]] || exit 1
echo "check.sh: docs lint clean (module map + markdown links)."

cmake -B "$BUILD_DIR" -S . -DAUTOBI_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j --target autobi_parallel_tests autobi_core_tests \
  autobi_fuzz_tests

export TSAN_OPTIONS="halt_on_error=1${TSAN_OPTIONS:+:$TSAN_OPTIONS}"
# Force multi-threaded execution even on small machines so races are reachable.
export AUTOBI_THREADS="${AUTOBI_THREADS:-4}"

"$BUILD_DIR/tests/autobi_parallel_tests"
"$BUILD_DIR/tests/autobi_core_tests"

# Solver determinism under TSan: the wave-parallel branch-and-bound must be
# byte-identical (results and stats) at 1, 2, and 8 threads, with the
# parallel relaxation phase actually racing real pool workers. Runs the
# explicit-threads sweep, then the whole suite again under the forced
# AUTOBI_THREADS=1 and =8 environment overrides.
"$BUILD_DIR/tests/autobi_fuzz_tests" --gtest_filter='SolverDeterminismTest.*'
AUTOBI_THREADS=1 "$BUILD_DIR/tests/autobi_fuzz_tests" \
  --gtest_filter='SolverDeterminismTest.*'
AUTOBI_THREADS=8 "$BUILD_DIR/tests/autobi_fuzz_tests" \
  --gtest_filter='SolverDeterminismTest.*'

echo "check.sh: ThreadSanitizer clean (pipeline + solver determinism)."

# --- Kernel-oracle equivalence under ASan/UBSan (always on since PR 7):
# the hash-first profiling/UCC/IND kernels (table/key_view.h + radix-sorted
# aggregation) must stay bit-identical to the retained legacy string-map
# oracles on adversarial data, the REAL corpus, and TPC-H-via-DDL, with the
# arena/offset arithmetic of the key view checked for memory and UB errors.
ASAN_BUILD_DIR="${AUTOBI_ASAN_BUILD_DIR:-build-asan}"
cmake -B "$ASAN_BUILD_DIR" -S . -DAUTOBI_SANITIZE=address,undefined \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
cmake --build "$ASAN_BUILD_DIR" -j --target autobi_profile_ml_tests \
  autobi_faultfuzz
UBSAN_OPTIONS="halt_on_error=1${UBSAN_OPTIONS:+:$UBSAN_OPTIONS}" \
  "$ASAN_BUILD_DIR/tests/autobi_profile_ml_tests" \
  --gtest_filter='KernelOracle*:TpchDdl*'
echo "check.sh: kernel-oracle equivalence clean (ASan/UBSan)."

# --- Schema-evolution differential smoke under ASan/UBSan (always on since
# PR 8): every case replays a random 1-8 step mutation sequence through
# AutoBi::PredictIncremental with a persistent IncrementalState and
# cross-checks a cold Predict after each step — any incremental/cold
# divergence, crash, leak, or UB fails the run.
UBSAN_OPTIONS="halt_on_error=1${UBSAN_OPTIONS:+:$UBSAN_OPTIONS}" \
  "$ASAN_BUILD_DIR/src/fuzz/autobi_faultfuzz" --seed 1 --cases 500 \
  --scenario schema
echo "check.sh: schema-evolution differential smoke clean (ASan/UBSan)."

# --- Lake blocking differential smoke under ASan/UBSan (always on since
# PR 9): every case pushes a small adversarial lake (disconnected islands,
# shared dimension names/key ranges) through blocking + the partitioned
# per-component solve under random faults and budgets; unfaulted cases are
# cross-checked bit-identical against the exhaustive all-pairs oracle.
UBSAN_OPTIONS="halt_on_error=1${UBSAN_OPTIONS:+:$UBSAN_OPTIONS}" \
  "$ASAN_BUILD_DIR/src/fuzz/autobi_faultfuzz" --seed 1 --cases 500 \
  --scenario lake
echo "check.sh: lake blocking differential smoke clean (ASan/UBSan)."

# --- Crash-recovery differential smoke under ASan/UBSan (always on since
# PR 10): every case drives a journaled ModelCatalog through random
# publish/pin ops with the journal fault points armed
# (journal.short_write/fsync/corrupt, io.rename), crashes it by tearing or
# bit-flipping the journal at a random byte, recovers, and asserts the
# recovered catalog is a committed prefix of the acked history — pins
# intact, NamedJoin sets byte-identical, publishes still accepted.
CRASH_SCRATCH="$(mktemp -d /tmp/autobi_crash.XXXXXX)"
UBSAN_OPTIONS="halt_on_error=1${UBSAN_OPTIONS:+:$UBSAN_OPTIONS}" \
  "$ASAN_BUILD_DIR/src/fuzz/autobi_faultfuzz" --seed 1 --cases 300 \
  --scenario crash --scratch "$CRASH_SCRATCH"
rm -rf "$CRASH_SCRATCH"
echo "check.sh: crash-recovery differential smoke clean (ASan/UBSan)."

# --- Serve smoke (always on, under the same TSan build so the
# thread-per-connection transport and shared caches are race-checked): boot
# the daemon on a unix socket with a durable state dir, run the client demo
# with a publish (create_session, three uploads, predict, get_model, diff,
# publish_model, list_models, close_session), capture the published model,
# kill the daemon with SIGKILL — no flush, the crash the journal exists
# for — then restart from the same state dir and assert the recovered
# get_catalog_model response is byte-identical before a clean shutdown.
cmake --build "$BUILD_DIR" -j --target autobi_serve autobi_client

wait_for_socket() {  # $1 = socket path, $2 = daemon pid
  for _ in $(seq 1 300); do  # Daemon trains before binding; allow up to 60s.
    [[ -S "$1" ]] && return 0
    kill -0 "$2" 2>/dev/null || break
    sleep 0.2
  done
  return 1
}

SERVE_SOCK="$(mktemp -u /tmp/autobi_check.XXXXXX.sock)"
SERVE_STATE="$(mktemp -d /tmp/autobi_check_state.XXXXXX)"
"$BUILD_DIR/src/serve/autobi_serve" --socket "$SERVE_SOCK" --train_cases 60 \
  --state_dir "$SERVE_STATE" &
SERVE_PID=$!
trap '[[ -n "${SERVE_PID:-}" ]] && kill "$SERVE_PID" 2>/dev/null || true' EXIT
if ! wait_for_socket "$SERVE_SOCK" "$SERVE_PID"; then
  echo "check.sh: SERVE FAIL — daemon never bound $SERVE_SOCK." >&2
  exit 1
fi
"$BUILD_DIR/examples/autobi_client" --socket "$SERVE_SOCK" --demo \
  --publish smoke
MODEL_BEFORE="$(echo '{"verb":"get_catalog_model","version":1}' \
  | "$BUILD_DIR/examples/autobi_client" --socket "$SERVE_SOCK")"
if [[ -z "$MODEL_BEFORE" ]]; then
  echo "check.sh: SERVE FAIL — empty get_catalog_model response." >&2
  exit 1
fi

# Crash: SIGKILL gives the daemon no chance to flush or unlink anything.
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
rm -f "$SERVE_SOCK"

SERVE_SOCK2="$(mktemp -u /tmp/autobi_check.XXXXXX.sock)"
"$BUILD_DIR/src/serve/autobi_serve" --socket "$SERVE_SOCK2" --train_cases 60 \
  --state_dir "$SERVE_STATE" &
SERVE_PID=$!
if ! wait_for_socket "$SERVE_SOCK2" "$SERVE_PID"; then
  echo "check.sh: SERVE FAIL — restarted daemon never bound $SERVE_SOCK2." >&2
  exit 1
fi
MODEL_AFTER="$(echo '{"verb":"get_catalog_model","version":1}' \
  | "$BUILD_DIR/examples/autobi_client" --socket "$SERVE_SOCK2")"
if [[ "$MODEL_BEFORE" != "$MODEL_AFTER" ]]; then
  echo "check.sh: SERVE FAIL — recovered catalog model differs from the" \
       "pre-crash publish:" >&2
  echo "  before: $MODEL_BEFORE" >&2
  echo "  after:  $MODEL_AFTER" >&2
  exit 1
fi
"$BUILD_DIR/examples/autobi_client" --socket "$SERVE_SOCK2" --shutdown
wait "$SERVE_PID"
SERVE_PID=""
rm -f "$SERVE_SOCK2"
rm -rf "$SERVE_STATE"
echo "check.sh: serve smoke clean (demo + publish, SIGKILL restart" \
     "round-trip byte-identical, clean shutdown)."

# Opt-in perf smoke (AUTOBI_BENCH_SMOKE=1): refresh the BENCH_*.json perf
# trajectory after the sanitizer gate passes.
if [[ "${AUTOBI_BENCH_SMOKE:-0}" == "1" ]]; then
  scripts/bench_smoke.sh
fi

# Opt-in fuzz smoke (AUTOBI_FUZZ_SMOKE=1): run the differential/metamorphic
# harness under the same sanitizer build — corpus replay, the bounded gtest
# campaign, and a fresh randomized campaign against the checked-in corpus.
if [[ "${AUTOBI_FUZZ_SMOKE:-0}" == "1" ]]; then
  cmake --build "$BUILD_DIR" -j --target autobi_fuzz autobi_fuzz_tests
  "$BUILD_DIR/tests/autobi_fuzz_tests" --gtest_filter='FuzzSmoke.*'
  "$BUILD_DIR/src/fuzz/autobi_fuzz" --seed 1 --cases 1500 --max_edges 14 \
    --corpus tests/corpus --no_write
  echo "check.sh: fuzz smoke clean."
fi

# Opt-in fault-injection smoke (AUTOBI_FAULT_SMOKE=1): build the end-to-end
# fault campaign under ASan/UBSan and run it. Every case must yield a
# well-formed Status or a validator-passing (possibly degraded) model — no
# crash, hang, or leak (leaks are ASan-fatal by default).
if [[ "${AUTOBI_FAULT_SMOKE:-0}" == "1" ]]; then
  ASAN_BUILD_DIR="${AUTOBI_ASAN_BUILD_DIR:-build-asan}"
  cmake -B "$ASAN_BUILD_DIR" -S . -DAUTOBI_SANITIZE=address,undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build "$ASAN_BUILD_DIR" -j --target autobi_faultfuzz
  UBSAN_OPTIONS="halt_on_error=1${UBSAN_OPTIONS:+:$UBSAN_OPTIONS}" \
    "$ASAN_BUILD_DIR/src/fuzz/autobi_faultfuzz" --seed 1 --cases 500
  echo "check.sh: fault-injection smoke clean (ASan/UBSan)."
fi
