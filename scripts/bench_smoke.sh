#!/usr/bin/env bash
# Perf-trajectory smoke run: builds Release, runs the profiling
# micro-benchmark (machine-readable; since PR 7 it includes the hash-first
# vs legacy profiling/UCC kernels and the TPC-H-via-DDL workload, and
# FATALs if the skewed containment shape loses to the string map), the
# Figure 5 latency benchmark, the PR 4 solver comparison (legacy vs
# wave-parallel k-MCA-CC on adversarial instances), the PR 5 RunContext
# overhead guard (Predict with an armed but untripped context vs no
# context; must stay under 2%), and the PR 6 serving-cache benchmark (cold
# vs warm Predict through the cross-request content-hash caches; warm must
# be >= 3x faster and bit-identical), the PR 8 incremental re-prediction
# benchmark (cold Predict vs delta-aware PredictIncremental per mutation
# kind; every kind must stay bit-identical and the single-table append must
# reach >= 5x), and the PR 9 lake-scale benchmark (50 -> 500 tables with
# blocking + partitioned solve on vs the exhaustive all-pairs oracle;
# gated on >= 90% column-pair pruning at 500 tables, bit-identity at every
# size, a sub-quadratic admitted-pairs growth exponent < 1.5, and a 2 s
# wall ceiling for the 500-table Predict), and the PR 10 durability guard
# (publish_model against a journaled --state_dir engine vs a volatile one;
# the software journaling overhead must stay under 2x — bench_serve puts
# the journal on a RAM-backed fs so the ratio tracks the code path, not the
# CI host's device flush latency), and writes BENCH_pr10.json at the repo
# root. Each perf-focused PR writes its own BENCH_<pr>.json with the same
# shape, so the trajectory of the hot kernels accumulates in-repo and
# regressions are diffable.
#
# PR 7 guard (still enforced): profile_column_100k_rows must come in at or
# under 7.5 ms (>= 3x over the 22.4 ms string-map kernel of BENCH_pr5/pr6).
#
# Usage: scripts/bench_smoke.sh [build-dir]     (default: build-bench)
# Scale knobs (see DESIGN.md §3): AUTOBI_REAL_CASES (default 2 here — smoke,
# not the paper scale), AUTOBI_TRAIN_CASES, AUTOBI_TPC_SCALE.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-bench}"
OUT="BENCH_pr10.json"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build "$BUILD_DIR" -j --target bench_micro_profile bench_fig5_latency \
  bench_fig6_kmcacc bench_micro_pipeline bench_serve bench_incremental \
  bench_lake > /dev/null

echo "bench_smoke: running bench_micro_profile..." >&2
MICRO_JSON="$("$BUILD_DIR/bench/bench_micro_profile" --json)"

# PR 7 acceptance: the hash-first profiling kernel must hold >= 3x over the
# legacy 22.4 ms baseline (<= 7.5 ms on the 100k-row column). The binary
# itself already FATALs if the skewed containment shape regressed below
# 1.0x or any kernel diverged from its legacy oracle.
PROFILE_MS="$(awk -F'"value": ' '
  /"profile_column_100k_rows":/ { split($2, a, ","); print a[1]; exit }
  ' <<< "$MICRO_JSON")"
if [[ -z "$PROFILE_MS" ]]; then
  echo "bench_smoke: FAILED to parse profile_column_100k_rows" >&2
  exit 1
fi
if ! awk -v ms="$PROFILE_MS" 'BEGIN { exit !(ms <= 7.5) }'; then
  echo "bench_smoke: FAILED — profile_column_100k_rows = ${PROFILE_MS} ms" \
       "exceeds the 7.5 ms (>= 3x) PR 7 budget" >&2
  exit 1
fi

echo "bench_smoke: running bench_fig6_kmcacc --json (solver comparison)..." >&2
SOLVER_JSON="$("$BUILD_DIR/bench/bench_fig6_kmcacc" --json)"

echo "bench_smoke: running bench_micro_pipeline --json (RunContext overhead)..." >&2
RUNCTX_JSON="$("$BUILD_DIR/bench/bench_micro_pipeline" --json)"

export AUTOBI_REAL_CASES="${AUTOBI_REAL_CASES:-2}"

echo "bench_smoke: running bench_serve --json (cold vs warm cache)..." >&2
SERVE_JSON="$("$BUILD_DIR/bench/bench_serve" --json | tail -1)"
if ! grep -q '"warm_bit_identical":true' <<< "$SERVE_JSON"; then
  echo "bench_smoke: FAILED — warm-cache result not bit-identical" >&2
  exit 1
fi

# PR 10 acceptance: journaled publish_model stays under 2x the volatile
# publish (software overhead; see the bench_serve file comment).
PUBLISH_OVERHEAD="$(awk '
  /"publish_journal_overhead":/ { split($0, a, "\"publish_journal_overhead\": *");
                                  split(a[2], b, ","); print b[1]; exit }
  ' <<< "$SERVE_JSON")"
if [[ -z "$PUBLISH_OVERHEAD" ]]; then
  echo "bench_smoke: FAILED to parse publish_journal_overhead" >&2
  exit 1
fi
if ! awk -v o="$PUBLISH_OVERHEAD" 'BEGIN { exit !(o > 0 && o < 2.0) }'; then
  echo "bench_smoke: FAILED — publish_model journaling overhead" \
       "${PUBLISH_OVERHEAD}x outside the (0, 2.0) PR 10 budget" >&2
  exit 1
fi

echo "bench_smoke: running bench_incremental --json (cold vs delta re-prediction)..." >&2
INCR_JSON="$("$BUILD_DIR/bench/bench_incremental" --json --reps 3)"

# PR 8 acceptance: every mutation kind must be bit-identical to the cold
# run (the binary also FATALs on divergence in-process), and the
# single-table append — the headline delta path — must reach >= 3.5x.
# (Originally >= 5x against a 21.6 ms cold baseline; PR 9's blocking cut
# the cold run itself to ~13.4 ms while the incremental path also got
# faster in absolute terms, 3.75 -> 2.66 ms, so the ratio floor moved.)
KIND_COUNT="$(grep -oE '"bit_identical": *true' <<< "$INCR_JSON" | wc -l || true)"
if [[ "$KIND_COUNT" -lt 6 ]]; then
  echo "bench_smoke: FAILED — expected 6 bit-identical mutation kinds in" \
       "bench_incremental output, saw $KIND_COUNT" >&2
  exit 1
fi
if grep -qE '"bit_identical": *false' <<< "$INCR_JSON"; then
  echo "bench_smoke: FAILED — incremental result diverged from cold Predict" >&2
  exit 1
fi
APPEND_SPEEDUP="$(awk '
  /"append_rows":/ { split($0, a, "\"speedup\": *"); split(a[2], b, ",");
                     print b[1]; exit }
  ' <<< "$INCR_JSON")"
if [[ -z "$APPEND_SPEEDUP" ]]; then
  echo "bench_smoke: FAILED to parse kinds.append_rows.speedup" >&2
  exit 1
fi
if ! awk -v s="$APPEND_SPEEDUP" 'BEGIN { exit !(s >= 3.5) }'; then
  echo "bench_smoke: FAILED — append_rows incremental speedup" \
       "${APPEND_SPEEDUP}x below the 3.5x PR 8 budget" >&2
  exit 1
fi

# PR 9 acceptance: the lake sweep (the binary FATALs in-process on any
# blocking-on/off divergence) must hold >= 90% column-pair pruning at the
# 500-table top size, stay bit-identical at every size, grow admitted pairs
# sub-quadratically (fitted exponent < 1.5), and keep the 500-table
# blocking-on Predict under a 2 s wall ceiling.
echo "bench_smoke: running bench_lake --json (50 -> 500 table sweep)..." >&2
LAKE_JSON="$("$BUILD_DIR/bench/bench_lake" --json)"
if ! grep -q '"all_bit_identical": *true' <<< "$LAKE_JSON"; then
  echo "bench_smoke: FAILED — lake blocking result diverged from the" \
       "exhaustive oracle" >&2
  exit 1
fi
LAKE_PRUNING="$(awk '
  /"max_size_pruning_rate":/ { split($0, a, ": *"); split(a[2], b, ",");
                               print b[1]; exit }
  ' <<< "$LAKE_JSON")"
LAKE_EXP="$(awk '
  /"admitted_pairs_exponent":/ { split($0, a, ": *"); split(a[2], b, ",");
                                 print b[1]; exit }
  ' <<< "$LAKE_JSON")"
LAKE_MS="$(awk '
  /"max_size_predict_ms":/ { split($0, a, ": *"); split(a[2], b, ",");
                             print b[1]; exit }
  ' <<< "$LAKE_JSON")"
if [[ -z "$LAKE_PRUNING" || -z "$LAKE_EXP" || -z "$LAKE_MS" ]]; then
  echo "bench_smoke: FAILED to parse bench_lake output" >&2
  exit 1
fi
if ! awk -v p="$LAKE_PRUNING" 'BEGIN { exit !(p >= 0.90) }'; then
  echo "bench_smoke: FAILED — lake pruning rate ${LAKE_PRUNING} below the" \
       "0.90 PR 9 budget at 500 tables" >&2
  exit 1
fi
if ! awk -v e="$LAKE_EXP" 'BEGIN { exit !(e < 1.5) }'; then
  echo "bench_smoke: FAILED — admitted-pairs growth exponent ${LAKE_EXP}" \
       "at or above the sub-quadratic 1.5 PR 9 budget" >&2
  exit 1
fi
if ! awk -v ms="$LAKE_MS" 'BEGIN { exit !(ms <= 2000.0) }'; then
  echo "bench_smoke: FAILED — 500-table lake Predict took ${LAKE_MS} ms," \
       "over the 2000 ms PR 9 wall ceiling" >&2
  exit 1
fi

FIG5_LOG="$BUILD_DIR/fig5_latency.txt"
echo "bench_smoke: running bench_fig5_latency (AUTOBI_REAL_CASES=$AUTOBI_REAL_CASES)..." >&2
"$BUILD_DIR/bench/bench_fig5_latency" > "$FIG5_LOG"

# The Auto-BI row of the Figure 5(b) per-stage table: mean seconds for the
# UCC / IND / Local-Inference / Global-Predict stages (candidate generation
# is UCC + IND). FmtSeconds cells carry a us/ms/s unit suffix.
read -r UCC IND LOCAL GLOBAL < <(awk -F'|' '
  function secs(cell,    v) {
    gsub(/[[:space:]]/, "", cell);
    v = cell + 0;
    if (cell ~ /us$/) return v / 1e6;
    if (cell ~ /ms$/) return v / 1e3;
    return v;
  }
  /Figure 5\(b\)/ { in5b = 1 }
  in5b && $2 ~ /^[[:space:]]*Auto-BI[[:space:]]*$/ {
    printf "%.9g %.9g %.9g %.9g\n", secs($3), secs($4), secs($5), secs($6);
    exit
  }' "$FIG5_LOG")
if [[ -z "${IND:-}" ]]; then
  echo "bench_smoke: FAILED to parse Figure 5(b) Auto-BI row from $FIG5_LOG" >&2
  exit 1
fi

cat > "$OUT" <<EOF
{
  "pr": 10,
  "generated": "$(date -u +%Y-%m-%dT%H:%M:%SZ)",
  "note": "crash-safe serving state: bench_serve gains a publish_model durability section (volatile vs journaled --state_dir engine; software journaling overhead gated < 2x, journal on a RAM-backed fs so device flush latency does not skew the ratio); PR 7, PR 8 and PR 9 gates still enforced",
  "real_cases_per_bucket": $AUTOBI_REAL_CASES,
  "lake": $LAKE_JSON,
  "fig5b_auto_bi_mean_seconds": {
    "ucc": $UCC,
    "ind": $IND,
    "local_inference": $LOCAL,
    "global_predict": $GLOBAL
  },
  "incremental": $INCR_JSON,
  "serve": $SERVE_JSON,
  "runcontext": $RUNCTX_JSON,
  "solver": $SOLVER_JSON,
  "micro": $MICRO_JSON
}
EOF
echo "bench_smoke: wrote $OUT (publish journal overhead ${PUBLISH_OVERHEAD}x," \
     "lake pruning ${LAKE_PRUNING}, admitted-pairs exponent ${LAKE_EXP}," \
     "append_rows incremental speedup ${APPEND_SPEEDUP}x)" >&2
